# Convenience targets for the 2W-FD reproduction.

PY ?= python3
SCALE ?= 0.02

.PHONY: install test bench bench-ingest experiments report examples clean

install:
	$(PY) -m pip install -e .

test:
	$(PY) -m pytest tests/

bench:
	REPRO_SCALE=$(SCALE) $(PY) -m pytest benchmarks/ --benchmark-only

# Regenerate the committed live-ingest snapshot (scalar vs batched vs
# vectorized, with profile block) and guard it against itself.
bench-ingest:
	PYTHONPATH=src $(PY) benchmarks/bench_live_ingest.py --profile -o BENCH_ingest.json
	PYTHONPATH=src $(PY) benchmarks/bench_live_ingest.py --check BENCH_ingest.json

experiments:
	$(PY) -m repro run all --scale $(SCALE)

report:
	$(PY) -m repro report -o report.md --scale $(SCALE)

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PY) $$f > /dev/null || exit 1; done; echo "all examples OK"

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks report.md
	find . -name __pycache__ -type d -exec rm -rf {} +
