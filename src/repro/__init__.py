"""repro — reproduction of "2W-FD: A Failure Detector Algorithm with QoS".

Public API highlights:

- :class:`repro.TwoWindowFailureDetector` — the paper's contribution;
- :mod:`repro.detectors` — Chen, Bertier, φ, ED baselines;
- :mod:`repro.traces` — synthetic WAN/LAN heartbeat traces;
- :mod:`repro.replay` — vectorized trace replay, sweeps, mistake algebra;
- :mod:`repro.qos` — QoS metrics, Chen's configurator, shared service;
- :mod:`repro.sim` — discrete-event simulation with real crash injection;
- :mod:`repro.service` — failure detection as a shared service;
- :mod:`repro.cluster` — group membership on top of the detectors;
- :mod:`repro.experiments` — one runner per paper table/figure.
"""

from repro.core import (
    HeartbeatFailureDetector,
    MultiWindowFailureDetector,
    TwoWindowFailureDetector,
)
from repro.detectors import (
    AdaptiveTwoWindowFailureDetector,
    BertierFailureDetector,
    ChenFailureDetector,
    EDFailureDetector,
    FixedTimeoutFailureDetector,
    HistogramAccrualFailureDetector,
    PhiAccrualFailureDetector,
    SynchronizedChenFailureDetector,
    available_detectors,
    make_detector,
)
from repro.qos import (
    NetworkBehavior,
    QoSMetrics,
    QoSSpec,
    combine,
    compute_metrics,
    configure,
    estimate_network_behavior,
)
from repro.traces import HeartbeatTrace, make_lan_trace, make_wan_trace

__version__ = "1.0.0"

__all__ = [
    "AdaptiveTwoWindowFailureDetector",
    "BertierFailureDetector",
    "ChenFailureDetector",
    "EDFailureDetector",
    "FixedTimeoutFailureDetector",
    "HeartbeatFailureDetector",
    "HeartbeatTrace",
    "HistogramAccrualFailureDetector",
    "MultiWindowFailureDetector",
    "NetworkBehavior",
    "PhiAccrualFailureDetector",
    "QoSMetrics",
    "QoSSpec",
    "SynchronizedChenFailureDetector",
    "TwoWindowFailureDetector",
    "__version__",
    "available_detectors",
    "combine",
    "compute_metrics",
    "configure",
    "estimate_network_behavior",
    "make_detector",
    "make_lan_trace",
    "make_wan_trace",
]
