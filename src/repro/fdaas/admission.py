"""The admission screen: what stands between the UDP socket and the monitor.

Every datagram a multi-tenant monitor ingests first passes through an
:class:`AdmissionController`, which enforces the tenancy policy the
decoders deliberately do not know about:

1. **Tenancy** — the sender id must be ``tenant/peer`` with a registered
   tenant (``unnamespaced`` / ``unknown_tenant`` otherwise).
2. **Authentication** — a keyed tenant's heartbeats must be wire-v2 with
   an HMAC-SHA256 trailer verifying (constant-time) against the tenant's
   key (``missing_auth`` / ``bad_tag``).  Keyless tenants are accepted
   unauthenticated, v1 or v2 alike.
3. **Replay** — for keyed tenants, the verified sequence number must
   advance a per-sender high-water mark; re-delivering a captured
   datagram is rejected (``replayed``).  Only *verified* beats move the
   mark, so an attacker cannot wedge a peer by forging high sequence
   numbers.  (Unkeyed tenants skip this: without authentication, replay
   rejection adds no security and would double-drop benign UDP
   duplicates, which the monitor's own stale-beat handling already
   absorbs with correct accounting.)
4. **Rate limiting** — one token bucket per tenant (``rate_limited``).

*Malformed* datagrams are not screened: they pass through (``admit``
returns ``True``) and the monitor rejects them itself, keeping the
monitor the single authority on malformed counts — with reason and
source attribution — in every deployment, fdaas or not.  The controller
counts them separately as ``n_malformed_passthrough`` so the admission
stats reconcile with the monitor's.

The controller is synchronous, allocation-light, and shared by all three
ingest modes; :meth:`filter_arena` screens a zero-copy arena in place
(compacting surviving slots) so the vectorized path never materializes
per-datagram ``bytes``.
"""

from __future__ import annotations

import logging
import time
from typing import Dict, Optional

from repro.fdaas.tenants import Tenant, TenantRegistry, TokenBucket, split_peer
from repro.live.wire import (
    AUTH_VERSION,
    WireError,
    decode_fields,
    decode_fields_from,
    verify_tag,
    wire_version,
)

__all__ = ["ADMIT_REJECT_REASONS", "AdmissionController"]

logger = logging.getLogger(__name__)

#: Machine-readable admission reject reasons (disjoint from the wire
#: layer's :data:`repro.live.wire.REJECT_REASONS` — admission only ever
#: drops *well-formed* datagrams).
ADMIT_REJECT_REASONS = (
    "unnamespaced",
    "unknown_tenant",
    "missing_auth",
    "bad_tag",
    "replayed",
    "rate_limited",
)


class AdmissionController:
    """Screens decoded-valid datagrams against a :class:`TenantRegistry`.

    Parameters
    ----------
    registry:
        The tenant policy source.  Looked up live on every datagram, so
        tenants registered after construction take effect immediately.
    clock:
        Monotonic clock for token-bucket refills (injectable for tests).
    observability:
        Optional :class:`repro.obs.Observability`; when given, admission
        decisions are exported as ``repro_fdaas_admitted_total{tenant}``
        and ``repro_fdaas_rejected_total{tenant,reason}`` counters.
    """

    def __init__(
        self,
        registry: TenantRegistry,
        *,
        clock=time.monotonic,
        observability=None,
    ) -> None:
        self._registry = registry
        self._clock = clock
        # Verified-seq high-water per namespaced sender (keyed tenants only).
        self._last_seq: Dict[str, int] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self.n_admitted = 0
        self.n_rejected = 0
        self.n_malformed_passthrough = 0
        self.reject_reasons: Dict[str, int] = {}
        #: per-tenant {"admitted": n, "rejected": {reason: n}}; rejects that
        #: cannot be attributed to a registered tenant land under "".
        self.per_tenant: Dict[str, dict] = {}
        self.last_reject: Optional[dict] = None
        self._m_admitted = None
        self._m_rejected = None
        if observability is not None:
            self._bind_obs(observability)

    # ------------------------------------------------------------------
    # Datagram screening
    # ------------------------------------------------------------------
    def admit(self, data, addr=None, now: float | None = None) -> bool:
        """``True`` if the monitor should ingest ``data``.

        Malformed datagrams are admitted (the monitor owns malformed
        accounting); only well-formed datagrams failing the tenancy,
        authentication, replay, or rate policy are dropped here.
        """
        try:
            sender, seq, _ = decode_fields(data)
        except WireError:
            self.n_malformed_passthrough += 1
            return True
        return self._screen(data, sender, seq, addr, now)

    def _screen(self, data, sender: str, seq: int, addr, now) -> bool:
        tenant_id, _peer = split_peer(sender)
        if tenant_id is None:
            return self._reject("", "unnamespaced", sender, addr)
        tenant = self._registry.get(tenant_id)
        if tenant is None:
            return self._reject("", "unknown_tenant", sender, addr)
        if tenant.key is not None:
            if wire_version(data) != AUTH_VERSION:
                return self._reject(tenant_id, "missing_auth", sender, addr)
            if not verify_tag(data, tenant.key):
                return self._reject(tenant_id, "bad_tag", sender, addr)
            # Replay screen: only tag-verified beats move the high-water
            # mark, so forgeries cannot advance (or wedge) it.
            high = self._last_seq.get(sender, 0)
            if seq <= high:
                return self._reject(tenant_id, "replayed", sender, addr)
            self._last_seq[sender] = seq
        if tenant.rate is not None and not self._bucket(tenant).allow(
            self._clock() if now is None else now
        ):
            return self._reject(tenant_id, "rate_limited", sender, addr)
        self.n_admitted += 1
        self._tenant_stats(tenant_id)["admitted"] += 1
        return True

    def _bucket(self, tenant: Tenant) -> TokenBucket:
        bucket = self._buckets.get(tenant.tenant_id)
        if bucket is None or bucket.rate != tenant.rate or bucket.burst != tenant.burst:
            bucket = TokenBucket(tenant.rate, tenant.burst, now=self._clock())
            self._buckets[tenant.tenant_id] = bucket
        return bucket

    def _tenant_stats(self, tenant_id: str) -> dict:
        stats = self.per_tenant.get(tenant_id)
        if stats is None:
            stats = {"admitted": 0, "rejected": {}}
            self.per_tenant[tenant_id] = stats
        return stats

    def _reject(self, tenant_id: str, reason: str, sender: str, addr) -> bool:
        self.n_rejected += 1
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1
        rejected = self._tenant_stats(tenant_id)["rejected"]
        rejected[reason] = rejected.get(reason, 0) + 1
        source = f"{addr[0]}:{addr[1]}" if addr is not None else None
        self.last_reject = {
            "reason": reason,
            "tenant": tenant_id or None,
            "sender": sender,
            "source": source,
        }
        logger.warning(
            "admission rejected heartbeat from %s (%s): %s",
            sender,
            source or "unknown source",
            reason,
        )
        return False

    # ------------------------------------------------------------------
    # Arena screening (vectorized zero-copy path)
    # ------------------------------------------------------------------
    def filter_arena(self, arena) -> int:
        """Screen an arena's last drain in place; returns datagrams dropped.

        Surviving slots (including malformed ones — the monitor counts
        those) are compacted to the front of the arena so the vectorized
        ingest sees a dense prefix, exactly as if the dropped datagrams
        had never arrived.  The arena path has no per-datagram source
        addresses (``recv_into`` cannot report them), so rejects here
        carry tenant and reason but no source.
        """
        fill = arena.last_fill
        if fill == 0:
            return 0
        buffer = arena.buffer
        lengths = arena.lengths
        slot = arena.slot_bytes
        keep = 0
        dropped = 0
        for i in range(fill):
            length = lengths[i]
            try:
                sender, seq, _ = decode_fields_from(buffer, i * slot, length)
            except WireError:
                self.n_malformed_passthrough += 1
                admit = True
            else:
                admit = self._screen(arena.datagram(i), sender, seq, None, None)
            if not admit:
                dropped += 1
                continue
            if keep != i:
                src = i * slot
                dst = keep * slot
                buffer[dst : dst + length] = buffer[src : src + length]
                lengths[keep] = length
            keep += 1
        arena.last_fill = keep
        return dropped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Snapshot block for the status endpoint (`"admission"` key)."""
        return {
            "n_admitted": self.n_admitted,
            "n_rejected": self.n_rejected,
            "n_malformed_passthrough": self.n_malformed_passthrough,
            "reject_reasons": dict(self.reject_reasons),
            "tenants": {
                tid: {
                    "admitted": stats["admitted"],
                    "rejected": dict(stats["rejected"]),
                }
                for tid, stats in self.per_tenant.items()
            },
            "last_reject": self.last_reject,
        }

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _bind_obs(self, observability) -> None:
        reg = observability.registry
        self._m_admitted = reg.counter(
            "repro_fdaas_admitted_total",
            "Heartbeats admitted to the monitor, by tenant.",
            ("tenant",),
        )
        self._m_rejected = reg.counter(
            "repro_fdaas_rejected_total",
            "Heartbeats dropped by the admission screen, by tenant and reason.",
            ("tenant", "reason"),
        )
        reg.add_collect_hook(self._obs_collect)

    def _obs_collect(self) -> None:
        for tid, stats in self.per_tenant.items():
            label = tid or "unknown"
            self._m_admitted.labels(label).set_total(stats["admitted"])
            for reason, count in stats["rejected"].items():
                self._m_rejected.labels(label, reason).set_total(count)
