""":class:`FdaasServer` — the assembled failure-detection service.

One object composes the whole control plane around a single
:class:`~repro.live.monitor.LiveMonitor`:

- UDP ingest through an :class:`~repro.fdaas.admission.AdmissionController`
  (authentication, replay, tenancy, rate limits — all three ingest modes);
- the monitor's liveness poll (via the wrapped
  :class:`~repro.live.monitor.LiveMonitorServer`);
- a periodic :class:`~repro.fdaas.sla.SLATracker` evaluation loop;
- an :class:`~repro.fdaas.subscribe.EventBroker` fed by both the
  monitor's transition stream and the SLA loop;
- a status endpoint extended with the ``events``/``subscribe`` commands,
  whose snapshots carry ``admission`` and ``sla`` blocks.

The monitor must have been constructed with observability *including QoS
health* — SLA enforcement is meaningless without the rolling estimates —
and the server fails fast at construction otherwise.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Tuple

from repro.fdaas.admission import AdmissionController
from repro.fdaas.sla import SLATracker
from repro.fdaas.subscribe import DEFAULT_CAPACITY, EventBroker
from repro.fdaas.tenants import TenantRegistry, split_peer
from repro.live.monitor import LiveMonitor, LiveMonitorServer
from repro.live.status import StatusServer, structured

__all__ = ["FdaasServer"]

logger = logging.getLogger("repro.fdaas.service")

#: Default SLA evaluation period (seconds) — an enforcement scrape, not a
#: hot path; breach latency is bounded by it.
DEFAULT_SLA_TICK = 0.25


class FdaasServer:
    """Multi-tenant failure detection as a service over one monitor.

    Parameters mirror :class:`~repro.live.monitor.LiveMonitorServer`
    (``host``/``port`` for UDP ingest, ``tick`` for the liveness poll,
    ``status_port`` for the TCP status endpoint, ``ingest_mode`` for
    scalar/batched/vectorized) plus the fdaas pieces: the tenant
    ``registry``, the SLA evaluation period ``sla_tick``, and the event
    ring ``broker_capacity``.
    """

    def __init__(
        self,
        monitor: LiveMonitor,
        registry: TenantRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tick: float = 0.02,
        status_port: int | None = None,
        status_host: str = "127.0.0.1",
        ingest_mode: str = "batched",
        sla_tick: float = DEFAULT_SLA_TICK,
        broker_capacity: int = DEFAULT_CAPACITY,
    ):
        obs = monitor.observability
        if obs is None or obs.qos is None:
            raise ValueError(
                "FdaasServer needs a monitor with QoS health enabled: "
                "LiveMonitor(..., obs=Observability(qos_health=True)) — "
                "SLA enforcement has nothing to evaluate otherwise"
            )
        if sla_tick <= 0:
            raise ValueError(f"sla_tick must be positive, got {sla_tick}")
        self.monitor = monitor
        self.registry = registry
        self.admission = AdmissionController(registry, observability=obs)
        self.broker = EventBroker(broker_capacity)
        self.sla = SLATracker(registry, monitor, observability=obs)
        self._sla_tick = float(sla_tick)
        self._status_port = status_port
        self._status_host = status_host
        # The inner server runs ingest + admission + the liveness poll;
        # its status endpoint stays off — ours serves the enriched one.
        self._server = LiveMonitorServer(
            monitor,
            host,
            port,
            tick=tick,
            ingest_mode=ingest_mode,
            admission=self.admission,
        )
        self._sla_task: asyncio.Task | None = None
        self.status: StatusServer | None = None
        self.address: Tuple[str, int] | None = None

    async def __aenter__(self) -> "FdaasServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Event production
    # ------------------------------------------------------------------
    def _on_transition(self, event) -> None:
        """Monitor listener: every detector transition becomes a broker
        event, attributed to its tenant (None for unnamespaced peers)."""
        tenant_id, peer = split_peer(event.peer)
        self.broker.publish(
            {
                "type": "transition",
                "time": event.time,
                "tenant": tenant_id,
                "peer": peer,
                "sender": event.peer,
                "detector": event.detector,
                "kind": event.kind,
                "trusting": event.trusting,
            }
        )

    async def _sla_loop(self) -> None:
        while True:
            await asyncio.sleep(self._sla_tick)
            for event in self.sla.evaluate():
                self.broker.publish({"type": "sla", **event.as_dict()})

    # ------------------------------------------------------------------
    # Status producers
    # ------------------------------------------------------------------
    def _snapshot(self) -> dict:
        snap = self._server._status_snapshot()  # monitor + admission blocks
        snap["sla"] = self.sla.status()
        snap["events"] = {
            "published": self.broker.n_published,
            "cursor": self.broker.cursor,
            "dropped": self.broker.dropped,
        }
        return snap

    def _summary(self) -> dict:
        snap = self._server._status_summary()
        snap["sla"] = self.sla.status()
        return snap

    def _delta(self, since: int | None = None, instance: str | None = None) -> dict:
        """Enriched delta: the monitor's incremental document plus the
        head-sized ``sla``/``events`` blocks (always included — they are
        O(tenants), not O(peers), so deltas stay cheap)."""
        doc = self._server._status_delta(since, instance)
        doc["sla"] = self.sla.status()
        doc["events"] = {
            "published": self.broker.n_published,
            "cursor": self.broker.cursor,
            "dropped": self.broker.dropped,
        }
        return doc

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Start ingest, the SLA loop, and the status endpoint."""
        self.monitor.subscribe(self._on_transition)
        # Attach the stall watchdog to the tenant event broker *before*
        # the server starts it: runtime-degradation events then land on
        # the same subscribe stream as SLA breaches.
        obs = self.monitor.observability
        diag = obs.diag if obs is not None else None
        if diag is not None:
            diag.watchdog.broker = self.broker
        self.address = await self._server.start()
        if self._status_port is not None:
            self.status = StatusServer(
                self._snapshot,
                host=self._status_host,
                port=self._status_port,
                summary=self._summary,
                delta=self._delta,
                metrics=self.monitor.render_metrics,
                trace=self.monitor.trace_document,
                events=self.broker.document,
                broker=self.broker,
                diag=self.monitor.diag_document if diag is not None else None,
            )
            await self.status.start()
        self._sla_task = asyncio.create_task(self._sla_loop())
        logger.info(
            structured(
                "fdaas-started",
                host=self.address[0],
                port=self.address[1],
                tenants=len(self.registry),
                sla_tick=self._sla_tick,
            )
        )
        return self.address

    async def stop(self) -> None:
        """Stop everything; one final SLA evaluation flushes pending events."""
        if self._sla_task is not None:
            self._sla_task.cancel()
            try:
                await self._sla_task
            except asyncio.CancelledError:
                pass
            self._sla_task = None
        await self._server.stop()
        for event in self.sla.evaluate():
            self.broker.publish({"type": "sla", **event.as_dict()})
        if self.status is not None:
            await self.status.stop()
            self.status = None
        try:
            self.monitor.unsubscribe(self._on_transition)
        except ValueError:
            pass
        logger.info(structured("fdaas-stopped", n_events=self.broker.n_published))

    @property
    def status_address(self) -> Tuple[str, int] | None:
        return self.status.address if self.status is not None else None
