"""repro.fdaas — failure detection as a service (the paper's §V, grown up).

A multi-tenant control plane layered over :mod:`repro.live`:

- :mod:`repro.fdaas.tenants` — tenant registration: per-tenant HMAC keys,
  peer-id namespacing (``tenant/peer``), token-bucket rate limits, and
  declared QoS targets (:class:`SLATargets`).
- :mod:`repro.fdaas.admission` — the datagram screen in front of the
  monitor: constant-time signature verification of wire-v2 heartbeats,
  replay rejection, tenancy checks, rate limiting; every drop is counted
  per tenant and reason.
- :mod:`repro.fdaas.sla` — live SLA enforcement: each tenant's targets
  (T_D^U, T_MR^U, T_M^U, P_A lower bound) tracked against the rolling
  :class:`repro.obs.qos.QoSHealth` estimates, with breach/recovery events.
- :mod:`repro.fdaas.subscribe` — push delivery: a cursor-based event
  broker feeding local callbacks and long-lived status-endpoint streams,
  replacing poll-only status.
- :mod:`repro.fdaas.service` — :class:`FdaasServer`, the composition:
  UDP ingest → admission → monitor, an SLA evaluation loop, and a status
  endpoint extended with ``events``/``subscribe`` commands.
"""

from repro.fdaas.admission import ADMIT_REJECT_REASONS, AdmissionController
from repro.fdaas.sla import SLAEvent, SLATracker
from repro.fdaas.subscribe import (
    EventBroker,
    afetch_events,
    asubscribe_events,
    fetch_events,
)
from repro.fdaas.tenants import (
    SLATargets,
    Tenant,
    TenantRegistry,
    TokenBucket,
    namespaced,
    split_peer,
)
from repro.fdaas.service import FdaasServer

__all__ = [
    "ADMIT_REJECT_REASONS",
    "AdmissionController",
    "EventBroker",
    "FdaasServer",
    "SLAEvent",
    "SLATargets",
    "SLATracker",
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
    "afetch_events",
    "asubscribe_events",
    "fetch_events",
    "namespaced",
    "split_peer",
]
