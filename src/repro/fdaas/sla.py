"""Live SLA enforcement: tenant QoS targets vs. rolling QoS estimates.

The paper's QoS contract (§II) is specified *a priori* — T_D^U, T_MR^U,
T_M^U bounds fed to the configurator.  A service must also enforce it *a
posteriori*: is each tenant actually getting the QoS it registered for?
:class:`SLATracker` closes that loop by walking the monitor's rolling
:class:`repro.obs.qos.QoSHealth` estimates on every evaluation tick,
attributing each ``tenant/peer`` stream to its tenant, and comparing:

- ``t_mr`` — rolling mistake rate vs. the T_MR^U upper bound;
- ``t_m`` — rolling mean mistake duration vs. the T_M^U upper bound;
- ``p_a`` — rolling query accuracy vs. the registered *lower* bound
  (P_A is "probability the detector is correct when queried": higher is
  better, so the enforceable target is a floor);
- ``t_d`` — the *projected* detection time, ``suspicion_deadline −
  last_arrival`` from live monitor state, vs. the T_D^U upper bound.
  T_D is unobservable without ground truth about real crashes, but the
  current deadline margin is exactly the worst-case detection time if
  the peer crashed immediately after its last heartbeat — the same
  projection the monitor's ``repro_detector_t_d_seconds`` gauge exports.

Breaches are *edge-triggered*: a metric crossing its bound emits one
``breach`` :class:`SLAEvent`, and coming back within bound emits one
``recovery`` — the tracker keeps per-(tenant, peer, detector, metric)
state so a sustained breach does not spam an event per tick.  Events go
to the returned list (and thence the :class:`repro.fdaas.subscribe`
broker); current breach state is queryable per tenant via
:meth:`status` and exported as ``repro_fdaas_sla_breaches_total`` /
``repro_fdaas_sla_breached`` metrics.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.fdaas.tenants import TenantRegistry, split_peer

__all__ = ["SLAEvent", "SLATracker"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SLAEvent:
    """One SLA boundary crossing for one (tenant, peer, detector, metric)."""

    time: float
    tenant: str
    peer: str
    detector: str
    metric: str  # "t_d" | "t_mr" | "t_m" | "p_a"
    kind: str  # "breach" | "recovery"
    value: float
    limit: float

    def as_dict(self) -> dict:
        return {
            "time": self.time,
            "tenant": self.tenant,
            "peer": self.peer,
            "detector": self.detector,
            "metric": self.metric,
            "kind": self.kind,
            "value": self.value,
            "limit": self.limit,
        }


class SLATracker:
    """Evaluates every tenant's targets against live QoS estimates.

    Parameters
    ----------
    registry:
        Tenant policy source; only tenants with registered
        :class:`~repro.fdaas.tenants.SLATargets` are evaluated.
    monitor:
        The :class:`~repro.live.monitor.LiveMonitor` being served.  Must
        have been constructed with observability including QoS health —
        the tracker has nothing to enforce against otherwise.
    observability:
        Optional; when given, breach totals are exported as
        ``repro_fdaas_sla_breaches_total{tenant,metric}`` and the count
        of currently-breached series as
        ``repro_fdaas_sla_breached{tenant}``.
    """

    def __init__(self, registry: TenantRegistry, monitor, *, observability=None):
        obs = monitor.observability
        if obs is None or obs.qos is None:
            raise ValueError(
                "SLA enforcement needs a monitor with QoS health enabled "
                "(LiveMonitor(..., obs=Observability(qos_health=True)))"
            )
        self._registry = registry
        self._monitor = monitor
        self._qos = obs.qos
        # (tenant, peer, detector, metric) -> (value, limit) while breached.
        self._breached: Dict[Tuple[str, str, str, str], Tuple[float, float]] = {}
        self.n_evaluations = 0
        self.n_breaches = 0
        self.n_recoveries = 0
        self.breach_totals: Dict[Tuple[str, str], int] = {}
        self._m_breaches = None
        self._g_breached = None
        if observability is not None:
            self._bind_obs(observability)

    def evaluate(self, now: float | None = None) -> List[SLAEvent]:
        """One enforcement tick; returns the boundary crossings it found."""
        if now is None:
            now = self._monitor.now()
        self.n_evaluations += 1
        events: List[SLAEvent] = []
        seen: set = set()
        for (sender, detector), metrics in self._qos.all_metrics(now):
            tenant_id, peer = split_peer(sender)
            if tenant_id is None:
                continue
            tenant = self._registry.get(tenant_id)
            if tenant is None or tenant.sla is None or not tenant.sla.enforced:
                continue
            sla = tenant.sla
            for metric, value, limit, breached in (
                ("t_mr", metrics["t_mr"], sla.t_mr, _above(metrics["t_mr"], sla.t_mr)),
                ("t_m", metrics["t_m"], sla.t_m, _above(metrics["t_m"], sla.t_m)),
                ("p_a", metrics["p_a"], sla.p_a, _below(metrics["p_a"], sla.p_a)),
                self._t_d_check(sender, detector, sla),
            ):
                if limit is None or value is None:
                    continue
                key = (tenant_id, peer, detector, metric)
                seen.add(key)
                self._transition(events, now, key, value, limit, breached)
        # Series that vanished from QoS (peer forgotten) while breached:
        # emit the recovery so subscribers are never left with a stale alert.
        for key in [k for k in self._breached if k not in seen]:
            value, limit = self._breached.pop(key)
            self.n_recoveries += 1
            events.append(
                SLAEvent(
                    time=now,
                    tenant=key[0],
                    peer=key[1],
                    detector=key[2],
                    metric=key[3],
                    kind="recovery",
                    value=value,
                    limit=limit,
                )
            )
        return events

    def _t_d_check(self, sender: str, detector: str, sla):
        """The projected-T_D row for the metric table (may be unmeasurable)."""
        if sla.t_d is None:
            return ("t_d", None, None, False)
        state = self._monitor._peers.get(sender)
        if state is None or state.last_arrival is None:
            return ("t_d", None, sla.t_d, False)
        det = state.detectors.get(detector)
        deadline = det.suspicion_deadline if det is not None else None
        if deadline is None:
            return ("t_d", None, sla.t_d, False)
        projected = deadline - state.last_arrival
        return ("t_d", projected, sla.t_d, projected > sla.t_d)

    def _transition(self, events, now, key, value, limit, breached: bool) -> None:
        was = key in self._breached
        if breached and not was:
            self._breached[key] = (value, limit)
            self.n_breaches += 1
            tkey = (key[0], key[3])
            self.breach_totals[tkey] = self.breach_totals.get(tkey, 0) + 1
            kind = "breach"
        elif not breached and was:
            del self._breached[key]
            self.n_recoveries += 1
            kind = "recovery"
        else:
            if was:
                self._breached[key] = (value, limit)  # refresh observed value
            return
        tenant, peer, detector, metric = key
        logger.warning(
            "SLA %s: tenant=%s peer=%s detector=%s %s=%.6g (limit %.6g)",
            kind, tenant, peer, detector, metric, value, limit,
        )
        events.append(
            SLAEvent(
                time=now,
                tenant=tenant,
                peer=peer,
                detector=detector,
                metric=metric,
                kind=kind,
                value=value,
                limit=limit,
            )
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """Per-tenant SLA standing for snapshots (`"sla"` key)."""
        tenants: Dict[str, dict] = {}
        for tenant in self._registry:
            if tenant.sla is None or not tenant.sla.enforced:
                continue
            tenants[tenant.tenant_id] = {
                "targets": tenant.sla.as_dict(),
                "breached": False,
                "breaches": [],
            }
        for (tenant_id, peer, detector, metric), (value, limit) in sorted(
            self._breached.items()
        ):
            doc = tenants.get(tenant_id)
            if doc is None:  # tenant deregistered mid-breach
                continue
            doc["breached"] = True
            doc["breaches"].append(
                {
                    "peer": peer,
                    "detector": detector,
                    "metric": metric,
                    "value": value,
                    "limit": limit,
                }
            )
        return {
            "n_evaluations": self.n_evaluations,
            "n_breaches": self.n_breaches,
            "n_recoveries": self.n_recoveries,
            "tenants": tenants,
        }

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _bind_obs(self, observability) -> None:
        reg = observability.registry
        self._m_breaches = reg.counter(
            "repro_fdaas_sla_breaches_total",
            "SLA breach events, by tenant and metric.",
            ("tenant", "metric"),
        )
        self._g_breached = reg.gauge(
            "repro_fdaas_sla_breached",
            "Currently-breached SLA series, by tenant.",
            ("tenant",),
        )
        reg.add_collect_hook(self._obs_collect)

    def _obs_collect(self) -> None:
        for (tenant, metric), count in self.breach_totals.items():
            self._m_breaches.labels(tenant, metric).set_total(count)
        live: Dict[str, int] = {}
        for key in self._breached:
            live[key[0]] = live.get(key[0], 0) + 1
        for tenant in self._registry:
            if tenant.sla is not None and tenant.sla.enforced:
                self._g_breached.labels(tenant.tenant_id).set(
                    live.get(tenant.tenant_id, 0)
                )


def _above(value, limit) -> bool:
    return limit is not None and value is not None and value > limit


def _below(value, limit) -> bool:
    return limit is not None and value is not None and value < limit
