"""Push delivery of fdaas events: broker, local callbacks, stream clients.

The live status endpoint is poll-only by design — one document per
connection.  An SLA, though, is about *reaction time*: a tenant waiting
for a breach alert should not have to guess a polling interval.  This
module adds push on both sides of the wire:

- :class:`EventBroker` — the server-side hub.  Events (monitor
  transitions, SLA breaches/recoveries) are published as plain dicts and
  get a monotonically increasing ``id``; the broker retains the last
  ``capacity`` of them in a ring, fans each one out to registered local
  callbacks, and wakes any coroutine blocked in :meth:`wait`.  The
  ``id`` is the *cursor*: a client that reconnects resumes from the last
  id it saw and misses nothing still retained (``dropped`` in the
  document tells it when the ring outran it).
- :func:`afetch_events` / :func:`fetch_events` — one-shot clients of the
  ``events <cursor>`` status command (poll with resume).
- :func:`asubscribe_events` — the push client: a long-lived connection
  to the ``subscribe <cursor>`` status command, yielding each event dict
  the moment the server writes it.

The broker is loop-affine in the same way the rest of the live runtime
is: :meth:`publish` must be called from the event-loop thread (the
monitor's ingest callbacks and the SLA loop both are), so no locks are
needed anywhere.
"""

from __future__ import annotations

import asyncio
import json
import logging
from collections import deque
from typing import AsyncIterator, Callable, Dict, List

__all__ = [
    "DEFAULT_CAPACITY",
    "EventBroker",
    "afetch_events",
    "asubscribe_events",
    "fetch_events",
]

logger = logging.getLogger(__name__)

#: Default event-ring retention.
DEFAULT_CAPACITY = 1024


class EventBroker:
    """Cursor-addressed event ring with callback and coroutine fan-out."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._next_id = 1
        self.n_published = 0
        self.n_listener_errors = 0
        self._listeners: List[Callable[[dict], None]] = []
        self._wakeup: asyncio.Event | None = None

    # ------------------------------------------------------------------
    # Publishing (event-loop thread)
    # ------------------------------------------------------------------
    def publish(self, event: Dict) -> int:
        """Stamp, retain, and fan out one event; returns its id.

        The input dict is not mutated; listeners and the ring see a copy
        carrying the assigned ``"id"``.  Listener exceptions are caught
        and counted — one bad subscriber must not lose the event for the
        others (the same contract as the monitor's listener set).
        """
        stamped = {**event, "id": self._next_id}
        self._next_id += 1
        self.n_published += 1
        self._ring.append(stamped)
        for listener in tuple(self._listeners):
            try:
                listener(stamped)
            except Exception:
                self.n_listener_errors += 1
                logger.exception(
                    "event listener %r raised; event %d dropped by it",
                    listener,
                    stamped["id"],
                )
        if self._wakeup is not None:
            self._wakeup.set()
        return stamped["id"]

    # ------------------------------------------------------------------
    # Local callbacks
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[dict], None]) -> None:
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[dict], None]) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            raise ValueError("listener is not subscribed") from None

    # ------------------------------------------------------------------
    # Cursor reads (status endpoint)
    # ------------------------------------------------------------------
    @property
    def cursor(self) -> int:
        """Id of the most recently published event (0 = none yet)."""
        return self._next_id - 1

    @property
    def dropped(self) -> int:
        """Events that aged out of the ring."""
        return self.n_published - len(self._ring)

    def document(self, since: int = 0) -> dict:
        """Retained events with id > ``since``, as a JSON-able document."""
        events = [e for e in self._ring if e["id"] > since]
        # How much of (since, now] the ring no longer covers: everything
        # the client asked for below the oldest retained id is gone.
        oldest = self._ring[0]["id"] if self._ring else self._next_id
        missed = max(0, min(oldest - 1, self.cursor) - since)
        return {
            "events": events,
            "cursor": self.cursor,
            "dropped": missed,
            "capacity": self.capacity,
        }

    async def wait(self, since: int) -> None:
        """Block until an event with id > ``since`` exists."""
        while self.cursor <= since:
            if self._wakeup is None or self._wakeup.is_set():
                self._wakeup = asyncio.Event()
            await self._wakeup.wait()


async def afetch_events(
    host: str,
    port: int,
    cursor: int = 0,
    *,
    timeout: float = 5.0,
    retries: int = 0,
) -> dict:
    """One-shot fetch of retained events past ``cursor`` (JSON document)."""
    from repro.live.status import _fetch_raw, _retrying

    request = f"events {cursor}\n".encode("ascii")
    raw = await _retrying(
        lambda: _fetch_raw(host, port, timeout, request), retries
    )
    return json.loads(raw.decode("utf-8"))


def fetch_events(
    host: str,
    port: int,
    cursor: int = 0,
    *,
    timeout: float = 5.0,
    retries: int = 0,
) -> dict:
    """Synchronous variant of :func:`afetch_events`."""
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(
            afetch_events(host, port, cursor, timeout=timeout, retries=retries)
        )
    raise RuntimeError(
        "fetch_events() is synchronous; inside an event loop await "
        "afetch_events(...) instead"
    )


async def asubscribe_events(
    host: str,
    port: int,
    cursor: int = 0,
    *,
    connect_timeout: float = 5.0,
) -> AsyncIterator[dict]:
    """Yield events pushed by a ``subscribe <cursor>`` stream, as they land.

    The generator runs until the server closes the connection (or the
    consumer breaks out / is cancelled, which closes it from this side).
    Each yielded dict carries the broker-assigned ``"id"``; resuming
    after a disconnect is ``asubscribe_events(..., cursor=last_id)``.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), connect_timeout
    )
    try:
        writer.write(f"subscribe {cursor}\n".encode("ascii"))
        await writer.drain()
        while True:
            line = await reader.readline()
            if not line:
                return  # server closed the stream
            yield json.loads(line.decode("utf-8"))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass
