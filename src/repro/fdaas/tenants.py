"""Tenant registration for the FDaaS control plane.

A *tenant* is one application sharing the monitor (the paper's §V: many
applications, one heartbeat stream).  Each tenant registers:

- an optional **HMAC key**: when present, the tenant's heartbeats must be
  wire-v2 datagrams whose trailer verifies against it (spoofed or
  replayed beats are rejected by the admission layer); without a key the
  tenant is *unauthenticated* and plain v1 datagrams are accepted;
- an optional **rate limit**: a token bucket (``rate`` heartbeats/second
  sustained, ``burst`` capacity) shared by all the tenant's peers;
- optional **SLA targets** (:class:`SLATargets`): the QoS bounds the
  service enforces live for this tenant (see :mod:`repro.fdaas.sla`).

Peers are namespaced ``tenant/peer`` on the wire — the sender id carries
the tenancy, so one monitor isolates many applications without a second
channel.  ``tenant`` ids therefore must not contain ``/``; everything
after the first ``/`` is the tenant's own peer name.

The registry round-trips through a JSON-able config dict (keys
hex-encoded) so it can be persisted by ``repro-fd fdaas register``,
shipped to SO_REUSEPORT shard workers as a picklable dict, and loaded by
``repro-fd live monitor --tenants``.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

__all__ = [
    "SLATargets",
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
    "namespaced",
    "split_peer",
]


def namespaced(tenant_id: str, peer: str) -> str:
    """The wire sender id of ``peer`` owned by ``tenant_id``."""
    if not tenant_id or "/" in tenant_id:
        raise ValueError(f"invalid tenant id {tenant_id!r}")
    if not peer:
        raise ValueError("peer name must be non-empty")
    return f"{tenant_id}/{peer}"


def split_peer(sender: str) -> Tuple[str | None, str]:
    """``tenant/peer`` → ``(tenant, peer)``; unnamespaced → ``(None, sender)``."""
    tenant_id, sep, peer = sender.partition("/")
    if not sep or not tenant_id or not peer:
        return None, sender
    return tenant_id, peer


@dataclass(frozen=True)
class SLATargets:
    """Per-tenant QoS bounds, in the paper's §II metric vocabulary.

    ``t_d``, ``t_mr`` and ``t_m`` are *upper* bounds (T_D^U, T_MR^U,
    T_M^U: seconds, mistakes/second, seconds).  ``p_a`` is a *lower*
    bound on query accuracy: P_A is "probability the detector is correct
    when queried" — more is better, so the enforceable bound is a floor.
    (The service-level contract of §V-B specifies the same four knobs.)
    Any field may be ``None`` (not enforced).
    """

    t_d: float | None = None
    t_mr: float | None = None
    t_m: float | None = None
    p_a: float | None = None

    def __post_init__(self) -> None:
        for name in ("t_d", "t_mr", "t_m", "p_a"):
            value = getattr(self, name)
            if value is None:
                continue
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{name} target must be finite and >= 0, got {value}")
        if self.p_a is not None and self.p_a > 1.0:
            raise ValueError(f"p_a is a probability bound, got {self.p_a}")

    @property
    def enforced(self) -> bool:
        return any(
            getattr(self, name) is not None for name in ("t_d", "t_mr", "t_m", "p_a")
        )

    def as_dict(self) -> dict:
        return {"t_d": self.t_d, "t_mr": self.t_mr, "t_m": self.t_m, "p_a": self.p_a}

    @classmethod
    def from_dict(cls, doc: dict) -> "SLATargets":
        return cls(
            t_d=doc.get("t_d"),
            t_mr=doc.get("t_mr"),
            t_m=doc.get("t_m"),
            p_a=doc.get("p_a"),
        )


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Monotonic-clock based and allocation-free per decision; one instance
    guards one tenant's aggregate heartbeat rate.
    """

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float, *, now: float | None = None):
        if not (rate > 0 and math.isfinite(rate)):
            raise ValueError(f"rate must be positive and finite, got {rate}")
        if not (burst >= 1 and math.isfinite(burst)):
            raise ValueError(f"burst must be >= 1 and finite, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = time.monotonic() if now is None else now

    def allow(self, now: float | None = None) -> bool:
        """Spend one token if available; refills lazily from elapsed time."""
        if now is None:
            now = time.monotonic()
        elapsed = now - self._last
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self._last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class Tenant:
    """One registered application: identity, credentials, limits, targets."""

    tenant_id: str
    key: bytes | None = None
    rate: float | None = None
    burst: float | None = None
    sla: SLATargets | None = None

    def __post_init__(self) -> None:
        if not self.tenant_id or "/" in self.tenant_id:
            raise ValueError(
                f"tenant id must be non-empty and '/'-free, got {self.tenant_id!r}"
            )
        if len(self.tenant_id.encode("utf-8")) > 128:
            raise ValueError("tenant id exceeds 128 UTF-8 bytes")
        if self.key is not None and len(self.key) < 8:
            raise ValueError("tenant keys must be at least 8 bytes")
        if self.rate is not None and not (self.rate > 0 and math.isfinite(self.rate)):
            raise ValueError(f"rate must be positive and finite, got {self.rate}")
        if self.rate is not None:
            burst = self.burst if self.burst is not None else max(2.0 * self.rate, 1.0)
            object.__setattr__(self, "burst", float(burst))
        elif self.burst is not None:
            raise ValueError("burst without rate is meaningless")

    @property
    def authenticated(self) -> bool:
        return self.key is not None

    def bucket(self) -> TokenBucket | None:
        return TokenBucket(self.rate, self.burst) if self.rate is not None else None

    def as_dict(self, *, redact: bool = False) -> dict:
        """JSON-able form; ``redact=True`` replaces the key with a marker."""
        if self.key is None:
            key: str | None = None
        else:
            key = "<redacted>" if redact else self.key.hex()
        return {
            "tenant_id": self.tenant_id,
            "key": key,
            "rate": self.rate,
            "burst": self.burst,
            "sla": self.sla.as_dict() if self.sla is not None else None,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Tenant":
        key = doc.get("key")
        sla = doc.get("sla")
        return cls(
            tenant_id=doc["tenant_id"],
            key=bytes.fromhex(key) if key else None,
            rate=doc.get("rate"),
            burst=doc.get("burst"),
            sla=SLATargets.from_dict(sla) if sla else None,
        )


class TenantRegistry:
    """The set of registered tenants; the admission layer's policy source."""

    def __init__(self) -> None:
        self._tenants: Dict[str, Tenant] = {}

    def register(self, tenant: Tenant) -> Tenant:
        """Add or replace one tenant (re-registration updates in place)."""
        self._tenants[tenant.tenant_id] = tenant
        return tenant

    def get(self, tenant_id: str) -> Tenant | None:
        return self._tenants.get(tenant_id)

    def remove(self, tenant_id: str) -> bool:
        return self._tenants.pop(tenant_id, None) is not None

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self._tenants.values())

    # ------------------------------------------------------------------
    # Config round-trip (JSON file on disk, picklable dict to shards)
    # ------------------------------------------------------------------
    def to_config(self) -> dict:
        return {
            "version": 1,
            "tenants": [t.as_dict() for t in self._tenants.values()],
        }

    @classmethod
    def from_config(cls, config: dict) -> "TenantRegistry":
        if config.get("version") != 1:
            raise ValueError(
                f"unsupported tenants config version {config.get('version')!r}"
            )
        registry = cls()
        for doc in config.get("tenants", []):
            registry.register(Tenant.from_dict(doc))
        return registry

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_config(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "TenantRegistry":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_config(json.load(fh))
