"""Dependency-free metrics primitives with Prometheus text exposition.

A :class:`MetricsRegistry` holds labeled metric *families* — one
:class:`Counter`, :class:`Gauge`, or :class:`Histogram` child per label
combination — and renders them all in the Prometheus text exposition
format (version 0.0.4), the lingua franca every scraper understands::

    reg = MetricsRegistry()
    received = reg.counter("repro_heartbeats_received_total",
                           "Datagrams that decoded as heartbeats.")
    received.inc()
    batch = reg.histogram("repro_ingest_batch_size",
                          "Datagrams per ingest_many call.",
                          buckets=log_buckets(1, 4096))
    batch.observe(64)
    text = reg.render()          # scrape-able exposition document

Families are **get-or-create**: requesting an already registered name
with an identical spec returns the existing family (so independent call
sites — a sweep run here, a monitor there — can share one registry
without coordination), while a conflicting re-registration raises.

Two design choices serve the live runtime's hot paths:

- *Derived counters.*  The monitor already maintains exact running
  totals (``n_accepted``, ``n_transitions``, ...), so its counters are
  refreshed from those fields by **collect hooks** at scrape time via
  :meth:`Counter.set_total` rather than incremented per datagram — the
  ingest loop pays nothing for them.  ``set_total`` enforces
  monotonicity, keeping counter semantics honest.
- *Mergeable expositions.*  :func:`parse_exposition` and
  :func:`merge_expositions` turn rendered documents back into samples
  and combine them (counters and histogram series sum; gauges take the
  max unless a per-name policy says ``"sum"``), which is how the shard
  aggregator serves one metrics document for N worker processes.

Everything is synchronous-single-writer by design (the asyncio monitor
mutates from one thread); no locks anywhere.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "log_buckets",
    "merge_expositions",
    "merge_parsed",
    "parse_exposition",
    "render_exposition",
    "render_parsed",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default log-scale buckets for second-valued histograms: 1 µs .. 10 s,
#: three per decade (1, 2.15, 4.64 × 10^k — a geometric ladder).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (k / 3.0), 10) for k in range(-18, 4)
)


def log_buckets(lo: float, hi: float, per_decade: int = 3) -> Tuple[float, ...]:
    """Fixed log-scale histogram bucket bounds covering ``[lo, hi]``.

    Returns a geometric ladder with ``per_decade`` bounds per factor of
    ten, starting at ``lo`` and ending at the first bound ≥ ``hi`` (the
    implicit ``+Inf`` bucket is always added by :class:`Histogram`).
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be positive, got {per_decade}")
    ratio = 10.0 ** (1.0 / per_decade)
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * ratio)
    return tuple(round(b, 12) for b in bounds)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(val))}"'
        for name, val in zip(labelnames, labelvalues)
    )
    return "{" + inner + "}"


class Counter:
    """Monotonically non-decreasing count (one child of a family)."""

    __slots__ = ("_value", "_fam")

    def __init__(self) -> None:
        self._value = 0.0
        self._fam: "MetricFamily | None" = None

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount}) rejected")
        if amount:
            self._value += amount
            if self._fam is not None:
                self._fam._gen += 1

    def set_total(self, total: float) -> None:
        """Mirror an externally maintained monotone total (collect hooks).

        The source of truth stays wherever the hot path already counts;
        this just publishes it.  A regressing total raises — that is a
        bug in the caller's accounting, not a representable state.
        """
        if total < self._value:
            raise ValueError(
                f"counter total regressed: {total} < {self._value}"
            )
        if total != self._value:
            self._value = float(total)
            if self._fam is not None:
                self._fam._gen += 1


class Gauge:
    """A value that can go up and down (one child of a family)."""

    __slots__ = ("_value", "_fam")

    def __init__(self) -> None:
        self._value = 0.0
        self._fam: "MetricFamily | None" = None

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        value = float(value)
        if value != self._value:
            self._value = value
            if self._fam is not None:
                self._fam._gen += 1

    def inc(self, amount: float = 1.0) -> None:
        if amount:
            self._value += amount
            if self._fam is not None:
                self._fam._gen += 1

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Cumulative-bucket histogram with fixed bounds (one family child).

    ``buckets`` are the finite upper bounds; the ``+Inf`` bucket is
    implicit.  ``observe`` costs one binary-search-free linear scan over
    a short, fixed ladder — fine at per-batch (not per-datagram) rates.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "_fam")

    def __init__(self, buckets: Sequence[float]) -> None:
        self._fam: "MetricFamily | None" = None
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must increase: {bounds}")
        if bounds and math.isinf(bounds[-1]):
            bounds = bounds[:-1]  # +Inf is implicit
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.sum += value
        self.count += 1
        if self._fam is not None:
            self._fam._gen += 1


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one metric name, one per label-value combination.

    With no label names the family exposes its single anonymous child's
    API directly (``inc``/``set``/``observe``/``value``), so unlabeled
    metrics read naturally at call sites.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name}")
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if kind == "histogram":
            self._buckets = tuple(buckets if buckets is not None else DEFAULT_TIME_BUCKETS)
        elif buckets is not None:
            raise ValueError(f"buckets only apply to histograms, not {kind}")
        else:
            self._buckets = None
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}
        # Exposition cache: every *observable* change (a child's value
        # actually moving, a child created/removed) bumps ``_gen``;
        # ``render`` re-serialises only when the generation moved since
        # the cached text was produced.  No-op mutations — ``inc(0)``,
        # ``set`` to the current value, ``set_total`` of an unchanged
        # running total (the common collect-hook case between scrapes) —
        # deliberately do not invalidate.
        self._gen = 0
        self._rendered: Tuple[int, str] | None = None

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets)
        return _KINDS[self.kind]()

    def labels(self, *labelvalues: object):
        """The child for one label-value combination (created on demand)."""
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label value(s) "
                f"({', '.join(self.labelnames) or 'none'}), got {len(labelvalues)}"
            )
        key = tuple(str(v) for v in labelvalues)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            child._fam = self
            self._children[key] = child
            self._gen += 1
        return child

    def remove(self, *labelvalues: object) -> None:
        """Forget one child (e.g. a departed peer's series)."""
        gone = self._children.pop(tuple(str(v) for v in labelvalues), None)
        if gone is not None:
            gone._fam = None
            self._gen += 1

    def clear(self) -> None:
        if self._children:
            for child in self._children.values():
                child._fam = None
            self._children.clear()
            self._gen += 1

    @property
    def children(self) -> Dict[Tuple[str, ...], object]:
        return dict(self._children)

    # -- anonymous-child conveniences (unlabeled families) --------------
    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labeled by {self.labelnames}; use .labels(...)"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def set_total(self, total: float) -> None:
        self._solo().set_total(total)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    # -- exposition -----------------------------------------------------
    def render(self) -> str:
        """The family's text block, served from cache while unchanged.

        The returned string is *identical by object* across renders with
        no intervening change, which lets callers (the registry, the
        shard aggregator's parsed-document cache) detect "nothing moved"
        with an ``is`` check instead of a byte compare.
        """
        held = self._rendered
        if held is not None and held[0] == self._gen:
            return held[1]
        text = self._render_uncached()
        self._rendered = (self._gen, text)
        return text

    def _render_uncached(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key in sorted(self._children):
            child = self._children[key]
            if self.kind == "histogram":
                cumulative = 0
                for bound, count in zip(
                    (*child.bounds, math.inf), child.counts
                ):
                    cumulative += count
                    labels = _format_labels(
                        (*self.labelnames, "le"),
                        (*key, _format_value(float(bound))),
                    )
                    lines.append(f"{self.name}_bucket{labels} {cumulative}")
                labels = _format_labels(self.labelnames, key)
                lines.append(f"{self.name}_sum{labels} {_format_value(child.sum)}")
                lines.append(f"{self.name}_count{labels} {child.count}")
            else:
                labels = _format_labels(self.labelnames, key)
                lines.append(f"{self.name}{labels} {_format_value(child.value)}")
        return "\n".join(lines) + "\n"


class MetricsRegistry:
    """Named metric families plus scrape-time collect hooks."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._hooks: List[Callable[[], None]] = []

    # -- registration ---------------------------------------------------
    def _get_or_create(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        held = self._families.get(name)
        if held is not None:
            if held.kind != kind or held.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {held.kind} "
                    f"with labels {held.labelnames}; cannot re-register as "
                    f"{kind} with labels {tuple(labelnames)}"
                )
            return held
        family = MetricFamily(name, help_text, kind, labelnames, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, help_text, "counter", labelnames)

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, help_text, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        return self._get_or_create(name, help_text, "histogram", labelnames, buckets)

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    @property
    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    # -- collection -----------------------------------------------------
    def add_collect_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` before every render to refresh derived samples.

        This is how hot paths stay clean: the monitor's collect hook
        mirrors its running totals into counters and recomputes QoS
        gauges once per scrape instead of once per datagram.
        """
        self._hooks.append(hook)

    def collect(self) -> None:
        for hook in self._hooks:
            hook()

    def render(self) -> str:
        """The full Prometheus text exposition document (runs the hooks)."""
        self.collect()
        return "".join(family.render() for family in self.families)


def render_exposition(registry: MetricsRegistry) -> str:
    """Functional alias of :meth:`MetricsRegistry.render`."""
    return registry.render()


# ----------------------------------------------------------------------
# Parsing + merging (the shard aggregator's half of the story)
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_exposition(text: str) -> Dict[str, dict]:
    """Parse a Prometheus text document into family descriptions.

    Returns ``{family_name: {"type", "help", "samples"}}`` where
    ``samples`` maps ``(sample_name, ((label, value), ...))`` to the
    numeric value.  Histogram series stay as their ``_bucket``/``_sum``/
    ``_count`` samples under the family name, which is exactly the shape
    :func:`merge_expositions` needs.  Raises :class:`ValueError` on
    malformed lines, so a garbled scrape is loud, not silently partial.
    """
    families: Dict[str, dict] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": {}}
            )["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": {}}
            )["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"malformed exposition line {lineno}: {raw!r}")
        sample_name = match.group("name")
        labels: Tuple[Tuple[str, str], ...] = ()
        if match.group("labels"):
            labels = tuple(
                (key, _unescape_label_value(val))
                for key, val in _LABEL_PAIR_RE.findall(match.group("labels"))
            )
        family_name = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and families.get(base, {}).get("type") == "histogram":
                family_name = base
                break
        family = families.setdefault(
            family_name, {"type": "untyped", "help": "", "samples": {}}
        )
        family["samples"][(sample_name, labels)] = _parse_value(
            match.group("value")
        )
    return families


def merge_parsed(
    documents: Iterable[Dict[str, dict]],
    *,
    gauge_policy: Mapping[str, str] | None = None,
) -> Dict[str, dict]:
    """Merge already-parsed exposition documents (shard aggregation core).

    Takes :func:`parse_exposition` outputs and combines them without
    re-parsing — the shard parent caches each worker's parsed document
    keyed on its (cached, identity-stable) text and only re-parses the
    workers whose exposition actually changed.  Inputs are not mutated.
    Merge rules are :func:`merge_expositions`'s: counters and histogram
    series sum per label set; gauges take the max unless
    ``gauge_policy[name]`` is ``"sum"`` (add across documents) or
    ``"last"`` (the later document wins — identity gauges such as
    ``repro_build_info`` where a numeric fold is meaningless).
    """
    policy = dict(gauge_policy or {})
    merged: Dict[str, dict] = {}
    for document in documents:
        for name, family in document.items():
            held = merged.setdefault(
                name,
                {"type": family["type"], "help": family["help"], "samples": {}},
            )
            if held["type"] == "untyped":
                held["type"] = family["type"]
            if not held["help"]:
                held["help"] = family["help"]
            rule = policy.get(name)
            summing = held["type"] in ("counter", "histogram") or rule == "sum"
            for key, value in family["samples"].items():
                if key not in held["samples"] or rule == "last":
                    held["samples"][key] = value
                elif summing:
                    held["samples"][key] += value
                else:
                    held["samples"][key] = max(held["samples"][key], value)
    return merged


def render_parsed(merged: Dict[str, dict]) -> str:
    """Serialise a parsed/merged document back to exposition text."""
    lines: List[str] = []
    for name in sorted(merged):
        family = merged[name]
        lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['type']}")
        for (sample_name, labels), value in sorted(family["samples"].items()):
            label_text = _format_labels(
                tuple(k for k, _ in labels), tuple(v for _, v in labels)
            )
            lines.append(f"{sample_name}{label_text} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def merge_expositions(
    texts: Iterable[str],
    *,
    gauge_policy: Mapping[str, str] | None = None,
) -> str:
    """Merge several exposition documents into one (shard aggregation).

    Counters and histogram series (``_bucket``/``_sum``/``_count``) are
    summed per label set; gauges take the **max** per label set unless
    ``gauge_policy[name]`` says otherwise — ``"sum"`` for
    population-style gauges (peer counts, heap sizes, rates — they add
    across shards), ``"last"`` for identity gauges where the later
    document simply wins (build info, process start time).  Label sets
    unique to one document pass through, so
    per-(peer, detector) series union naturally — a peer lives on one
    shard.  Help/type metadata comes from the first document defining a
    family.  Convenience composition of :func:`parse_exposition`,
    :func:`merge_parsed` and :func:`render_parsed`.
    """
    return render_parsed(
        merge_parsed(
            (parse_exposition(text) for text in texts),
            gauge_policy=gauge_policy,
        )
    )
