"""The observability bundle and the process-wide default.

:class:`Observability` ties the three layers together — one
:class:`~repro.obs.metrics.MetricsRegistry`, optionally one
:class:`~repro.obs.tracer.HeartbeatTracer`, optionally one
:class:`~repro.obs.qos.QoSHealth` — as the single object runtime
components accept (``LiveMonitor(..., obs=...)``).  Passing ``None``
(every constructor's default) disables observability outright: the hot
paths see a ``None`` attribute and skip all instrumentation, which is
what keeps the committed BENCH_ingest/BENCH_live numbers honest.

The module also holds the **process default** used by components with no
natural injection point (the replay sweep engine is called from a dozen
experiment runners): :func:`default_observability` returns ``None``
unless :func:`set_default_observability` installed a bundle — one
attribute read per *call into the subsystem*, never per data point.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.qos import DEFAULT_WINDOW, QoSHealth
from repro.obs.tracer import DEFAULT_CAPACITY, HeartbeatTracer

__all__ = [
    "Observability",
    "default_observability",
    "set_default_observability",
]


class Observability:
    """One registry + optional tracer + optional QoS health, bundled.

    Parameters
    ----------
    registry:
        Metrics registry; a fresh one is created when omitted.
    tracer:
        Heartbeat lifecycle tracer; ``trace=False`` disables tracing
        while keeping metrics.
    qos:
        Rolling QoS estimators; ``qos_health=False`` disables them.
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        tracer: HeartbeatTracer | None = None,
        qos: QoSHealth | None = None,
        trace: bool = True,
        trace_capacity: int = DEFAULT_CAPACITY,
        trace_sample_every: int = 1,
        qos_health: bool = True,
        qos_window: float = DEFAULT_WINDOW,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        if tracer is None and trace:
            tracer = HeartbeatTracer(
                trace_capacity, sample_every=trace_sample_every
            )
        self.tracer = tracer
        if qos is None and qos_health:
            qos = QoSHealth(qos_window)
        self.qos = qos

    def render_metrics(self) -> str:
        """The Prometheus text document (runs collect hooks first)."""
        return self.registry.render()

    def trace_document(self, since: int = 0) -> dict:
        """The ``trace`` status-command response (empty without a tracer)."""
        if self.tracer is None:
            return {"cursor": 0, "dropped": 0, "events": [], "tracing": False}
        return self.tracer.document(since)


_default: Optional[Observability] = None


def default_observability() -> Observability | None:
    """The process-wide bundle, or ``None`` (observability off)."""
    return _default


def set_default_observability(obs: Observability | None) -> Observability | None:
    """Install (or clear, with ``None``) the process default; returns it."""
    global _default
    _default = obs
    return obs
