"""The observability bundle and the process-wide default.

:class:`Observability` ties the three layers together — one
:class:`~repro.obs.metrics.MetricsRegistry`, optionally one
:class:`~repro.obs.tracer.HeartbeatTracer`, optionally one
:class:`~repro.obs.qos.QoSHealth` — as the single object runtime
components accept (``LiveMonitor(..., obs=...)``).  Passing ``None``
(every constructor's default) disables observability outright: the hot
paths see a ``None`` attribute and skip all instrumentation, which is
what keeps the committed BENCH_ingest/BENCH_live numbers honest.

The module also holds the **process default** used by components with no
natural injection point (the replay sweep engine is called from a dozen
experiment runners): :func:`default_observability` returns ``None``
unless :func:`set_default_observability` installed a bundle — one
attribute read per *call into the subsystem*, never per data point.
"""

from __future__ import annotations

import importlib.util
import sys
import time
from typing import Optional

from repro.obs.diag import (
    DEFAULT_SAMPLE_EVERY,
    DEFAULT_STALL_THRESHOLD,
    RuntimeDiagnostics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.qos import DEFAULT_WINDOW, QoSHealth
from repro.obs.tracer import DEFAULT_CAPACITY, HeartbeatTracer

__all__ = [
    "Observability",
    "default_observability",
    "set_default_observability",
]


def _bind_identity(registry: MetricsRegistry) -> None:
    """Register the build-identity gauges every exposition carries.

    ``repro_build_info`` follows the Prometheus ``*_info`` convention: a
    constant ``1`` whose *labels* are the payload (package version,
    python, numpy availability, ingest modes compiled in), so federated
    scrapes can tell at a glance which build served which shard.
    ``repro_process_start_time_seconds`` is stamped when the bundle is
    created — for the runtimes, that is process start for all practical
    purposes.  Both merge across shards with last-writer-wins (see
    ``merge_parsed``'s ``"last"`` policy).
    """
    try:
        from repro import __version__ as version
    except Exception:  # pragma: no cover - defensive
        version = "unknown"
    py = "%d.%d.%d" % sys.version_info[:3]
    have_numpy = importlib.util.find_spec("numpy") is not None
    # The vectorized mode always exists (ArrayIngestEngine fallback);
    # numpy decides which engine backs it, and the label says which.
    modes = "scalar,batched,vectorized%s,adaptive" % (
        "" if have_numpy else "(array)",
    )
    registry.gauge(
        "repro_build_info",
        "Build/runtime identity; constant 1, the labels are the payload.",
        ("version", "python", "numpy", "ingest_modes"),
    ).labels(version, py, "1" if have_numpy else "0", modes).set(1)
    registry.gauge(
        "repro_process_start_time_seconds",
        "Unix time this observability bundle was created.",
    ).set(time.time())


class Observability:
    """One registry + optional tracer + optional QoS health, bundled.

    Parameters
    ----------
    registry:
        Metrics registry; a fresh one is created when omitted.
    tracer:
        Heartbeat lifecycle tracer; ``trace=False`` disables tracing
        while keeping metrics.
    qos:
        Rolling QoS estimators; ``qos_health=False`` disables them.
    diag:
        Runtime diagnostics plane (:class:`~repro.obs.diag.RuntimeDiagnostics`
        — pipeline stage timer, stall watchdog, flight recorder).  Off by
        default even when observability is on: pass ``diagnostics=True``
        (or a prebuilt ``diag``) to enable it.  ``diag_sample_every``
        tunes the stage-timing sampling (1-in-N drains) and
        ``stall_threshold`` the watchdog's loop-lag edge (seconds).
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        tracer: HeartbeatTracer | None = None,
        qos: QoSHealth | None = None,
        trace: bool = True,
        trace_capacity: int = DEFAULT_CAPACITY,
        trace_sample_every: int = 1,
        qos_health: bool = True,
        qos_window: float = DEFAULT_WINDOW,
        diag: RuntimeDiagnostics | None = None,
        diagnostics: bool = False,
        diag_sample_every: int = DEFAULT_SAMPLE_EVERY,
        stall_threshold: float = DEFAULT_STALL_THRESHOLD,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        if tracer is None and trace:
            tracer = HeartbeatTracer(
                trace_capacity, sample_every=trace_sample_every
            )
        self.tracer = tracer
        if qos is None and qos_health:
            qos = QoSHealth(qos_window)
        self.qos = qos
        if diag is None and diagnostics:
            diag = RuntimeDiagnostics(
                registry=self.registry,
                sample_every=diag_sample_every,
                stall_threshold=stall_threshold,
            )
        self.diag = diag
        _bind_identity(self.registry)

    def render_metrics(self) -> str:
        """The Prometheus text document (runs collect hooks first)."""
        return self.registry.render()

    def trace_document(self, since: int = 0) -> dict:
        """The ``trace`` status-command response (empty without a tracer)."""
        if self.tracer is None:
            return {"cursor": 0, "dropped": 0, "events": [], "tracing": False}
        return self.tracer.document(since)

    def diag_document(self, since: int = 0) -> dict:
        """The ``diag`` status-command response (stub when diagnostics
        are off, so clients get an explanation instead of a snapshot)."""
        if self.diag is None:
            return {"diagnostics": False}
        return self.diag.document(since)


_default: Optional[Observability] = None


def default_observability() -> Observability | None:
    """The process-wide bundle, or ``None`` (observability off)."""
    return _default


def set_default_observability(obs: Observability | None) -> Observability | None:
    """Install (or clear, with ``None``) the process default; returns it."""
    global _default
    _default = obs
    return obs
