"""Runtime self-diagnosis: stage timing, stall watchdog, flight recorder.

The paper's QoS guarantees quantify the *detector*; this module
quantifies the *process running it*.  A blocked event loop or a slow
drain inflates detection time in ways none of the detector-side metrics
attribute, so the runtime watches itself at three grains:

- :class:`PipelineTimer` — per-stage latency histograms across the hot
  path (``drain`` → ``decode`` → ``estimate`` → ``heap`` → ``render``),
  sampled (default 1-in-64 drains) so the committed ingest bench floors
  hold with diagnostics on;
- :class:`StallWatchdog` — a monotonic heartbeat task measuring event
  loop lag, counting GC pauses via :data:`gc.callbacks`, and emitting an
  edge-triggered ``repro_runtime_stalled`` event into an
  :class:`~repro.fdaas.subscribe.EventBroker` when the lag crosses a
  threshold (default 100 ms) — fdaas subscribers see runtime degradation
  next to SLA breaches;
- :class:`FlightRecorder` — a bounded ring of recent drain records
  (mode, batch size, fan-in, duration, arena occupancy, queue depths)
  dumped on demand through the status endpoint's ``diag`` request line
  or on ``SIGUSR1`` to stderr for post-mortem use.

:class:`RuntimeDiagnostics` bundles the three; it attaches to an
:class:`~repro.obs.runtime.Observability` via
``Observability(diagnostics=True)`` and rides into the monitor with the
``obs=`` argument every runtime component already takes.  Like the rest
of :mod:`repro.obs`, everything here is opt-in and costs nothing when
absent: the hot paths see a ``None`` attribute and skip out.
"""

from __future__ import annotations

import json
import signal
import sys
import time
from collections import deque
from typing import Callable, Dict, List, Mapping

from repro._validation import ensure_positive
from repro.obs.metrics import MetricsRegistry, log_buckets

__all__ = [
    "PIPELINE_STAGES",
    "FlightRecorder",
    "PipelineTimer",
    "RuntimeDiagnostics",
    "StallWatchdog",
    "install_sigusr1",
    "merge_diag_documents",
    "restore_sigusr1",
]

#: The hot-path stages, in pipeline order: socket drain → wire decode →
#: estimation push (plus detector update) → deadline-heap update →
#: snapshot/delta render.
PIPELINE_STAGES = ("drain", "decode", "estimate", "heap", "render")

#: Default stage-timing sampling: one drain in 64 pays the
#: ``perf_counter`` boundaries; the other 63 run undisturbed.
DEFAULT_SAMPLE_EVERY = 64

#: Default loop-lag threshold (seconds) for the stall edge.
DEFAULT_STALL_THRESHOLD = 0.1

#: Default watchdog heartbeat period (seconds).
DEFAULT_WATCHDOG_TICK = 0.05

#: Default flight-recorder ring capacity (drain records).
DEFAULT_RECORDER_CAPACITY = 256


class PipelineTimer:
    """Sampled per-stage latency accounting for the ingest pipeline.

    The instrumented call sites ask :meth:`sample` once per drain —
    one integer increment and a modulo — and only a sampled drain pays
    the ``perf_counter`` stage boundaries.  Observations land twice:
    in compact per-stage ``(count, total, max)`` accumulators (the
    ``diag`` status document) and, when a registry is attached, in the
    ``repro_pipeline_stage_seconds`` histogram family labeled by stage.
    """

    __slots__ = ("sample_every", "n_ticks", "_stats", "_observers")

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
    ):
        ensure_positive(sample_every, "sample_every")
        self.sample_every = int(sample_every)
        self.n_ticks = 0
        # stage -> [count, total_seconds, max_seconds]
        self._stats: Dict[str, List[float]] = {
            stage: [0, 0.0, 0.0] for stage in PIPELINE_STAGES
        }
        self._observers: Dict[str, Callable[[float], None]] | None = None
        if registry is not None:
            hist = registry.histogram(
                "repro_pipeline_stage_seconds",
                "Sampled wall time of one hot-path pipeline stage.",
                ("stage",),
                buckets=log_buckets(1e-7, 1.0, 3),
            )
            # Children resolved once; sampled observations skip .labels().
            self._observers = {
                stage: hist.labels(stage).observe for stage in PIPELINE_STAGES
            }

    def sample(self) -> bool:
        """Should this drain be stage-timed?  (The hot-path guard.)"""
        self.n_ticks += 1
        return self.n_ticks % self.sample_every == 0

    def observe(self, stage: str, seconds: float) -> None:
        """Record one sampled stage duration."""
        held = self._stats[stage]
        held[0] += 1
        held[1] += seconds
        if seconds > held[2]:
            held[2] = seconds
        if self._observers is not None:
            self._observers[stage](seconds)

    def document(self) -> dict:
        """JSON-able per-stage summary for the ``diag`` status command."""
        return {
            "sample_every": self.sample_every,
            "n_ticks": self.n_ticks,
            "stages": {
                stage: {"count": held[0], "total": held[1], "max": held[2]}
                for stage, held in self._stats.items()
                if held[0]
            },
        }


class FlightRecorder:
    """Bounded ring of recent drain records (the post-mortem black box).

    One record per socket drain — mode, batch size, fan-in, wall time,
    arena occupancy, queue depths — stored as a tuple (one deque append
    on the drain path) and rendered to dicts only at dump time.  Ids are
    monotone, so cursor-polling clients (``repro-fd live diag --watch``)
    detect ring wrap exactly as trace clients do.
    """

    _FIELDS = (
        "id", "time", "mode", "n", "fanin", "duration", "heap", "events",
        "arena",
    )

    __slots__ = ("capacity", "_ring", "n_recorded")

    def __init__(self, capacity: int = DEFAULT_RECORDER_CAPACITY):
        ensure_positive(capacity, "capacity")
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        self.n_recorded = 0  # total ever recorded (ids are 1..n_recorded)

    @property
    def n_dropped(self) -> int:
        return self.n_recorded - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def record(
        self,
        *,
        time: float,
        mode: str | None,
        n: int,
        fanin: int | None,
        duration: float,
        heap: int,
        events: int,
        arena: float | None = None,
    ) -> None:
        """Append one drain record (tuple-backed: cheap on the hot path)."""
        self.n_recorded += 1
        self._ring.append(
            (self.n_recorded, time, mode, n, fanin, duration, heap, events,
             arena)
        )

    def document(self, since: int = 0) -> dict:
        """Records with ``id > since`` plus cursor/drop accounting."""
        if since < 0:
            raise ValueError(f"cursor must be non-negative, got {since}")
        fields = self._FIELDS
        records = [
            dict(zip(fields, row)) for row in self._ring if row[0] > since
        ]
        oldest = records[0]["id"] if records else self.n_recorded + 1
        return {
            "cursor": self.n_recorded,
            "dropped": max(0, oldest - since - 1),
            "capacity": self.capacity,
            "records": records,
        }


class StallWatchdog:
    """Event-loop heartbeat: lag histogram, GC pauses, stall edge events.

    An asyncio task wakes every ``tick`` seconds on an absolute-deadline
    schedule (so sleep jitter never accumulates); the difference between
    the scheduled and the actual wake instant is the loop lag — the time
    some callback, GC pause, or scheduler stall held the loop hostage.
    Crossing ``threshold`` publishes one edge-triggered
    ``repro_runtime_stalled`` event into :attr:`broker` (when attached);
    dropping back publishes ``repro_runtime_recovered``.  GC pauses are
    measured via :data:`gc.callbacks` while the watchdog runs.
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        threshold: float = DEFAULT_STALL_THRESHOLD,
        tick: float = DEFAULT_WATCHDOG_TICK,
        broker=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        ensure_positive(threshold, "threshold")
        ensure_positive(tick, "tick")
        self.threshold = float(threshold)
        self.tick = float(tick)
        #: EventBroker-like object (``publish(dict)``); attach before
        #: :meth:`start` so stall edges reach subscribers.
        self.broker = broker
        self._clock = clock
        self.stalled = False
        self.n_stalls = 0
        self.n_ticks = 0
        self.max_lag = 0.0
        self.last_lag = 0.0
        self._lag_sum = 0.0
        self.gc_collections: Dict[int, int] = {}
        self.gc_pause_seconds = 0.0
        self.last_gc_pause: float | None = None
        self._gc_started: float | None = None
        self._gc_installed = False
        self._task = None
        self._h_lag = self._m_stalls = self._g_stalled = None
        self._m_gc = self._m_gc_seconds = None
        if registry is not None:
            self._h_lag = registry.histogram(
                "repro_eventloop_lag_seconds",
                "Observed event-loop lag per watchdog heartbeat.",
                buckets=log_buckets(1e-4, 10.0, 3),
            )
            self._m_stalls = registry.counter(
                "repro_runtime_stalls_total",
                "Edge-triggered loop stalls (lag crossed the threshold).",
            )
            self._g_stalled = registry.gauge(
                "repro_runtime_stalled",
                "1 while the loop lag is above the stall threshold.",
            )
            self._m_gc = registry.counter(
                "repro_gc_pauses_total",
                "Garbage collections observed while the watchdog ran.",
                ("generation",),
            )
            self._m_gc_seconds = registry.counter(
                "repro_gc_pause_seconds_total",
                "Total GC pause time observed while the watchdog ran.",
            )

    # ------------------------------------------------------------------
    def _gc_callback(self, phase: str, info: Mapping) -> None:
        if phase == "start":
            self._gc_started = time.perf_counter()
        elif phase == "stop" and self._gc_started is not None:
            pause = time.perf_counter() - self._gc_started
            self._gc_started = None
            gen = int(info.get("generation", -1))
            self.gc_collections[gen] = self.gc_collections.get(gen, 0) + 1
            self.gc_pause_seconds += pause
            self.last_gc_pause = pause
            if self._m_gc is not None:
                self._m_gc.labels(str(gen)).inc()
                self._m_gc_seconds.inc(pause)

    def observe_lag(self, lag: float, now: float) -> None:
        """Record one heartbeat's lag; drive the edge-triggered stall state.

        Factored out of the loop task so tests can exercise the edge
        logic without an event loop.
        """
        self.n_ticks += 1
        self.last_lag = lag
        self._lag_sum += lag
        if lag > self.max_lag:
            self.max_lag = lag
        if self._h_lag is not None:
            self._h_lag.observe(lag)
        if lag > self.threshold:
            if not self.stalled:
                self.stalled = True
                self.n_stalls += 1
                if self._m_stalls is not None:
                    self._m_stalls.inc()
                    self._g_stalled.set(1)
                if self.broker is not None:
                    self.broker.publish(
                        {
                            "type": "repro_runtime_stalled",
                            "time": now,
                            "lag": lag,
                            "threshold": self.threshold,
                        }
                    )
        elif self.stalled:
            self.stalled = False
            if self._g_stalled is not None:
                self._g_stalled.set(0)
            if self.broker is not None:
                self.broker.publish(
                    {
                        "type": "repro_runtime_recovered",
                        "time": now,
                        "lag": lag,
                        "threshold": self.threshold,
                    }
                )

    async def _run(self) -> None:
        import asyncio

        loop = asyncio.get_running_loop()
        start = loop.time()
        k = 0
        while True:
            k += 1
            target = start + k * self.tick
            await asyncio.sleep(max(0.0, target - loop.time()))
            now = loop.time()
            lag = max(0.0, now - target)
            self.observe_lag(lag, self._clock())
            if now > target + self.tick:
                # A stall ate whole heartbeat slots; skip them rather
                # than firing a catch-up burst of zero-lag ticks.
                k = int((now - start) / self.tick)

    def start(self) -> None:
        """Install the GC hooks and spawn the heartbeat task (idempotent;
        requires a running event loop)."""
        import asyncio
        import gc

        if not self._gc_installed:
            gc.callbacks.append(self._gc_callback)
            self._gc_installed = True
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    def stop(self) -> None:
        """Cancel the heartbeat task and remove the GC hooks (idempotent)."""
        import gc

        if self._gc_installed:
            try:
                gc.callbacks.remove(self._gc_callback)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._gc_installed = False
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def document(self) -> dict:
        """JSON-able watchdog state for the ``diag`` status command."""
        return {
            "threshold": self.threshold,
            "tick": self.tick,
            "running": self._task is not None and not self._task.done(),
            "stalled": self.stalled,
            "n_stalls": self.n_stalls,
            "lag": {
                "count": self.n_ticks,
                "last": self.last_lag,
                "max": self.max_lag,
                "mean": self._lag_sum / self.n_ticks if self.n_ticks else 0.0,
            },
            "gc": {
                "collections": {
                    str(gen): count
                    for gen, count in sorted(self.gc_collections.items())
                },
                "pause_seconds": self.gc_pause_seconds,
                "last_pause": self.last_gc_pause,
            },
        }


class RuntimeDiagnostics:
    """The diagnostics plane, bundled: timer + watchdog + flight recorder.

    Construct via ``Observability(diagnostics=True)`` (which shares the
    bundle's registry) or standalone for tests.  :meth:`document` is the
    producer behind the status endpoint's ``diag`` request line.
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        stall_threshold: float = DEFAULT_STALL_THRESHOLD,
        watchdog_tick: float = DEFAULT_WATCHDOG_TICK,
        recorder_capacity: int = DEFAULT_RECORDER_CAPACITY,
    ):
        self.timer = PipelineTimer(
            registry=registry, sample_every=sample_every
        )
        self.watchdog = StallWatchdog(
            registry=registry, threshold=stall_threshold, tick=watchdog_tick
        )
        self.recorder = FlightRecorder(recorder_capacity)

    def document(self, since: int = 0) -> dict:
        """The ``diag`` status-command response document."""
        return {
            "diagnostics": True,
            "stages": self.timer.document(),
            "watchdog": self.watchdog.document(),
            "recorder": self.recorder.document(since),
        }


def merge_diag_documents(documents: Mapping[object, dict]) -> dict:
    """Merge per-shard ``diag`` documents into one (parent aggregator).

    ``documents`` maps shard id → that worker's diag document.  Stage
    and lag accumulators merge like their metrics would (counts and
    totals sum, maxima take the worst case, ``stalled`` is true if any
    shard is stalled); flight-recorder records are tagged with their
    shard id and interleaved by time.  Per-shard cursors are reported
    under ``shards`` — one merged integer cursor cannot address N
    independent rings, so the merged document always carries the full
    retained window.
    """
    stages: Dict[str, dict] = {}
    records: List[dict] = []
    shards: Dict[str, dict] = {}
    lag = {"count": 0, "last": 0.0, "max": 0.0, "mean": 0.0}
    gc_collections: Dict[str, int] = {}
    watchdog = {
        "threshold": None,
        "tick": None,
        "running": False,
        "stalled": False,
        "n_stalls": 0,
        "lag": lag,
        "gc": {
            "collections": gc_collections,
            "pause_seconds": 0.0,
            "last_pause": None,
        },
    }
    sample_every = None
    n_ticks = 0
    lag_sum = 0.0
    for sid in sorted(documents, key=str):
        doc = documents[sid]
        st = doc.get("stages", {})
        if sample_every is None:
            sample_every = st.get("sample_every")
        n_ticks += st.get("n_ticks", 0)
        for stage, held in (st.get("stages") or {}).items():
            merged = stages.setdefault(
                stage, {"count": 0, "total": 0.0, "max": 0.0}
            )
            merged["count"] += held.get("count", 0)
            merged["total"] += held.get("total", 0.0)
            merged["max"] = max(merged["max"], held.get("max", 0.0))
        wd = doc.get("watchdog", {})
        if watchdog["threshold"] is None:
            watchdog["threshold"] = wd.get("threshold")
            watchdog["tick"] = wd.get("tick")
        watchdog["running"] = watchdog["running"] or wd.get("running", False)
        watchdog["stalled"] = watchdog["stalled"] or wd.get("stalled", False)
        watchdog["n_stalls"] += wd.get("n_stalls", 0)
        wl = wd.get("lag", {})
        lag["count"] += wl.get("count", 0)
        lag["max"] = max(lag["max"], wl.get("max", 0.0))
        lag["last"] = max(lag["last"], wl.get("last", 0.0))
        lag_sum += wl.get("mean", 0.0) * wl.get("count", 0)
        wgc = wd.get("gc", {})
        for gen, count in (wgc.get("collections") or {}).items():
            gc_collections[gen] = gc_collections.get(gen, 0) + count
        watchdog["gc"]["pause_seconds"] += wgc.get("pause_seconds", 0.0)
        if wgc.get("last_pause") is not None:
            watchdog["gc"]["last_pause"] = wgc["last_pause"]
        rec = doc.get("recorder", {})
        for record in rec.get("records", ()):
            records.append({**record, "shard": sid})
        shards[str(sid)] = {
            "cursor": rec.get("cursor", 0),
            "dropped": rec.get("dropped", 0),
            "n_stalls": wd.get("n_stalls", 0),
        }
    if lag["count"]:
        lag["mean"] = lag_sum / lag["count"]
    records.sort(key=lambda r: (r.get("time") or 0.0))
    return {
        "diagnostics": True,
        "merged": True,
        "n_shards": len(documents),
        "stages": {
            "sample_every": sample_every,
            "n_ticks": n_ticks,
            "stages": stages,
        },
        "watchdog": watchdog,
        "recorder": {"records": records},
        "shards": shards,
    }


#: Sentinel returned by :func:`install_sigusr1` when no handler could be
#: installed (platform without SIGUSR1, or not the main thread).
_SIG_UNAVAILABLE = object()


def install_sigusr1(producer: Callable[[], dict], stream=None) -> object:
    """Install a ``SIGUSR1`` handler dumping ``producer()`` as one JSON
    line to ``stream`` (stderr by default) — the post-mortem flight dump.

    Returns an opaque token for :func:`restore_sigusr1`.  Installation
    failures (no ``SIGUSR1`` on this platform, calling thread is not the
    main thread) are swallowed: diagnostics must never take the runtime
    down, and the ``diag`` request line still serves the same document.
    """
    sig = getattr(signal, "SIGUSR1", None)
    if sig is None:  # pragma: no cover - platform-dependent
        return _SIG_UNAVAILABLE

    def _handler(signum, frame):
        try:
            out = stream if stream is not None else sys.stderr
            out.write(json.dumps(producer(), sort_keys=True) + "\n")
            out.flush()
        except Exception:  # a dump must never kill the process
            pass

    try:
        return signal.signal(sig, _handler)
    except ValueError:  # not the main thread
        return _SIG_UNAVAILABLE


def restore_sigusr1(token: object) -> None:
    """Undo :func:`install_sigusr1` (no-op for an unavailable token)."""
    if token is _SIG_UNAVAILABLE:
        return
    try:
        signal.signal(signal.SIGUSR1, token)
    except (ValueError, TypeError):  # pragma: no cover - defensive
        pass
