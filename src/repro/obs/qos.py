"""Rolling QoS health estimators over the live transition stream.

The paper's accuracy metrics (§II-A2) are defined over a *closed*
observation window — :func:`repro.qos.metrics.compute_metrics` scores a
finished run.  An operator watching a running monitor needs the same
numbers *now*, over the recent past.  :class:`QoSHealth` subscribes to
the monitor's :class:`~repro.live.monitor.LiveEvent` stream and keeps,
per ``(peer, detector)``, just enough state to answer over a rolling
window of the last ``window`` seconds:

- **T_MR** (mistake rate): S-transitions per second of observed window;
- **T_M** (mistake duration): mean length of the suspicion periods that
  *started* inside the window (open suspicions count up to ``now``,
  matching the closed-window convention where the window end truncates);
- **P_A** (query accuracy): fraction of the observed window spent in T.

Detection time T_D is *not* derivable from transitions alone (it needs
crash ground truth); the monitor exports the **projected detection
time** — ``freshness point − last arrival``, the time a crash striking
immediately after the last accepted heartbeat would take to be detected
— as its live T_D gauge instead (see ``repro.live.monitor``).

Cost model: :meth:`on_event` is O(1) amortized per transition (rare by
definition — a healthy detector barely transitions), and the metric
computation walks only the transitions retained inside the window, at
scrape time, never on the datagram path.  A peer's key starts observing
at its first transition... almost: :meth:`observe_start` lets the
monitor pin the true observation start (first heartbeat arrival), so
P_A does not over-credit trust accumulated before anyone watched.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, Iterable, Tuple

from repro._validation import ensure_positive

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids the cycle)
    from repro.live.monitor import LiveEvent

__all__ = ["QoSHealth", "DEFAULT_WINDOW"]

#: Default rolling-window length (seconds).
DEFAULT_WINDOW = 300.0


class _KeyState:
    """Rolling transition history of one (peer, detector) pair."""

    __slots__ = ("transitions", "trusting", "start", "n_mistakes_total")

    def __init__(self, start: float):
        # (time, trusting) transitions inside the window, oldest first.
        self.transitions: deque = deque()
        # Output state *before* the oldest retained transition (the state
        # the window opens in once pruning discards older history).
        self.trusting = False  # detectors start suspecting (Alg. 1)
        self.start = start  # observation start (first arrival / event)
        self.n_mistakes_total = 0

    def prune(self, horizon: float) -> None:
        transitions = self.transitions
        while transitions and transitions[0][0] < horizon:
            _, self.trusting = transitions.popleft()


class QoSHealth:
    """Per-(peer, detector) rolling T_MR / T_M / P_A estimators."""

    def __init__(self, window: float = DEFAULT_WINDOW):
        ensure_positive(window, "window")
        self.window = float(window)
        self._keys: Dict[Tuple[str, str], _KeyState] = {}

    # ------------------------------------------------------------------
    @property
    def keys(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(self._keys)

    def observe_start(self, peer: str, detector: str, start: float) -> None:
        """Pin the observation start of a key (first heartbeat arrival).

        Idempotent; without it the key starts observing at its first
        transition, which is correct for T_MR/T_M but would deny P_A the
        suspicion time preceding the first trust.
        """
        key = (peer, detector)
        if key not in self._keys:
            self._keys[key] = _KeyState(start)

    def on_event(self, event: "LiveEvent") -> None:
        """Fold one monitor transition in (a ``subscribe`` target)."""
        key = (event.peer, event.detector)
        state = self._keys.get(key)
        if state is None:
            state = _KeyState(event.time)
            self._keys[key] = state
        state.transitions.append((event.time, event.trusting))
        if not event.trusting:
            state.n_mistakes_total += 1
        # Amortized pruning: bound the deque without waiting for a
        # scrape (a flapping detector must not grow memory between them).
        state.prune(event.time - self.window)

    # ------------------------------------------------------------------
    def metrics(
        self, peer: str, detector: str, now: float
    ) -> Dict[str, float] | None:
        """Rolling window metrics of one key at ``now`` (None = unknown)."""
        state = self._keys.get((peer, detector))
        if state is None:
            return None
        horizon = now - self.window
        state.prune(horizon)
        window_start = max(state.start, horizon)
        span = now - window_start
        if span <= 0:
            return None

        n_mistakes = 0
        trust_time = 0.0
        mistake_time = 0.0  # suspicion time of window-started mistakes
        cursor = window_start
        trusting = state.trusting
        open_mistake_at: float | None = None
        for t, new_trusting in state.transitions:
            t = min(max(t, window_start), now)
            if trusting:
                trust_time += t - cursor
            elif open_mistake_at is not None:
                mistake_time += t - open_mistake_at
                open_mistake_at = None
            if not new_trusting:
                n_mistakes += 1
                open_mistake_at = t
            cursor = t
            trusting = new_trusting
        if trusting:
            trust_time += now - cursor
        elif open_mistake_at is not None:
            mistake_time += now - open_mistake_at

        return {
            "window": span,
            "n_mistakes": float(n_mistakes),
            "t_mr": n_mistakes / span,
            "t_m": (mistake_time / n_mistakes) if n_mistakes else 0.0,
            "p_a": trust_time / span,
        }

    def all_metrics(
        self, now: float
    ) -> Iterable[Tuple[Tuple[str, str], Dict[str, float]]]:
        """Every key's rolling metrics (scrape-time iteration)."""
        for (peer, detector) in list(self._keys):
            result = self.metrics(peer, detector, now)
            if result is not None:
                yield (peer, detector), result

    def forget(self, peer: str) -> None:
        """Drop all of one peer's keys (departed peer)."""
        for key in [k for k in self._keys if k[0] == peer]:
            del self._keys[key]
