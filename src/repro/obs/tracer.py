"""Heartbeat lifecycle tracing: ring-buffered structured events.

One heartbeat's life is a *span*: the sender emits it (``send``), the
monitor decodes it (``recv``), every detector advances its freshness
point (``fresh``), and — eventually, on some heartbeat's absence — a
detector output flips (``suspect``/``trust``).  :class:`HeartbeatTracer`
records these stages as :class:`TraceEvent` objects correlated by
``span = "<peer>:<seq>"``, so an operator can follow one heartbeat
through the pipeline or one peer across time.

Three properties make it safe to leave on in production:

- **Bounded memory.**  Events live in a ring buffer (``capacity``);
  ``n_recorded``/``n_dropped`` account exactly even after wrap-around,
  and every event carries a monotone ``id`` so a cursor-polling client
  (``repro-fd live trace --follow``) can detect the gap.
- **Sampling.**  ``sample_every=N`` records the per-heartbeat stages
  (``send``/``recv``/``fresh``) only for sequence numbers divisible by
  N; transitions are *always* recorded — they are the rare, load-bearing
  events.  :meth:`wants` is the hot-path guard, one modulo when tracing
  is enabled and nothing at all when the tracer is absent.
- **JSONL export.**  :meth:`to_jsonl` / :meth:`document` serialize
  retained events for log collectors and the status-endpoint ``trace``
  command.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro._validation import ensure_positive

__all__ = ["TraceEvent", "HeartbeatTracer", "TRACE_KINDS"]

#: The lifecycle stages, in pipeline order.
TRACE_KINDS = ("send", "recv", "stale", "fresh", "suspect", "trust")

#: Default ring-buffer capacity (events).
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    ``id`` is the monotone event number (the follow cursor); ``hb_seq``
    is the heartbeat sequence number the event belongs to (None for
    events not tied to one heartbeat, e.g. an expiry-driven suspicion).
    """

    id: int
    time: float
    kind: str
    peer: str
    hb_seq: int | None = None
    detector: str | None = None
    fields: Dict[str, object] = field(default_factory=dict)

    @property
    def span(self) -> str | None:
        """Correlates every stage of one heartbeat: ``"<peer>:<seq>"``."""
        if self.hb_seq is None:
            return None
        return f"{self.peer}:{self.hb_seq}"

    def as_dict(self) -> dict:
        doc: Dict[str, object] = {
            "id": self.id,
            "time": self.time,
            "kind": self.kind,
            "peer": self.peer,
        }
        if self.hb_seq is not None:
            doc["hb_seq"] = self.hb_seq
            doc["span"] = self.span
        if self.detector is not None:
            doc["detector"] = self.detector
        doc.update(self.fields)
        return doc


class HeartbeatTracer:
    """Ring buffer of :class:`TraceEvent` with sampling and cursors."""

    __slots__ = ("_ring", "capacity", "sample_every", "n_recorded")

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        sample_every: int = 1,
    ):
        ensure_positive(capacity, "capacity")
        ensure_positive(sample_every, "sample_every")
        self.capacity = int(capacity)
        self.sample_every = int(sample_every)
        self._ring: deque = deque(maxlen=self.capacity)
        self.n_recorded = 0  # total ever recorded (ids are 1..n_recorded)

    # ------------------------------------------------------------------
    @property
    def n_dropped(self) -> int:
        """Events that fell off the ring (exact, however long we ran)."""
        return self.n_recorded - len(self._ring)

    def wants(self, hb_seq: int) -> bool:
        """Should per-heartbeat stages of ``hb_seq`` be traced?

        The hot-path sampling guard: always True at ``sample_every=1``.
        """
        return self.sample_every == 1 or hb_seq % self.sample_every == 0

    def record(
        self,
        kind: str,
        *,
        time: float,
        peer: str,
        hb_seq: int | None = None,
        detector: str | None = None,
        **fields: object,
    ) -> TraceEvent:
        """Append one event (the caller already applied :meth:`wants`)."""
        self.n_recorded += 1
        event = TraceEvent(
            id=self.n_recorded,
            time=time,
            kind=kind,
            peer=peer,
            hb_seq=hb_seq,
            detector=detector,
            fields=fields,
        )
        self._ring.append(event)
        return event

    # ------------------------------------------------------------------
    def events(self, since: int = 0) -> Tuple[List[TraceEvent], int]:
        """Retained events with ``id > since``, plus the new cursor.

        The cursor is the largest id ever assigned, so a client polling
        ``events(cursor)`` sees each event exactly once; if the ring
        wrapped past its cursor, the skipped ids are the gap between
        ``since`` and the first returned event's id.
        """
        if since < 0:
            raise ValueError(f"cursor must be non-negative, got {since}")
        fresh = [e for e in self._ring if e.id > since]
        return fresh, self.n_recorded

    def spans(self, peer: str) -> Dict[str, List[TraceEvent]]:
        """Retained events of one peer grouped by span (diagnostics)."""
        out: Dict[str, List[TraceEvent]] = {}
        for event in self._ring:
            if event.peer == peer and event.span is not None:
                out.setdefault(event.span, []).append(event)
        return out

    # ------------------------------------------------------------------
    def to_jsonl(self, since: int = 0) -> str:
        """Retained events past ``since`` as JSON-lines text."""
        events, _ = self.events(since)
        return "".join(json.dumps(e.as_dict(), sort_keys=True) + "\n" for e in events)

    def document(self, since: int = 0) -> dict:
        """The ``trace`` status-command response: events + cursor + loss.

        ``dropped`` counts events that aged out of the ring *before this
        client saw them* (0 when ``since`` is still inside the ring).
        """
        events, cursor = self.events(since)
        oldest_returned = events[0].id if events else cursor + 1
        dropped = max(0, oldest_returned - since - 1)
        return {
            "cursor": cursor,
            "dropped": dropped,
            "sample_every": self.sample_every,
            "capacity": self.capacity,
            "events": [e.as_dict() for e in events],
        }
