"""Unified observability for the reproduction's runtimes (``repro.obs``).

The paper's whole argument is *quantified* detector quality, so the
runtime must be quantifiable while it runs.  This package is the
dependency-free observability layer every subsystem shares:

- :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  families in a :class:`MetricsRegistry` with Prometheus text-format
  exposition, plus parse/merge for shard aggregation;
- :mod:`repro.obs.tracer` — ring-buffered heartbeat lifecycle tracing
  (``send → recv → fresh → suspect/trust``) with span correlation,
  sampling, and JSONL export;
- :mod:`repro.obs.qos` — rolling live estimators of the paper's QoS
  metrics (T_MR, T_M, P_A) per ``(peer, detector)``;
- :mod:`repro.obs.diag` — the runtime diagnostics plane: sampled
  pipeline stage timing, the event-loop stall watchdog (loop lag, GC
  pauses, edge-triggered stall events), and the flight recorder behind
  the status endpoint's ``diag`` command and the SIGUSR1 dump;
- :mod:`repro.obs.runtime` — the :class:`Observability` bundle the
  runtimes accept (``LiveMonitor(..., obs=...)``) and the process-wide
  default the sweep engine consults.

Observability is **opt-in**: every constructor defaults to ``obs=None``
(no registry, no tracer, no estimators, near-zero hot-path cost), so
the committed benchmark numbers measure the undisturbed engines.  See
``docs/observability.md`` for the metric catalog and scrape quickstart.
"""

from repro.obs.diag import (
    PIPELINE_STAGES,
    FlightRecorder,
    PipelineTimer,
    RuntimeDiagnostics,
    StallWatchdog,
    merge_diag_documents,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    log_buckets,
    merge_expositions,
    parse_exposition,
    render_exposition,
)
from repro.obs.qos import DEFAULT_WINDOW, QoSHealth
from repro.obs.runtime import (
    Observability,
    default_observability,
    set_default_observability,
)
from repro.obs.tracer import TRACE_KINDS, HeartbeatTracer, TraceEvent

__all__ = [
    "Counter",
    "DEFAULT_WINDOW",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HeartbeatTracer",
    "MetricFamily",
    "MetricsRegistry",
    "Observability",
    "PIPELINE_STAGES",
    "PipelineTimer",
    "QoSHealth",
    "RuntimeDiagnostics",
    "StallWatchdog",
    "TRACE_KINDS",
    "TraceEvent",
    "default_observability",
    "log_buckets",
    "merge_diag_documents",
    "merge_expositions",
    "parse_exposition",
    "render_exposition",
    "set_default_observability",
]
