"""Command-line interface.

::

    repro-fd list                      # available experiments
    repro-fd run fig6 --scale 0.02     # regenerate one figure/table
    repro-fd run all --scale 0.01      # regenerate everything
    repro-fd trace wan --scale 0.01 -o wan.npz   # export a synthetic trace
    repro-fd configure --td 30 --recurrence 600 --tm 10 --loss 0.01 --vd 1e-3
    repro-fd detectors                 # registered detectors + tuning knobs
    repro-fd simulate --detector 2w-fd --param 0.2 --crash 60 --duration 90
    repro-fd live monitor --port 9999 --detector 2w-fd=0.3 --status-port 9998
    repro-fd live heartbeat --target 127.0.0.1:9999 --interval 0.1 --crash 30
    repro-fd live status --port 9998           # JSON snapshot of a monitor
    repro-fd live metrics --port 9998 --watch  # Prometheus text exposition
    repro-fd live trace --port 9998 --follow   # heartbeat lifecycle trace
    repro-fd live diag --port 9998 --watch     # runtime diagnostics plane
    repro-fd report -o report.md --jobs 4      # parallel over experiments
    repro-fd cache info                        # on-disk trace/kernel cache

``--jobs`` (or the REPRO_JOBS environment variable) sets the worker-process
count for seed sweeps, multi-curve sweeps, and the full report; 0 means all
cores.  See docs/performance.md.

(Equivalently: ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fd",
        description=(
            "Reproduction of '2W-FD: A Failure Detector Algorithm with QoS' — "
            "experiment runner and utilities."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    p_run = sub.add_parser("run", help="run one experiment (or 'all')")
    p_run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    p_run.add_argument(
        "--scale",
        type=float,
        default=None,
        help="fraction of the paper's trace sizes to generate (default 0.02)",
    )
    p_run.add_argument("--seed", type=int, default=None, help="RNG seed")
    p_run.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write each result as <DIR>/<experiment>.json",
    )
    p_run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for parallelizable stages (0 = all cores)",
    )

    p_trace = sub.add_parser("trace", help="generate and save a synthetic trace")
    p_trace.add_argument("scenario", choices=["wan", "lan"])
    p_trace.add_argument("--scale", type=float, default=0.01)
    p_trace.add_argument("--seed", type=int, default=2015)
    p_trace.add_argument("-o", "--output", required=True, help="output .npz path")

    sub.add_parser(
        "detectors",
        help="list registered failure detectors and their tuning parameters",
    )

    p_sim = sub.add_parser(
        "simulate", help="run a live monitoring simulation with crash injection"
    )
    p_sim.add_argument(
        "--detector",
        default="2w-fd",
        help="detector name ('repro-fd detectors' lists names and tuning knobs)",
    )
    p_sim.add_argument(
        "--param",
        type=float,
        default=None,
        help="tuning parameter (safety margin / threshold / timeout); "
        "rejected for self-configuring detectors",
    )
    p_sim.add_argument("--interval", type=float, default=0.1, help="Δi [s]")
    p_sim.add_argument("--duration", type=float, default=60.0, help="run length [s]")
    p_sim.add_argument("--crash", type=float, default=None, help="crash time [s]")
    p_sim.add_argument("--delay", type=float, default=0.1, help="mean one-way delay [s]")
    p_sim.add_argument(
        "--jitter", type=float, default=0.1, help="log-normal sigma of the delay"
    )
    p_sim.add_argument("--loss", type=float, default=0.01, help="loss probability")
    p_sim.add_argument("--seed", type=int, default=0)

    p_rep = sub.add_parser(
        "report", help="regenerate every experiment into one Markdown report"
    )
    p_rep.add_argument("-o", "--output", required=True, help="output .md path")
    p_rep.add_argument("--scale", type=float, default=None)
    p_rep.add_argument("--seed", type=int, default=None)
    p_rep.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes, one experiment each (0 = all cores)",
    )

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk trace/kernel cache"
    )
    p_cache.add_argument("action", choices=["info", "clear"])

    p_live = sub.add_parser(
        "live", help="real asyncio/UDP failure-detection runtime"
    )
    live_sub = p_live.add_subparsers(dest="live_command", required=True)

    p_mon = live_sub.add_parser(
        "monitor", help="monitor UDP heartbeats with online detectors"
    )
    p_mon.add_argument("--host", default="127.0.0.1", help="UDP bind address")
    p_mon.add_argument("--port", type=int, default=9999, help="UDP bind port")
    p_mon.add_argument(
        "--detector",
        action="append",
        default=None,
        metavar="NAME[=PARAM]",
        help="detector to run per peer, e.g. '2w-fd=0.3' or 'bertier'; "
        "repeatable ('repro-fd detectors' lists names and tuning knobs)",
    )
    p_mon.add_argument("--interval", type=float, default=0.1, help="expected Δi [s]")
    p_mon.add_argument("--tick", type=float, default=0.02, help="liveness poll period [s]")
    p_mon.add_argument(
        "--max-events",
        type=int,
        default=None,
        metavar="N",
        help="ring-buffer the retained event history to N entries "
        "(default: unbounded; totals/drop counts stay exact)",
    )
    p_mon.add_argument(
        "--retain-transitions",
        type=int,
        default=None,
        metavar="N",
        help="compact each detector's transition log to its last N entries "
        "(default: full history; suspicion counters stay exact)",
    )
    p_mon.add_argument(
        "--poll-mode",
        choices=["heap", "sweep"],
        default="heap",
        help="liveness scheduling: 'heap' = O(expired log n) deadline heap "
        "(default), 'sweep' = reference O(peers) full walk",
    )
    p_mon.add_argument(
        "--duration",
        type=float,
        default=None,
        help="stop after this many seconds (default: run until interrupted)",
    )
    p_mon.add_argument(
        "--status-port",
        type=int,
        default=None,
        help="also serve the JSON status endpoint on this local TCP port",
    )
    p_mon.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run N SO_REUSEPORT worker processes behind the UDP port, one "
        "monitor per core; the status endpoint serves the merged document "
        "(default 1 = single process; falls back to 1 where SO_REUSEPORT "
        "is unavailable)",
    )
    p_mon.add_argument(
        "--status-timeout",
        type=float,
        default=2.0,
        metavar="S",
        help="sharded only: per-attempt timeout for the parent's fetches "
        "from each worker's status endpoint (default 2)",
    )
    p_mon.add_argument(
        "--status-retries",
        type=int,
        default=1,
        metavar="N",
        help="sharded only: retry failed worker status fetches N more "
        "times before reporting that shard as errored (default 1)",
    )
    p_mon.add_argument(
        "--status-mode",
        choices=["delta", "full"],
        default="delta",
        help="sharded only: how the parent aggregates worker snapshots — "
        "'delta' folds per-worker incremental deltas into a persistent "
        "merged view with per-shard cursors (default), 'full' re-fetches "
        "and re-merges every worker's full snapshot per request "
        "(reference)",
    )
    p_mon.add_argument(
        "--estimation",
        choices=["shared", "private"],
        default="shared",
        help="per-peer arrival statistics: 'shared' pushes each accepted "
        "heartbeat into one window set consumed by every detector "
        "(default), 'private' keeps the reference per-detector copies",
    )
    p_mon.add_argument(
        "--ingest-mode",
        choices=["scalar", "batched", "vectorized", "adaptive"],
        default="batched",
        help="datagram intake: 'scalar' = one decode+update per datagram "
        "(reference), 'batched' = drain the socket burst into one "
        "ingest_many call (default), 'vectorized' = zero-copy arena drain "
        "+ columnar numpy estimation over each batch, 'adaptive' = pick "
        "batched vs vectorized per drain from observed fan-in and drain "
        "cost (all registry detectors have vectorized kernels; all modes "
        "emit bitwise-identical outputs).  Invalid combinations: "
        "vectorized/adaptive with --estimation private, or with a custom "
        "detector class outside the registry",
    )
    p_mon.add_argument(
        "--obs",
        choices=["on", "off"],
        default="on",
        help="observability: metrics registry + heartbeat tracing + QoS "
        "health estimators, served via the status endpoint's 'metrics' "
        "and 'trace' commands (default on; 'off' = zero instrumentation, "
        "the benchmark configuration)",
    )
    p_mon.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="trace only every Nth heartbeat's send/recv/fresh stages "
        "(suspect/trust transitions are always traced; default 1 = all)",
    )
    p_mon.add_argument(
        "--diag",
        choices=["on", "off"],
        default="off",
        help="runtime diagnostics: sampled pipeline stage timing, the "
        "event-loop stall watchdog, and the drain flight recorder, served "
        "via the status endpoint's 'diag' command and dumped to stderr on "
        "SIGUSR1 (needs --obs on; default off)",
    )
    p_mon.add_argument(
        "--diag-sample",
        type=int,
        default=64,
        metavar="N",
        help="time pipeline stages on every Nth drain/datagram only "
        "(default 64; the flight recorder and watchdog are unsampled)",
    )
    p_mon.add_argument(
        "--stall-threshold",
        type=float,
        default=0.1,
        metavar="S",
        help="event-loop lag that counts as a runtime stall and emits a "
        "repro_runtime_stalled event (default 0.1s)",
    )
    p_mon.add_argument(
        "--tenants",
        default=None,
        metavar="CONFIG",
        help="run multi-tenant: screen datagrams against the tenant "
        "registry in this JSON config (see 'repro-fd fdaas register') — "
        "HMAC authentication, replay rejection, namespacing, rate limits, "
        "and (single-process) live SLA enforcement with push events",
    )

    p_hb = live_sub.add_parser(
        "heartbeat", help="send UDP heartbeats (optionally through chaos)"
    )
    p_hb.add_argument(
        "--target", default="127.0.0.1:9999", help="monitor address host:port"
    )
    p_hb.add_argument("--id", default="p", help="sender id carried in each heartbeat")
    p_hb.add_argument("--interval", type=float, default=0.1, help="Δi [s]")
    p_hb.add_argument(
        "--count", type=int, default=None, help="stop after N heartbeats"
    )
    p_hb.add_argument(
        "--crash", type=float, default=None, help="crash (stop sending) after [s]"
    )
    p_hb.add_argument("--loss", type=float, default=0.0, help="chaos drop probability")
    p_hb.add_argument(
        "--delay", type=float, default=0.0, help="chaos mean one-way delay [s]"
    )
    p_hb.add_argument(
        "--jitter",
        type=float,
        default=0.0,
        help="log-normal sigma of the chaos delay (0 = constant)",
    )
    p_hb.add_argument(
        "--skew", type=float, default=0.0, help="sender clock offset [s]"
    )
    p_hb.add_argument(
        "--drift", type=float, default=0.0, help="sender clock drift (e.g. 50e-6)"
    )
    p_hb.add_argument("--seed", type=int, default=0, help="chaos RNG seed")
    p_hb.add_argument(
        "--tenant",
        default=None,
        metavar="ID",
        help="fdaas tenant id: heartbeats carry the namespaced sender "
        "'ID/<--id>' a multi-tenant monitor expects",
    )
    p_hb.add_argument(
        "--auth-key",
        default=None,
        metavar="HEX",
        help="per-tenant HMAC key (hex): emit authenticated wire-v2 "
        "heartbeats with an HMAC-SHA256 trailer",
    )

    p_st = live_sub.add_parser(
        "status", help="fetch and print a monitor's JSON status snapshot"
    )
    p_st.add_argument("--host", default="127.0.0.1")
    p_st.add_argument("--port", type=int, required=True)
    p_st.add_argument(
        "--summary",
        action="store_true",
        help="fetch only the constant-size monitor-load summary "
        "(peer count, heartbeat rate, poll cost, heap size)",
    )
    p_st.add_argument(
        "--watch",
        nargs="?",
        type=float,
        const=2.0,
        default=None,
        metavar="SECONDS",
        help="re-fetch and re-print every SECONDS (default 2) until "
        "interrupted; uses cursor-resumed delta fetches when the server "
        "supports them (only changed peers travel per refresh)",
    )
    p_st.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="S",
        help="per-attempt connect/read timeout in seconds (default 5)",
    )
    p_st.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry failed fetches N more times with exponential backoff "
        "(0.1s, 0.2s, 0.4s, ...; default 0 = fail immediately)",
    )

    p_met = live_sub.add_parser(
        "metrics",
        help="fetch a monitor's Prometheus text exposition (needs a "
        "monitor running with observability on)",
    )
    p_met.add_argument("--host", default="127.0.0.1")
    p_met.add_argument("--port", type=int, required=True, help="status port")
    p_met.add_argument(
        "--watch",
        nargs="?",
        type=float,
        const=2.0,
        default=None,
        metavar="SECONDS",
        help="re-scrape and re-print every SECONDS (default 2) until "
        "interrupted, instead of one shot",
    )
    p_met.add_argument("--timeout", type=float, default=5.0, metavar="S")
    p_met.add_argument("--retries", type=int, default=0, metavar="N")

    p_tr = live_sub.add_parser(
        "trace",
        help="fetch a monitor's heartbeat lifecycle trace as JSON lines",
    )
    p_tr.add_argument("--host", default="127.0.0.1")
    p_tr.add_argument("--port", type=int, required=True, help="status port")
    p_tr.add_argument(
        "--since",
        type=int,
        default=0,
        metavar="CURSOR",
        help="only events with id > CURSOR (default 0 = everything retained)",
    )
    p_tr.add_argument(
        "--follow",
        action="store_true",
        help="poll for new events until interrupted (cursor-based: each "
        "event is printed exactly once; ring-buffer gaps are reported)",
    )
    p_tr.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="S",
        help="poll period with --follow (default 1s)",
    )
    p_tr.add_argument("--timeout", type=float, default=5.0, metavar="S")
    p_tr.add_argument("--retries", type=int, default=0, metavar="N")

    p_diag = live_sub.add_parser(
        "diag",
        help="fetch a monitor's runtime diagnostics (pipeline stage "
        "timing, stall watchdog, flight recorder) as JSON",
    )
    p_diag.add_argument("--host", default="127.0.0.1")
    p_diag.add_argument("--port", type=int, required=True, help="status port")
    p_diag.add_argument(
        "--since",
        type=int,
        default=0,
        metavar="CURSOR",
        help="only flight-recorder records with id > CURSOR (default 0; "
        "ignored by a sharded parent endpoint, which reports per-shard "
        "cursors instead)",
    )
    p_diag.add_argument(
        "--watch",
        nargs="?",
        type=float,
        const=2.0,
        default=None,
        metavar="SECONDS",
        help="re-fetch and re-print every SECONDS (default 2) until "
        "interrupted; the flight-recorder cursor is carried forward so "
        "each record prints once",
    )
    p_diag.add_argument("--timeout", type=float, default=5.0, metavar="S")
    p_diag.add_argument("--retries", type=int, default=0, metavar="N")

    p_fdaas = sub.add_parser(
        "fdaas", help="multi-tenant failure-detection-as-a-service tools"
    )
    fdaas_sub = p_fdaas.add_subparsers(dest="fdaas_command", required=True)

    p_reg = fdaas_sub.add_parser(
        "register",
        help="add (or update) a tenant in a JSON tenants config file",
    )
    p_reg.add_argument(
        "--config", required=True, metavar="FILE",
        help="tenants config path (created if missing)",
    )
    p_reg.add_argument("--tenant", required=True, metavar="ID", help="tenant id")
    p_reg.add_argument(
        "--gen-key",
        action="store_true",
        help="generate a fresh 32-byte HMAC key (printed once, as hex)",
    )
    p_reg.add_argument(
        "--key", default=None, metavar="HEX",
        help="use this HMAC key instead of generating one",
    )
    p_reg.add_argument(
        "--rate", type=float, default=None, metavar="HZ",
        help="token-bucket rate limit in heartbeats/second (default: none)",
    )
    p_reg.add_argument(
        "--burst", type=float, default=None, metavar="N",
        help="token-bucket burst capacity (default: 2x rate)",
    )
    p_reg.add_argument("--td", type=float, default=None, help="SLA T_D^U [s]")
    p_reg.add_argument(
        "--tmr", type=float, default=None, help="SLA mistake-rate bound [1/s]"
    )
    p_reg.add_argument("--tm", type=float, default=None, help="SLA T_M^U [s]")
    p_reg.add_argument(
        "--pa", type=float, default=None, help="SLA query-accuracy floor (0..1]"
    )

    p_ten = fdaas_sub.add_parser(
        "tenants", help="list the tenants in a config file (keys redacted)"
    )
    p_ten.add_argument("--config", required=True, metavar="FILE")

    p_sla = fdaas_sub.add_parser(
        "sla", help="fetch per-tenant SLA standing from a running service"
    )
    p_sla.add_argument("--host", default="127.0.0.1")
    p_sla.add_argument("--port", type=int, required=True, help="status port")
    p_sla.add_argument(
        "--tenant", default=None, metavar="ID", help="only this tenant"
    )
    p_sla.add_argument("--timeout", type=float, default=5.0, metavar="S")
    p_sla.add_argument("--retries", type=int, default=0, metavar="N")

    p_subev = fdaas_sub.add_parser(
        "subscribe",
        help="stream transition and SLA events from a running service "
        "(push: one JSON line per event, no polling)",
    )
    p_subev.add_argument("--host", default="127.0.0.1")
    p_subev.add_argument("--port", type=int, required=True, help="status port")
    p_subev.add_argument(
        "--since",
        type=int,
        default=0,
        metavar="CURSOR",
        help="resume after this event id (default 0 = everything retained)",
    )
    p_subev.add_argument(
        "--once",
        action="store_true",
        help="one-shot: fetch retained events past the cursor and exit "
        "instead of streaming",
    )
    p_subev.add_argument("--timeout", type=float, default=5.0, metavar="S")

    p_cfg = sub.add_parser(
        "configure", help="run Chen's QoS configuration procedure (Eq. 14-16)"
    )
    p_cfg.add_argument("--td", type=float, required=True, help="T_D^U [s]")
    p_cfg.add_argument(
        "--recurrence", type=float, required=True, help="required mistake recurrence [s]"
    )
    p_cfg.add_argument("--tm", type=float, required=True, help="T_M^U [s]")
    p_cfg.add_argument("--loss", type=float, default=0.0, help="p_L")
    p_cfg.add_argument("--vd", type=float, default=0.0, help="V(D) [s^2]")
    return parser


def _cmd_list() -> int:
    from repro.experiments.registry import EXPERIMENTS

    width = max(len(k) for k in EXPERIMENTS)
    for key in sorted(EXPERIMENTS):
        print(f"{key.ljust(width)}  {EXPERIMENTS[key][1]}")
    return 0


def _cmd_run(
    experiment: str,
    scale: float | None,
    seed: int | None,
    json_dir: str | None = None,
) -> int:
    import json
    from pathlib import Path

    from repro.experiments.registry import EXPERIMENTS, run_experiment
    from repro.experiments.report import render_result

    kwargs: dict = {}
    if scale is not None:
        kwargs["scale"] = scale
    if seed is not None:
        kwargs["seed"] = seed
    ids = sorted(EXPERIMENTS) if experiment == "all" else [experiment]
    # Figure pairs share a runner; avoid running the same runner twice.
    seen = set()
    failed = False
    for exp_id in ids:
        runner = EXPERIMENTS.get(exp_id, (None,))[0] if exp_id in EXPERIMENTS else None
        if runner is not None and runner in seen:
            continue
        result = run_experiment(exp_id, **kwargs)
        seen.add(EXPERIMENTS[exp_id][0])
        print(render_result(result))
        print()
        if json_dir is not None:
            out = Path(json_dir)
            out.mkdir(parents=True, exist_ok=True)
            path = out / f"{exp_id}.json"
            path.write_text(json.dumps(result.as_dict(), indent=2))
            print(f"(wrote {path})\n")
        failed |= not result.all_checks_passed
    return 1 if failed else 0


def _cmd_cache(action: str) -> int:
    from repro.runtime.cache import cache_info, clear_cache

    if action == "clear":
        freed = clear_cache()
        print(f"cleared cache ({freed / 1e6:.1f} MB freed)")
        return 0
    info = cache_info()
    state = "enabled" if info["enabled"] else "disabled (set REPRO_CACHE=1)"
    print(f"cache dir: {info['dir']}  [{state}]")
    if not info["categories"]:
        print("(empty)")
    for name, stats in info["categories"].items():
        print(f"  {name}: {stats['entries']} entries, {stats['bytes'] / 1e6:.1f} MB")
    print(f"total: {info['total_bytes'] / 1e6:.1f} MB")
    return 0


def _cmd_trace(scenario: str, scale: float, seed: int, output: str) -> int:
    from repro.traces import make_lan_trace, make_wan_trace, save_trace

    maker = make_wan_trace if scenario == "wan" else make_lan_trace
    trace = maker(scale=scale, seed=seed)
    path = save_trace(trace, output)
    print(f"wrote {trace} to {path}")
    return 0


def _cmd_configure(td: float, recurrence: float, tm: float, loss: float, vd: float) -> int:
    from repro.qos import NetworkBehavior, QoSSpec, configure
    from repro.qos.configurator import ConfigurationError

    spec = QoSSpec.from_recurrence_time(td, recurrence, tm)
    behavior = NetworkBehavior(loss_probability=loss, delay_variance=vd)
    try:
        cfg = configure(spec, behavior)
    except ConfigurationError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 1
    print(f"Δi  = {cfg.interval:.6g} s   ({cfg.message_rate:.4g} heartbeats/s)")
    print(f"Δto = {cfg.safety_margin:.6g} s")
    print(f"guaranteed mistake-rate bound f(Δi) = {cfg.mistake_rate_bound:.4g} /s")
    return 0


def _cmd_detectors() -> int:
    from repro.detectors.registry import available_detectors, tuning_parameter

    names = available_detectors()
    width = max(len(n) for n in names)
    for name in names:
        knob = tuning_parameter(name)
        knob_text = f"--param sets {knob}" if knob else "self-configuring (no --param)"
        print(f"{name.ljust(width)}  {knob_text}")
    return 0


def _detector_factory(name: str, param: float | None):
    """Validate (name, param) early; return a detector factory or an error.

    The single construction path for ``simulate`` and ``live monitor``:
    everything routes through :func:`repro.detectors.registry.make_tuned`,
    so a bad name or a misused ``--param`` is a friendly message up front,
    never a constructor ``TypeError`` mid-run.  Returns ``(factory, None)``
    on success, ``(None, message)`` on error.
    """
    from repro.detectors.registry import available_detectors, make_tuned, tuning_parameter

    if name not in available_detectors():
        return None, (
            f"unknown detector {name!r}; available: "
            f"{', '.join(available_detectors())}"
        )
    knob = tuning_parameter(name)
    if knob is not None and param is None:
        return None, f"detector {name!r} needs --param (its {knob})"
    if knob is None and param is not None:
        return None, (
            f"detector {name!r} is self-configuring and takes no --param"
        )
    return (lambda dt: make_tuned(name, dt, param)), None


def _cmd_simulate(args) -> int:
    import math

    from repro.experiments.ascii_plot import ascii_timeline
    from repro.net.delays import LogNormalDelay
    from repro.net.loss import BernoulliLoss
    from repro.sim import simulate

    factory, error = _detector_factory(args.detector, args.param)
    if factory is None:
        print(error, file=sys.stderr)
        return 2

    result = simulate(
        {args.detector: factory},
        interval=args.interval,
        duration=args.duration,
        delay_model=LogNormalDelay(
            log_mu=math.log(args.delay), log_sigma=max(args.jitter, 1e-6)
        ),
        loss_model=BernoulliLoss(args.loss),
        crash_time=args.crash,
        seed=args.seed,
    )
    metrics = result.metrics[args.detector]
    print(
        f"{result.n_sent} heartbeats sent, {result.n_lost} lost; "
        f"monitored for {metrics.duration:.1f}s"
    )
    print(
        f"accuracy: P_A={metrics.query_accuracy:.6f}  "
        f"mistakes={metrics.n_mistakes}  T_MR={metrics.mistake_rate:.3g}/s  "
        f"T_M={metrics.mistake_duration:.3f}s"
    )
    print(ascii_timeline(result.timelines[args.detector]))
    if args.crash is not None:
        report = result.crash_reports[args.detector]
        if report.permanently_suspecting:
            print(
                f"crash at {report.crash_time:.1f}s detected at "
                f"{report.suspected_at:.3f}s (T_D = {report.detection_time:.3f}s)"
            )
        else:
            print("crash NOT (permanently) detected within the horizon")
            return 1
    return 0


def _parse_detector_specs(specs):
    """Parse ``NAME[=PARAM]`` CLI specs into (names, params) or an error."""
    names, params = [], {}
    for spec in specs:
        name, sep, raw = spec.partition("=")
        name = name.strip()
        if sep:
            try:
                params[name] = float(raw)
            except ValueError:
                return None, None, f"bad tuning value in {spec!r} (need NAME=FLOAT)"
        names.append(name)
    return names, params, None


def _parse_address(text: str):
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        return None, f"bad address {text!r} (need HOST:PORT)"
    return (host or "127.0.0.1", int(port)), None


def _cmd_live_monitor(args) -> int:
    import asyncio

    from repro.live.monitor import LiveMonitor, LiveMonitorServer
    from repro.qos.metrics import compute_metrics

    names, params, error = _parse_detector_specs(args.detector or ["2w-fd=0.3"])
    if error is None:
        for name in names:
            _, error = _detector_factory(name, params.get(name))
            if error:
                break
    if error:
        print(error, file=sys.stderr)
        return 2
    for knob, value in (
        ("--max-events", args.max_events),
        ("--retain-transitions", args.retain_transitions),
        ("--shards", args.shards),
        ("--trace-sample", args.trace_sample),
        ("--diag-sample", args.diag_sample),
    ):
        if value is not None and value < 1:
            print(f"{knob} must be positive, got {value}", file=sys.stderr)
            return 2
    if args.stall_threshold <= 0:
        print(f"--stall-threshold must be positive, got {args.stall_threshold}",
              file=sys.stderr)
        return 2
    if args.diag == "on" and args.obs == "off":
        print("--diag records into the observability registry; it requires "
              "--obs on", file=sys.stderr)
        return 2
    if args.status_timeout <= 0:
        print(f"--status-timeout must be positive, got {args.status_timeout}",
              file=sys.stderr)
        return 2
    if args.status_retries < 0:
        print(f"--status-retries must be non-negative, got {args.status_retries}",
              file=sys.stderr)
        return 2
    if args.ingest_mode in ("vectorized", "adaptive"):
        if args.estimation != "shared":
            print(
                f"--ingest-mode {args.ingest_mode} computes over the shared "
                "arrival statistics; it requires --estimation shared",
                file=sys.stderr,
            )
            return 2
        # Fail fast (and readably) on detector classes without a vectorized
        # kernel (every registry detector has one; this guards custom sets).
        try:
            LiveMonitor(
                args.interval, names, params, ingest_mode=args.ingest_mode
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    registry = None
    if args.tenants is not None:
        from repro.fdaas.tenants import TenantRegistry

        try:
            registry = TenantRegistry.load(args.tenants)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load tenants config {args.tenants!r}: {exc}",
                  file=sys.stderr)
            return 2
        if args.obs == "off" and args.shards == 1:
            print("--tenants runs SLA enforcement against the rolling QoS "
                  "estimators; it requires --obs on", file=sys.stderr)
            return 2
    if args.shards > 1:
        return _run_sharded_monitor(args, names, params, registry)

    async def run() -> int:
        obs = None
        if args.obs == "on":
            from repro.obs import Observability

            obs = Observability(
                trace_sample_every=args.trace_sample,
                diagnostics=args.diag == "on",
                diag_sample_every=args.diag_sample,
                stall_threshold=args.stall_threshold,
            )
        monitor = LiveMonitor(
            args.interval,
            names,
            params,
            poll_mode=args.poll_mode,
            estimation=args.estimation,
            ingest_mode=args.ingest_mode,
            max_events=args.max_events,
            transition_retention=args.retain_transitions,
            obs=obs,
        )
        monitor.subscribe(
            lambda e: print(f"[{e.time:9.3f}s] {e.peer}/{e.detector}: {e.kind}")
        )
        if registry is not None:
            from repro.fdaas.service import FdaasServer

            server = FdaasServer(
                monitor,
                registry,
                args.host,
                args.port,
                tick=args.tick,
                status_port=args.status_port,
                ingest_mode=args.ingest_mode,
            )
        else:
            server = LiveMonitorServer(
                monitor,
                args.host,
                args.port,
                tick=args.tick,
                status_port=args.status_port,
                ingest_mode=args.ingest_mode,
            )
        async with server:
            host, port = server.address
            print(f"monitoring UDP {host}:{port} (Δi={args.interval}s, "
                  f"detectors: {', '.join(names)})")
            if registry is not None:
                print(f"fdaas: {len(registry)} tenant(s) registered, "
                      "admission + SLA enforcement on")
            if server.status is not None:
                print(f"status endpoint: TCP {server.status.address[0]}:"
                      f"{server.status.address[1]}")
                if obs is not None:
                    print("  (send 'metrics' for Prometheus text, 'trace' "
                          "for the heartbeat trace)")
                if obs is not None and obs.diag is not None:
                    print("  (send 'diag' for runtime diagnostics; SIGUSR1 "
                          "dumps them to stderr)")
                if registry is not None:
                    print("  (send 'events <cursor>' or 'subscribe "
                          "<cursor>' for fdaas events)")
            try:
                if args.duration is not None:
                    await asyncio.sleep(args.duration)
                else:
                    await asyncio.Event().wait()
            except (KeyboardInterrupt, asyncio.CancelledError):
                pass
            end = monitor.now()
            for peer, per_det in monitor.timelines(end).items():
                for det, timeline in per_det.items():
                    m = compute_metrics(timeline)
                    print(
                        f"{peer}/{det}: {m.n_mistakes} suspicions, "
                        f"P_A={m.query_accuracy:.6f} over {m.duration:.1f}s"
                    )
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _run_sharded_monitor(args, names, params, registry=None) -> int:
    import asyncio

    from repro.live.shard import ShardedMonitor, reuseport_supported

    if not reuseport_supported():
        print(
            "SO_REUSEPORT unavailable on this platform; "
            "running a single monitor process",
            file=sys.stderr,
        )
    if registry is not None:
        # Workers rebuild their own registries from the picklable config;
        # admission runs per shard (SLA enforcement + push events are the
        # single-process FdaasServer's job).
        print(
            "fdaas: admission enforced per shard "
            f"({len(registry)} tenant(s)); SLA enforcement needs --shards 1",
            file=sys.stderr,
        )

    async def run() -> int:
        sharded = ShardedMonitor(
            args.interval,
            names,
            params,
            host=args.host,
            port=args.port,
            n_shards=args.shards,
            tick=args.tick,
            status_port=args.status_port,
            estimation=args.estimation,
            poll_mode=args.poll_mode,
            ingest_mode=args.ingest_mode,
            max_events=args.max_events,
            transition_retention=args.retain_transitions,
            obs=args.obs == "on",
            trace_sample_every=args.trace_sample,
            diagnostics=args.diag == "on",
            diag_sample_every=args.diag_sample,
            stall_threshold=args.stall_threshold,
            tenants_config=registry.to_config() if registry is not None else None,
            status_timeout=args.status_timeout,
            status_retries=args.status_retries,
            status_mode=args.status_mode,
        )
        async with sharded:
            host, port = sharded.address
            print(f"monitoring UDP {host}:{port} with {sharded.n_shards} "
                  f"shard worker(s) (Δi={args.interval}s, detectors: "
                  f"{', '.join(names)})")
            if sharded.status is not None:
                print(f"status endpoint: TCP {sharded.status.address[0]}:"
                      f"{sharded.status.address[1]} (merged document)")
            try:
                if args.duration is not None:
                    await asyncio.sleep(args.duration)
                else:
                    await asyncio.Event().wait()
            except (KeyboardInterrupt, asyncio.CancelledError):
                pass
            snap = await sharded.snapshot()
            load = snap.get("monitor", {})
            print(
                f"stopped: {load.get('n_peers', 0)} peer(s), "
                f"{snap.get('n_events', 0)} event(s) across "
                f"{snap.get('n_shards', '?')} shard(s)"
            )
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _cmd_live_heartbeat(args) -> int:
    import asyncio
    import math

    from repro.live.chaos import ChaosSpec
    from repro.live.heartbeater import Heartbeater
    from repro.net.clock import DriftingClock
    from repro.net.delays import ConstantDelay, LogNormalDelay
    from repro.net.loss import BernoulliLoss, NoLoss

    target, error = _parse_address(args.target)
    if error:
        print(error, file=sys.stderr)
        return 2
    if args.jitter > 0 and args.delay <= 0:
        print("--jitter needs a positive --delay", file=sys.stderr)
        return 2
    auth_key = None
    if args.auth_key is not None:
        try:
            auth_key = bytes.fromhex(args.auth_key)
        except ValueError:
            print(f"--auth-key must be hex, got {args.auth_key!r}",
                  file=sys.stderr)
            return 2
    delay = (
        LogNormalDelay(log_mu=math.log(args.delay), log_sigma=args.jitter)
        if args.jitter > 0
        else ConstantDelay(args.delay)
    )
    chaos = ChaosSpec(
        loss=BernoulliLoss(args.loss) if args.loss > 0 else NoLoss(),
        delay=delay,
        clock=DriftingClock(offset=args.skew, drift=args.drift),
        crash_at=args.crash,
        seed=args.seed,
    )

    async def run() -> int:
        hb = Heartbeater(
            target,
            sender_id=args.id,
            interval=args.interval,
            count=args.count,
            chaos=chaos,
            tenant=args.tenant,
            auth_key=auth_key,
        )
        signed = " (signed)" if auth_key is not None else ""
        print(f"sending heartbeats to {target[0]}:{target[1]} every "
              f"{args.interval}s as {hb.sender_id!r}{signed}")
        sent = await hb.run()
        print(
            f"sent {sent} heartbeats ({hb.n_dropped} chaos-dropped"
            + (", crashed" if hb.crashed else "")
            + ")"
        )
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _cmd_live_status(args) -> int:
    import json
    import time

    from repro.live.delta import SnapshotReplica
    from repro.live.status import fetch_delta, fetch_status

    if args.timeout <= 0:
        print(f"--timeout must be positive, got {args.timeout}", file=sys.stderr)
        return 2
    if args.retries < 0:
        print(f"--retries must be non-negative, got {args.retries}", file=sys.stderr)
        return 2
    if args.watch is not None and args.watch <= 0:
        print(f"--watch must be positive, got {args.watch}", file=sys.stderr)
        return 2
    # Under --watch, refreshes ride the delta protocol: only the peers
    # whose entries changed travel each round, and the replica rebuilds
    # the full document locally.  A server that doesn't speak 'delta'
    # answers with a plain full snapshot, which the replica treats as a
    # full refresh — so --watch works against any status endpoint.
    # (--summary fetches are already constant-size; no replica needed.)
    replica = SnapshotReplica() if args.watch is not None and not args.summary else None
    while True:
        try:
            if replica is not None:
                doc = fetch_delta(
                    args.host,
                    args.port,
                    replica.cursor,
                    replica.instance,
                    timeout=args.timeout,
                    retries=args.retries,
                )
                if "error" in doc and "schema" not in doc:
                    print(f"status error: {doc['error']}", file=sys.stderr)
                    return 1
                replica.apply(doc)
                snap = replica.document()
            else:
                snap = fetch_status(
                    args.host,
                    args.port,
                    summary=args.summary,
                    timeout=args.timeout,
                    retries=args.retries,
                )
        except (ConnectionError, OSError, TimeoutError) as exc:
            return _reach_error(args, exc)
        print(json.dumps(snap, indent=2, sort_keys=True))
        if args.watch is None:
            return 0
        sys.stdout.flush()
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0


def _reach_error(args, exc) -> int:
    attempts = f" after {args.retries + 1} attempts" if args.retries else ""
    reason = str(exc) or type(exc).__name__
    print(
        f"cannot reach {args.host}:{args.port}{attempts}: {reason}",
        file=sys.stderr,
    )
    return 1


def _cmd_live_metrics(args) -> int:
    import time

    from repro.live.status import fetch_metrics

    if args.timeout <= 0:
        print(f"--timeout must be positive, got {args.timeout}", file=sys.stderr)
        return 2
    if args.watch is not None and args.watch <= 0:
        print(f"--watch must be positive, got {args.watch}", file=sys.stderr)
        return 2
    while True:
        try:
            text = fetch_metrics(
                args.host,
                args.port,
                timeout=args.timeout,
                retries=args.retries,
            )
        except (ConnectionError, OSError, TimeoutError) as exc:
            return _reach_error(args, exc)
        except ValueError as exc:
            # JSON came back: the endpoint is up but has no registry.
            print(str(exc), file=sys.stderr)
            return 1
        print(text, end="" if text.endswith("\n") else "\n")
        if args.watch is None:
            return 0
        sys.stdout.flush()
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0


def _cmd_live_trace(args) -> int:
    import json
    import time

    from repro.live.status import fetch_trace

    if args.timeout <= 0:
        print(f"--timeout must be positive, got {args.timeout}", file=sys.stderr)
        return 2
    if args.interval <= 0:
        print(f"--interval must be positive, got {args.interval}", file=sys.stderr)
        return 2
    if args.since < 0:
        print(f"--since must be non-negative, got {args.since}", file=sys.stderr)
        return 2
    cursor = args.since
    while True:
        try:
            doc = fetch_trace(
                args.host,
                args.port,
                cursor,
                timeout=args.timeout,
                retries=args.retries,
            )
        except (ConnectionError, OSError, TimeoutError) as exc:
            return _reach_error(args, exc)
        if doc.get("tracing") is False or "events" not in doc:
            # Either an explicit "no tracer" document, or the endpoint
            # fell back to a status snapshot (no trace producer at all).
            print(
                "the monitor is running without a tracer (observability "
                "off, or a sharded parent endpoint — per-shard trace is "
                "served on each worker's own status port)",
                file=sys.stderr,
            )
            return 1
        if doc.get("dropped"):
            print(
                f"# {doc['dropped']} event(s) aged out of the ring buffer "
                "before this fetch",
                file=sys.stderr,
            )
        for event in doc.get("events", ()):
            print(json.dumps(event, sort_keys=True))
        cursor = doc.get("cursor", cursor)
        if not args.follow:
            return 0
        sys.stdout.flush()
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _cmd_live_diag(args) -> int:
    import json
    import time

    from repro.live.status import fetch_diag

    if args.timeout <= 0:
        print(f"--timeout must be positive, got {args.timeout}", file=sys.stderr)
        return 2
    if args.watch is not None and args.watch <= 0:
        print(f"--watch must be positive, got {args.watch}", file=sys.stderr)
        return 2
    if args.since < 0:
        print(f"--since must be non-negative, got {args.since}", file=sys.stderr)
        return 2
    cursor = args.since
    while True:
        try:
            doc = fetch_diag(
                args.host,
                args.port,
                cursor,
                timeout=args.timeout,
                retries=args.retries,
            )
        except (ConnectionError, OSError, TimeoutError) as exc:
            return _reach_error(args, exc)
        if not doc.get("diagnostics"):
            # Either an explicit diagnostics-off document, or the endpoint
            # fell back to a status snapshot (no diag producer at all).
            print(
                "the monitor is running without runtime diagnostics "
                "(start it with --obs on --diag on)",
                file=sys.stderr,
            )
            return 1
        print(json.dumps(doc, sort_keys=True))
        recorder = doc.get("recorder", {})
        if "cursor" in recorder:
            cursor = recorder["cursor"]
        if args.watch is None:
            return 0
        sys.stdout.flush()
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0


def _cmd_fdaas_register(args) -> int:
    import os
    import secrets

    from repro.fdaas.tenants import SLATargets, Tenant, TenantRegistry

    if args.gen_key and args.key is not None:
        print("--gen-key and --key are mutually exclusive", file=sys.stderr)
        return 2
    key = None
    generated = False
    if args.gen_key:
        key = secrets.token_bytes(32)
        generated = True
    elif args.key is not None:
        try:
            key = bytes.fromhex(args.key)
        except ValueError:
            print(f"--key must be hex, got {args.key!r}", file=sys.stderr)
            return 2
    sla = None
    if any(v is not None for v in (args.td, args.tmr, args.tm, args.pa)):
        try:
            sla = SLATargets(t_d=args.td, t_mr=args.tmr, t_m=args.tm, p_a=args.pa)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    registry = TenantRegistry()
    if os.path.exists(args.config):
        try:
            registry = TenantRegistry.load(args.config)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load tenants config {args.config!r}: {exc}",
                  file=sys.stderr)
            return 2
    try:
        tenant = Tenant(
            tenant_id=args.tenant,
            key=key,
            rate=args.rate,
            burst=args.burst,
            sla=sla,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    updating = args.tenant in registry
    registry.register(tenant)
    registry.save(args.config)
    action = "updated" if updating else "registered"
    auth = "authenticated" if tenant.authenticated else "unauthenticated"
    print(f"{action} tenant {tenant.tenant_id!r} ({auth}) in {args.config}")
    if generated:
        print(f"key (hex, also stored in the config): {key.hex()}")
    return 0


def _cmd_fdaas_tenants(args) -> int:
    import json

    from repro.fdaas.tenants import TenantRegistry

    try:
        registry = TenantRegistry.load(args.config)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot load tenants config {args.config!r}: {exc}",
              file=sys.stderr)
        return 1
    doc = [tenant.as_dict(redact=True) for tenant in registry]
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def _cmd_fdaas_sla(args) -> int:
    import json

    from repro.live.status import fetch_status

    try:
        snap = fetch_status(
            args.host, args.port, timeout=args.timeout, retries=args.retries
        )
    except (ConnectionError, OSError, TimeoutError) as exc:
        return _reach_error(args, exc)
    sla = snap.get("sla")
    if sla is None:
        print(
            "the endpoint served no SLA block — is the monitor running "
            "with --tenants (single process)?",
            file=sys.stderr,
        )
        return 1
    if args.tenant is not None:
        doc = sla.get("tenants", {}).get(args.tenant)
        if doc is None:
            print(f"no SLA registered for tenant {args.tenant!r}",
                  file=sys.stderr)
            return 1
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(json.dumps(sla, indent=2, sort_keys=True))
    return 0


def _cmd_fdaas_subscribe(args) -> int:
    import asyncio
    import json

    from repro.fdaas.subscribe import afetch_events, asubscribe_events

    if args.since < 0:
        print(f"--since must be non-negative, got {args.since}", file=sys.stderr)
        return 2

    async def run() -> int:
        if args.once:
            doc = await afetch_events(
                args.host, args.port, args.since, timeout=args.timeout
            )
            if "events" not in doc:
                print(
                    "the endpoint served no events document — is the "
                    "monitor running with --tenants (single process)?",
                    file=sys.stderr,
                )
                return 1
            if doc.get("dropped"):
                print(f"# {doc['dropped']} event(s) aged out of the ring "
                      "before this fetch", file=sys.stderr)
            for event in doc.get("events", ()):
                print(json.dumps(event, sort_keys=True))
            return 0
        async for event in asubscribe_events(
            args.host, args.port, args.since, connect_timeout=args.timeout
        ):
            print(json.dumps(event, sort_keys=True))
            sys.stdout.flush()
        return 0

    try:
        return asyncio.run(run())
    except (ConnectionError, OSError, TimeoutError) as exc:
        setattr(args, "retries", 0)
        return _reach_error(args, exc)
    except KeyboardInterrupt:
        return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "jobs", None) is not None:
        # Route --jobs through the environment so every pmap() call site
        # (seed sweeps, multi-curve sweeps, nested runners) picks it up.
        import os

        os.environ["REPRO_JOBS"] = str(args.jobs)
    else:
        # Fail fast on a malformed REPRO_JOBS instead of deep in a sweep.
        from repro.runtime.parallel import resolve_jobs

        try:
            resolve_jobs(None)
        except ValueError as exc:
            parser.error(str(exc))
    try:
        return _dispatch(args)
    except BrokenPipeError:  # e.g. `repro-fd cache info | head -1`
        return 0


def _dispatch(args) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.scale, args.seed, args.json)
    if args.command == "trace":
        return _cmd_trace(args.scenario, args.scale, args.seed, args.output)
    if args.command == "configure":
        return _cmd_configure(args.td, args.recurrence, args.tm, args.loss, args.vd)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "detectors":
        return _cmd_detectors()
    if args.command == "live":
        if args.live_command == "monitor":
            return _cmd_live_monitor(args)
        if args.live_command == "heartbeat":
            return _cmd_live_heartbeat(args)
        if args.live_command == "status":
            return _cmd_live_status(args)
        if args.live_command == "metrics":
            return _cmd_live_metrics(args)
        if args.live_command == "trace":
            return _cmd_live_trace(args)
        if args.live_command == "diag":
            return _cmd_live_diag(args)
        raise AssertionError(f"unhandled live command {args.live_command}")
    if args.command == "fdaas":
        if args.fdaas_command == "register":
            return _cmd_fdaas_register(args)
        if args.fdaas_command == "tenants":
            return _cmd_fdaas_tenants(args)
        if args.fdaas_command == "sla":
            return _cmd_fdaas_sla(args)
        if args.fdaas_command == "subscribe":
            return _cmd_fdaas_subscribe(args)
        raise AssertionError(f"unhandled fdaas command {args.fdaas_command}")
    if args.command == "cache":
        return _cmd_cache(args.action)
    if args.command == "report":
        from pathlib import Path

        from repro.experiments.full_report import build_report

        text = build_report(scale=args.scale, seed=args.seed, jobs=args.jobs)
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        print(f"wrote {path} ({len(text.splitlines())} lines)")
        return 0
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
