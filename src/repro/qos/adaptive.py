"""Adaptive reconfiguration (paper §V-A, closing remark).

Chen's procedure is static: it maps one (p_L, V(D)) estimate to one
(Δi, Δto).  The paper notes "it is possible to run the configuration
procedure periodically in order to make the algorithm adaptive to changes
in the probabilistic behaviour of the network."  This module implements
that loop for the quantity a monitor can adapt *unilaterally* — the safety
margin Δto (changing Δi requires re-coordinating with the sender; see
:mod:`repro.service`):

- :func:`margin_for_accuracy` inverts Eq. 16 in the Δto direction: the
  smallest margin whose implied detection time ``T_D = Δi + Δto`` keeps the
  guaranteed mistake-rate bound ``f`` under the application's T_MR^U.
  Detection is then *as aggressive as the current network allows*.
- :class:`AdaptiveMarginController` re-estimates (p_L, V(D)) from a sliding
  window of heartbeats and refreshes that margin every ``update_period``
  seconds of observed traffic.

During a loss/jitter episode the estimates worsen, the margin stretches,
and accuracy is preserved at the price of slower detection; when the
network calms down the margin contracts again — the same react-fast /
stay-conservative tension the 2W-FD resolves at the per-heartbeat scale,
applied at the configuration scale.
"""

from __future__ import annotations

from repro._validation import ensure_int_at_least, ensure_positive
from repro.qos.configurator import mistake_rate_bound
from repro.qos.estimators import NetworkBehavior, OnlineNetworkEstimator

__all__ = ["margin_for_accuracy", "AdaptiveMarginController"]


def margin_for_accuracy(
    interval: float,
    behavior: NetworkBehavior,
    max_mistake_rate: float,
    *,
    margin_cap_intervals: float = 100.0,
    tol: float = 1e-9,
) -> float:
    """Smallest Δto with ``f(Δi; T_D = Δi + Δto) ≤ max_mistake_rate``.

    ``f`` is non-increasing in Δto (a larger margin adds heartbeat
    opportunities and slack to every existing one), so bisection applies.
    Returns the cap (``margin_cap_intervals · Δi``) when even that margin
    cannot meet the bound — the caller decides whether to degrade or alarm.
    """
    ensure_positive(interval, "interval")
    ensure_positive(max_mistake_rate, "max_mistake_rate")
    cap = margin_cap_intervals * interval

    def ok(margin: float) -> bool:
        return (
            mistake_rate_bound(interval, interval + margin, behavior)
            <= max_mistake_rate
        )

    if ok(0.0):
        return 0.0
    if not ok(cap):
        return cap
    lo, hi = 0.0, cap
    while hi - lo > tol * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if ok(mid):
            hi = mid
        else:
            lo = mid
    return hi


class AdaptiveMarginController:
    """Periodically refreshed safety margin for a fixed heartbeat interval.

    Parameters
    ----------
    interval:
        The (fixed) heartbeat interval Δi.
    max_mistake_rate:
        The application's T_MR^U accuracy bound.
    update_period:
        Re-run the margin computation after this much observed time.
    estimator_window:
        Heartbeats retained for the (p_L, V(D)) estimate.
    initial_margin:
        Margin used until enough traffic has been observed.
    margin_cap_intervals:
        Upper bound on the margin, in units of Δi.
    """

    def __init__(
        self,
        interval: float,
        max_mistake_rate: float,
        *,
        update_period: float = 60.0,
        estimator_window: int = 2000,
        initial_margin: float | None = None,
        margin_cap_intervals: float = 100.0,
    ):
        ensure_positive(interval, "interval")
        ensure_positive(max_mistake_rate, "max_mistake_rate")
        ensure_positive(update_period, "update_period")
        ensure_int_at_least(estimator_window, 2, "estimator_window")
        self._interval = float(interval)
        self._bound = float(max_mistake_rate)
        self._period = float(update_period)
        self._cap_intervals = float(margin_cap_intervals)
        self._estimator = OnlineNetworkEstimator(interval, estimator_window)
        self._margin = float(initial_margin) if initial_margin is not None else interval
        self._next_update: float | None = None
        self.n_updates = 0

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def margin(self) -> float:
        """The margin currently in force."""
        return self._margin

    @property
    def detection_time_bound(self) -> float:
        """The T_D currently implied (Δi + current margin)."""
        return self._interval + self._margin

    def current_behavior(self) -> NetworkBehavior:
        """The latest (p_L, V(D)) estimate (raises before 2 heartbeats)."""
        return self._estimator.behavior()

    def observe(self, seq: int, arrival: float) -> bool:
        """Feed one received heartbeat; returns True if the margin changed."""
        self._estimator.observe(seq, arrival)
        if self._next_update is None:
            self._next_update = arrival + self._period
            return False
        if arrival < self._next_update or self._estimator.n_observed < 2:
            return False
        self._next_update = arrival + self._period
        new_margin = margin_for_accuracy(
            self._interval,
            self._estimator.behavior(),
            self._bound,
            margin_cap_intervals=self._cap_intervals,
        )
        changed = abs(new_margin - self._margin) > 1e-12
        self._margin = new_margin
        self.n_updates += 1
        return changed
