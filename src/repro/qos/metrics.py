"""QoS metrics for failure detectors (paper §II-A2).

In the QoS model p never crashes while accuracy is measured, so every
S-output is a *mistake*.  Over an :class:`~repro.qos.timeline.OutputTimeline`:

- **Average mistake rate** λ_MR — S-transitions per unit time (the paper
  plots this as T_MR on a log axis); its reciprocal is the *mistake
  recurrence time*.
- **Average mistake duration** T_M — mean time from an S-transition to the
  next T-transition.
- **Query accuracy probability** P_A — probability the output is correct
  (= T) at a uniformly random query time.

Detection time T_D is measured separately, by replaying crashes
(:mod:`repro.replay.detection`), since it needs the heartbeat trace and not
just the output timeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.qos.timeline import OutputTimeline

__all__ = ["QoSMetrics", "compute_metrics"]


@dataclass(frozen=True)
class QoSMetrics:
    """Accuracy metrics of one detector run over one observation window."""

    duration: float
    n_mistakes: int
    mistake_rate: float
    mistake_recurrence_time: float
    mistake_duration: float
    query_accuracy: float
    trust_time: float
    suspect_time: float

    def satisfies(
        self,
        *,
        max_mistake_rate: float | None = None,
        max_mistake_duration: float | None = None,
        min_query_accuracy: float | None = None,
    ) -> bool:
        """Check this run against (a subset of) a QoS requirement tuple."""
        if max_mistake_rate is not None and self.mistake_rate > max_mistake_rate:
            return False
        if (
            max_mistake_duration is not None
            and self.mistake_duration > max_mistake_duration
        ):
            return False
        if min_query_accuracy is not None and self.query_accuracy < min_query_accuracy:
            return False
        return True

    def as_dict(self) -> dict:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


def compute_metrics(timeline: OutputTimeline) -> QoSMetrics:
    """Compute all §II-A2 accuracy metrics from an output timeline.

    Conventions for degenerate windows: with zero mistakes the mistake rate
    is 0, the recurrence time infinite, and the mistake duration 0.  Initial
    suspicion time (before any T-transition) counts against P_A but — having
    no preceding S-transition inside the window — not toward T_M, matching
    the definitions drawn in Fig. 2.
    """
    duration = timeline.duration
    if duration <= 0:
        raise ValueError("cannot compute metrics over an empty observation window")
    n_mistakes = timeline.n_s_transitions
    trust = timeline.trust_time()
    suspect = timeline.suspect_time()

    # Average time from each S-transition to the following T-transition (or
    # window end).  Equivalently: total S-time attributable to in-window
    # S-transitions, divided by their count.
    if n_mistakes:
        s_times = timeline.s_transition_times()
        # S-time not preceded by an in-window S-transition is the initial
        # suspicion segment (if the window opens in S).
        initial_suspect = 0.0
        if not timeline.initial_trust:
            first_t = (
                timeline.times[timeline.states][0]
                if timeline.n_t_transitions
                else timeline.end
            )
            initial_suspect = float(first_t) - timeline.start
        # Clamp: with denormal-scale segments the initial-suspicion length
        # can exceed the float-absorbed total, going negative by an ulp.
        mistake_duration = max(0.0, suspect - initial_suspect) / n_mistakes
    else:
        mistake_duration = 0.0

    rate = n_mistakes / duration
    return QoSMetrics(
        duration=duration,
        n_mistakes=n_mistakes,
        mistake_rate=rate,
        mistake_recurrence_time=(duration / n_mistakes) if n_mistakes else math.inf,
        mistake_duration=mistake_duration,
        query_accuracy=trust / duration,
        trust_time=trust,
        suspect_time=suspect,
    )
