"""QoS machinery for failure detectors (paper §II-A and §V).

- :mod:`repro.qos.timeline` — T/S output timelines and transitions (the
  objects Fig. 1-2 are drawn over),
- :mod:`repro.qos.metrics` — the QoS metrics T_D, T_MR, T_M, P_A,
- :mod:`repro.qos.spec` — application QoS requirement tuples
  (T_D^U, T_MR^U, T_M^U),
- :mod:`repro.qos.configurator` — Chen's configuration procedure mapping a
  QoS spec + network behaviour to (Δi, Δto) (Eq. 14-16, §V-A),
- :mod:`repro.qos.estimators` — estimating p_L and V(D) from heartbeats
  (§V-A1),
- :mod:`repro.qos.shared` — combining multiple applications' requirements
  onto one heartbeat stream (§V-B/§V-C),
- :mod:`repro.qos.analytic` — exact closed-form QoS of NFD-S under i.i.d.
  behaviour (the test suite's theory-vs-measurement oracle),
- :mod:`repro.qos.adaptive` — periodic reconfiguration (§V-A remark).
"""

from repro.qos.adaptive import AdaptiveMarginController, margin_for_accuracy
from repro.qos.analytic import nfds_query_accuracy, nfds_suspect_probability
from repro.qos.configurator import ConfigurationError, FDConfiguration, configure
from repro.qos.estimators import NetworkBehavior, estimate_network_behavior
from repro.qos.metrics import QoSMetrics, compute_metrics
from repro.qos.shared import SharedConfiguration, combine
from repro.qos.spec import QoSSpec
from repro.qos.timeline import OutputTimeline

__all__ = [
    "AdaptiveMarginController",
    "ConfigurationError",
    "FDConfiguration",
    "NetworkBehavior",
    "OutputTimeline",
    "QoSMetrics",
    "QoSSpec",
    "SharedConfiguration",
    "combine",
    "compute_metrics",
    "configure",
    "estimate_network_behavior",
    "margin_for_accuracy",
    "nfds_query_accuracy",
    "nfds_suspect_probability",
]
