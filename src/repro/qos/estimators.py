"""Estimating the network's probabilistic behaviour (paper §V-A1).

The configuration procedure needs two inputs about the network: the message
loss probability ``p_L`` and the variance of message delays ``V(D)``.  Both
are estimable from heartbeats alone, without synchronized clocks:

- ``p_L``: count missing sequence numbers and divide by the highest
  sequence number received so far;
- ``V(D)``: the variance of ``A − S`` (receipt time on q's clock minus send
  time stamped by p).  An unknown clock skew shifts every ``A − S`` by the
  same constant, so the *variance* is unaffected.  With heartbeats sent
  every Δi, ``S = Δi·s`` and ``A − S`` is exactly the trace's normalized
  arrival column.

Both a batch function over a recorded trace and an O(1)-per-message online
estimator (for the live service) are provided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import ensure_int_at_least, ensure_non_negative, ensure_probability
from repro.core.windows import SlidingWindow
from repro.traces.trace import HeartbeatTrace

__all__ = [
    "NetworkBehavior",
    "estimate_network_behavior",
    "OnlineNetworkEstimator",
]


@dataclass(frozen=True)
class NetworkBehavior:
    """The (p_L, V(D)) pair the configurator consumes."""

    loss_probability: float
    delay_variance: float

    def __post_init__(self) -> None:
        ensure_probability(self.loss_probability, "loss_probability")
        ensure_non_negative(self.delay_variance, "delay_variance")

    def __str__(self) -> str:
        return f"(p_L={self.loss_probability:.4g}, V(D)={self.delay_variance:.4g}s²)"


def estimate_network_behavior(trace: HeartbeatTrace) -> NetworkBehavior:
    """Estimate (p_L, V(D)) from a recorded heartbeat trace.

    Loss is measured against the highest sequence number received (not
    ``n_sent``, which q cannot observe); the delay variance is the variance
    of normalized arrivals, which equals V(D) under any constant clock skew.
    """
    highest = int(trace.seq.max())
    received_unique = len(np.unique(trace.seq))
    p_l = (highest - received_unique) / highest if highest else 0.0
    v_d = float(trace.normalized_arrivals().var())
    return NetworkBehavior(loss_probability=p_l, delay_variance=v_d)


class OnlineNetworkEstimator:
    """Windowed online estimator of (p_L, V(D)).

    Feed every received heartbeat via :meth:`observe`.  Loss is tracked over
    the *sequence-number* span covered by the retained window (so old
    behaviour ages out, letting a periodically re-run configurator adapt to
    changing conditions, as §V-A suggests); delay variance over the retained
    normalized arrivals.
    """

    __slots__ = ("_interval", "_normalized", "_seqs", "_received_in_window")

    def __init__(self, interval: float, window_size: int = 10_000):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        ensure_int_at_least(window_size, 2, "window_size")
        self._interval = float(interval)
        self._normalized = SlidingWindow(window_size)
        self._seqs = SlidingWindow(window_size)

    @property
    def n_observed(self) -> int:
        return len(self._normalized)

    def observe(self, seq: int, arrival: float) -> None:
        """Record a received heartbeat (any order; duplicates allowed)."""
        self._normalized.push(arrival - self._interval * seq)
        self._seqs.push(float(seq))

    def behavior(self) -> NetworkBehavior:
        """Current (p_L, V(D)) estimate.

        Requires at least two observations; with fewer, the estimate is
        degenerate (no variance information).
        """
        n = len(self._seqs)
        if n < 2:
            raise ValueError("need at least two heartbeats to estimate behaviour")
        seqs = self._seqs.values()
        span = float(seqs.max() - seqs.min()) + 1.0
        # Duplicates in the window should not drive the estimate negative.
        distinct = len(np.unique(seqs))
        p_l = max(0.0, 1.0 - distinct / span)
        return NetworkBehavior(
            loss_probability=min(1.0, p_l),
            delay_variance=self._normalized.variance(),
        )
