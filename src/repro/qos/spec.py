"""Application QoS requirement tuples (paper §V-A).

Applications express failure-detection requirements as a tuple
``(T_D^U, T_MR^U, T_M^U)``:

- ``T_D^U`` — upper bound on detection time,
- ``T_MR^U`` — upper bound on the average mistake *rate* (equivalently a
  lower bound ``1/T_MR^U`` on the mistake recurrence time),
- ``T_M^U`` — upper bound on the average mistake duration.

:class:`QoSSpec` is the value object consumed by the configurator (§V-A)
and the shared-service combiner (§V-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._validation import ensure_positive

__all__ = ["QoSSpec"]


@dataclass(frozen=True, order=True)
class QoSSpec:
    """An application's failure-detection QoS requirement.

    Parameters
    ----------
    detection_time:
        T_D^U, seconds.
    mistake_rate:
        T_MR^U, mistakes per second (use :meth:`from_recurrence_time` to
        specify a minimum time *between* mistakes instead).
    mistake_duration:
        T_M^U, seconds.
    name:
        Optional label used in shared-service reports.
    """

    detection_time: float
    mistake_rate: float
    mistake_duration: float
    name: str = ""

    def __post_init__(self) -> None:
        ensure_positive(self.detection_time, "detection_time")
        ensure_positive(self.mistake_rate, "mistake_rate")
        ensure_positive(self.mistake_duration, "mistake_duration")

    @classmethod
    def from_recurrence_time(
        cls,
        detection_time: float,
        recurrence_time: float,
        mistake_duration: float,
        name: str = "",
    ) -> "QoSSpec":
        """Build a spec bounding the mistake recurrence time from below.

        ``recurrence_time`` seconds between mistakes corresponds to a rate
        bound of ``1/recurrence_time`` (the paper presents the two forms as
        equivalent).
        """
        ensure_positive(recurrence_time, "recurrence_time")
        return cls(
            detection_time=detection_time,
            mistake_rate=1.0 / recurrence_time,
            mistake_duration=mistake_duration,
            name=name,
        )

    @property
    def recurrence_time(self) -> float:
        """The equivalent lower bound on mistake recurrence time."""
        return 1.0 / self.mistake_rate if self.mistake_rate else math.inf

    def is_met_by(self, detection_time: float, mistake_rate: float, mistake_duration: float) -> bool:
        """Does an achieved (T_D, T_MR, T_M) triple satisfy this requirement?"""
        return (
            detection_time <= self.detection_time
            and mistake_rate <= self.mistake_rate
            and mistake_duration <= self.mistake_duration
        )

    def __str__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return (
            f"{label}(T_D≤{self.detection_time:g}s, "
            f"T_MR≤{self.mistake_rate:g}/s, T_M≤{self.mistake_duration:g}s)"
        )
