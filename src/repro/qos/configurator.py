"""Chen's QoS configuration procedure (paper §V-A, Eq. 14-16).

Given an application's QoS requirement tuple ``(T_D^U, T_MR^U, T_M^U)`` and
the probabilistic behaviour of heartbeats — loss probability ``p_L`` and
delay variance ``V(D)`` — the procedure outputs the heartbeat interval Δi
and safety margin Δto that satisfy the requirement while *maximizing* Δi
(minimizing network load):

- **Step 1**:  γ' = (1 − p_L)·(T_D^U)² / (V(D) + (T_D^U)²)  and
  Δi_max = min(γ'·T_D^U, T_M^U).  If Δi_max = 0 the QoS cannot be achieved.
- **Step 2**:  find the largest Δi ≤ Δi_max with f(Δi) ≤ T_MR^U, where

      f(Δi) = (1/Δi) · ∏_{j=1}^{⌈T_D^U/Δi⌉ − 1}
                  (V(D) + p_L·x_j²) / (V(D) + x_j²),
      x_j   = T_D^U − j·Δi.

  Each factor is the one-sided-Chebyshev upper bound on the probability
  that heartbeat j fails to arrive in time to prevent a false suspicion
  (lost with probability p_L, or delayed beyond ``x_j`` with probability at
  most ``V/(V + x_j²)``), so f bounds the expected mistake rate: at most
  one potential mistake per Δi, realized only if *every* heartbeat with a
  chance misses it.  Such a Δi always exists because f → 0 as Δi → 0.
- **Step 3**:  Δto = T_D^U − Δi.

The search uses a logarithmic grid plus bisection refinement; f is evaluated
in log space so deep products neither under- nor overflow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._validation import ensure_int_at_least
from repro.qos.estimators import NetworkBehavior
from repro.qos.spec import QoSSpec

__all__ = [
    "ConfigurationError",
    "FDConfiguration",
    "configure",
    "mistake_rate_bound",
]


class ConfigurationError(ValueError):
    """Raised when a QoS requirement cannot be achieved (Step 1 failure)."""


@dataclass(frozen=True)
class FDConfiguration:
    """The configurator's output for one application.

    ``interval``/``safety_margin`` are the paper's Δi/Δto;
    ``mistake_rate_bound`` is f(Δi), the guaranteed upper bound on the
    achieved average mistake rate; ``interval_max`` is Step 1's Δi_max.
    """

    spec: QoSSpec
    behavior: NetworkBehavior
    interval: float
    safety_margin: float
    mistake_rate_bound: float
    interval_max: float
    gamma: float

    @property
    def detection_time(self) -> float:
        """The detection-time bound this configuration realizes (Δi + Δto)."""
        return self.interval + self.safety_margin

    @property
    def message_rate(self) -> float:
        """Heartbeats per second on the network (1/Δi)."""
        return 1.0 / self.interval

    def __str__(self) -> str:
        return (
            f"FDConfiguration(Δi={self.interval:.6g}s, Δto={self.safety_margin:.6g}s, "
            f"f(Δi)={self.mistake_rate_bound:.3g}/s)"
        )


def mistake_rate_bound(
    interval: float,
    detection_time: float,
    behavior: NetworkBehavior,
) -> float:
    """Evaluate f(Δi): the Eq. 16 upper bound on the average mistake rate."""
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if detection_time <= 0:
        raise ValueError(f"detection_time must be positive, got {detection_time}")
    n_terms = math.ceil(detection_time / interval) - 1
    if n_terms <= 0:
        return 1.0 / interval
    v = behavior.delay_variance
    p_l = behavior.loss_probability
    log_f = -math.log(interval)
    # Evaluate the product in log space, chunked, with early exit: once the
    # running log drops below the float64 underflow point the bound is 0,
    # and tiny Δi (huge n_terms) must not materialize a giant array.
    chunk = 1_000_000
    for start in range(1, n_terms + 1, chunk):
        stop = min(start + chunk, n_terms + 1)
        j = np.arange(start, stop, dtype=np.float64)
        x = detection_time - j * interval
        num = v + p_l * x * x
        den = v + x * x
        if np.any(den == 0.0):
            # V(D) = 0 and some x_j = 0: that heartbeat provides no slack
            # at all; the factor is the bare loss probability.
            num = np.where(den == 0.0, p_l, num)
            den = np.where(den == 0.0, 1.0, den)
        factors = num / den
        if np.any(factors == 0.0):
            return 0.0
        log_f += float(np.log(factors).sum())
        if log_f < -745.0:
            return 0.0
    return math.exp(log_f)


def configure(
    spec: QoSSpec,
    behavior: NetworkBehavior,
    *,
    grid_points: int = 2048,
    refine_iters: int = 60,
) -> FDConfiguration:
    """Run Steps 1-3 of the configuration procedure for one application.

    Parameters
    ----------
    spec:
        The QoS requirement tuple (T_D^U, T_MR^U, T_M^U).
    behavior:
        Estimated network behaviour (p_L, V(D)); see
        :func:`repro.qos.estimators.estimate_network_behavior`.
    grid_points:
        Size of the logarithmic Δi search grid (Step 2's numerical method).
    refine_iters:
        Bisection iterations refining the feasibility boundary.

    Raises
    ------
    ConfigurationError
        If Step 1 yields Δi_max = 0 (the QoS cannot be achieved).
    """
    ensure_int_at_least(grid_points, 8, "grid_points")
    td = spec.detection_time
    v = behavior.delay_variance
    p_l = behavior.loss_probability

    # Step 1.
    gamma = (1.0 - p_l) * td * td / (v + td * td)
    interval_max = min(gamma * td, spec.mistake_duration)
    if interval_max <= 0.0:
        raise ConfigurationError(
            f"QoS {spec} cannot be achieved under {behavior}: Δi_max = {interval_max}"
        )

    bound = spec.mistake_rate

    def feasible(eta: float) -> bool:
        return mistake_rate_bound(eta, td, behavior) <= bound

    # Step 2: largest Δi ≤ Δi_max with f(Δi) ≤ bound.  Scan the log grid
    # from the largest Δi downward, stopping at the first feasible point
    # (f → 0 as Δi → 0, so the scan terminates quickly for any realistic
    # requirement and never evaluates tiny Δi unnecessarily).
    if feasible(interval_max):
        best = interval_max
        upper = None
    else:
        grid = np.geomspace(interval_max / 1e6, interval_max, grid_points)
        best = None
        upper = interval_max
        for eta in grid[::-1]:
            if feasible(float(eta)):
                best = float(eta)
                break
            upper = float(eta)
        if best is None:
            raise ConfigurationError(
                f"no feasible Δi found for {spec} under {behavior} "
                f"(tightest grid point f = "
                f"{mistake_rate_bound(float(grid[0]), td, behavior):.3g}/s)"
            )

    # Bisection refinement toward the exact boundary of the last feasible
    # grid cell (f is piecewise smooth between ⌈T_D/Δi⌉ jumps).
    if upper is not None:
        lo, hi = best, upper
        for _ in range(refine_iters):
            mid = 0.5 * (lo + hi)
            if feasible(mid):
                lo = mid
            else:
                hi = mid
        best = lo

    # Step 3.
    safety_margin = td - best
    return FDConfiguration(
        spec=spec,
        behavior=behavior,
        interval=best,
        safety_margin=safety_margin,
        mistake_rate_bound=mistake_rate_bound(best, td, behavior),
        interval_max=interval_max,
        gamma=gamma,
    )
