"""Combining multiple applications' QoS onto one heartbeat stream (§V-C).

When n applications (or VMs) on one physical machine all monitor the same
remote host, running one failure detector per application wastes network
bandwidth: each would send its own heartbeat stream.  The paper's shared
service sends **one** stream and gives each application its own freshness
points:

- **Step 1**: configure each application independently with Chen's
  procedure → (Δi_j, Δto_j);
- **Step 2**: the machine-wide heartbeat interval is Δi_min = min_j Δi_j;
- **Step 3**: each application's margin is re-derived to hit its exact
  detection-time bound: Δto'_j = T_D,j − Δi_min;
- **Step 4**: the FD service sends heartbeats every Δi_min and evaluates a
  per-application freshness point using Δto'_j.

Consequences (§V-C1), which :class:`SharedConfiguration` quantifies and the
test suite asserts: every application's detection time is preserved exactly
(T_D = Δi + Δto); applications whose dedicated Δi exceeded Δi_min receive
*more frequent* heartbeats with a *larger* margin, so their guaranteed
mistake-rate bound f and their expected mistake duration can only improve;
and the network carries 1/Δi_min messages per second instead of
Σ_j 1/Δi_j.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.qos.configurator import FDConfiguration, configure, mistake_rate_bound
from repro.qos.estimators import NetworkBehavior
from repro.qos.spec import QoSSpec

__all__ = ["SharedApplication", "SharedConfiguration", "combine"]


@dataclass(frozen=True)
class SharedApplication:
    """One application's view of the shared service.

    ``dedicated`` is the configuration it would use alone (Step 1);
    ``safety_margin`` is its adapted Δto'_j (Step 3); the two bounds let
    callers verify the §V-C1 improvement claims.
    """

    spec: QoSSpec
    dedicated: FDConfiguration
    safety_margin: float
    mistake_rate_bound: float

    @property
    def detection_time(self) -> float:
        """T_D under the shared service (must equal the dedicated one)."""
        return self.spec.detection_time

    @property
    def dedicated_mistake_rate_bound(self) -> float:
        return self.dedicated.mistake_rate_bound

    @property
    def improvement_factor(self) -> float:
        """Dedicated / shared mistake-rate bound (≥ 1 per §V-C1)."""
        if self.mistake_rate_bound == 0.0:
            return float("inf")
        return self.dedicated.mistake_rate_bound / self.mistake_rate_bound


@dataclass(frozen=True)
class SharedConfiguration:
    """The shared service's machine-wide configuration."""

    behavior: NetworkBehavior
    interval: float  # Δi_min, the single heartbeat interval (Step 2)
    applications: Tuple[SharedApplication, ...]

    @property
    def message_rate(self) -> float:
        """Heartbeats per second the shared service sends (1/Δi_min)."""
        return 1.0 / self.interval

    @property
    def dedicated_message_rate(self) -> float:
        """Heartbeats per second n dedicated detectors would send (Σ 1/Δi_j)."""
        return sum(app.dedicated.message_rate for app in self.applications)

    @property
    def traffic_reduction(self) -> float:
        """Fraction of network load saved by sharing (0 = none)."""
        dedicated = self.dedicated_message_rate
        return 1.0 - self.message_rate / dedicated if dedicated else 0.0

    def margin_for(self, name: str) -> float:
        """Adapted Δto' of the application named ``name``."""
        for app in self.applications:
            if app.spec.name == name:
                return app.safety_margin
        raise KeyError(f"no application named {name!r}")


def combine(
    specs: Sequence[QoSSpec],
    behavior: NetworkBehavior,
    **configure_kwargs: object,
) -> SharedConfiguration:
    """Run Steps 1-4 of §V-C for ``specs`` under ``behavior``.

    Raises :class:`~repro.qos.configurator.ConfigurationError` if any single
    application's QoS is unachievable on its own (sharing never rescues an
    individually infeasible requirement).
    """
    if not specs:
        raise ValueError("at least one application spec is required")
    dedicated = [configure(spec, behavior, **configure_kwargs) for spec in specs]
    interval_min = min(cfg.interval for cfg in dedicated)
    apps = []
    for spec, cfg in zip(specs, dedicated):
        margin = spec.detection_time - interval_min  # Step 3
        apps.append(
            SharedApplication(
                spec=spec,
                dedicated=cfg,
                safety_margin=margin,
                mistake_rate_bound=mistake_rate_bound(
                    interval_min, spec.detection_time, behavior
                ),
            )
        )
    return SharedConfiguration(
        behavior=behavior,
        interval=interval_min,
        applications=tuple(apps),
    )
