"""Failure-detector output timelines (paper §II-A1).

At any instant the detector output is either T (trust) or S (suspect); an
*S-transition* switches T→S and a *T-transition* switches S→T, and only
finitely many transitions occur in finite time.  :class:`OutputTimeline`
stores one realized output as a step function over an observation window —
the object on which all QoS metrics (Fig. 1-2) are defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro._validation import ensure_1d_float_array, ensure_sorted

__all__ = ["OutputTimeline"]


@dataclass(frozen=True)
class OutputTimeline:
    """A T/S step function over ``[start, end]``.

    Parameters
    ----------
    start, end:
        Observation window bounds.
    initial_trust:
        Output at ``start``.
    times:
        Transition instants, non-decreasing, all within ``[start, end]``.
    states:
        Output *after* each transition (``True`` = T).  Must alternate.
    """

    start: float
    end: float
    initial_trust: bool
    times: np.ndarray = field(default_factory=lambda: np.zeros(0))
    states: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))

    def __post_init__(self) -> None:
        times = ensure_1d_float_array(self.times, "times")
        states = np.asarray(self.states, dtype=bool)
        if times.shape != states.shape:
            raise ValueError("times and states must have equal length")
        if self.end < self.start:
            raise ValueError(f"end ({self.end}) precedes start ({self.start})")
        ensure_sorted(times, "times")
        if times.size:
            if times[0] < self.start or times[-1] > self.end:
                raise ValueError("transition times must lie within [start, end]")
            expected = ~np.concatenate([[self.initial_trust], states[:-1]])
            if not np.array_equal(states, expected):
                raise ValueError("states must strictly alternate starting from initial_trust")
        times.setflags(write=False)
        states.setflags(write=False)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "states", states)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_transitions(
        cls,
        transitions: Iterable[Tuple[float, bool]],
        start: float,
        end: float,
        initial_trust: bool = False,
    ) -> "OutputTimeline":
        """Build from a ``(time, new_state)`` log (e.g. a detector's).

        Transitions outside ``[start, end]`` are folded into the boundary
        state; redundant entries (no state change) are dropped.
        """
        state = initial_trust
        times: List[float] = []
        states: List[bool] = []
        for t, s in transitions:
            if s == state:
                continue
            if t <= start:
                # Happened before the window: only the final pre-window
                # state matters.
                state = s
                if not times:
                    initial_trust = s
                continue
            if t > end:
                break
            times.append(float(t))
            states.append(bool(s))
            state = s
        return cls(
            start=float(start),
            end=float(end),
            initial_trust=bool(initial_trust),
            times=np.asarray(times, dtype=np.float64),
            states=np.asarray(states, dtype=bool),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        return float(self.end - self.start)

    @property
    def n_transitions(self) -> int:
        return int(self.times.size)

    @property
    def n_s_transitions(self) -> int:
        """Number of T→S transitions (the paper's mistake events when p is up)."""
        return int(np.count_nonzero(~self.states))

    @property
    def n_t_transitions(self) -> int:
        return int(np.count_nonzero(self.states))

    def state_at(self, t: float) -> bool:
        """Output at time ``t`` (right-continuous step function)."""
        if not self.start <= t <= self.end:
            raise ValueError(f"t={t} outside observation window [{self.start}, {self.end}]")
        idx = int(np.searchsorted(self.times, t, side="right"))
        if idx == 0:
            return bool(self.initial_trust)
        return bool(self.states[idx - 1])

    def _segment_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Segment edges and the state within each segment."""
        edges = np.concatenate([[self.start], self.times, [self.end]])
        seg_states = np.concatenate([[self.initial_trust], self.states]).astype(bool)
        return edges, seg_states

    def trust_time(self) -> float:
        """Total time the output is T."""
        edges, seg_states = self._segment_bounds()
        lengths = np.diff(edges)
        return float(lengths[seg_states].sum())

    def suspect_time(self) -> float:
        """Total time the output is S."""
        return self.duration - self.trust_time()

    def suspicion_intervals(self) -> List[Tuple[float, float]]:
        """Maximal [lo, hi) intervals with output S (Fig. 2's mistake spans)."""
        edges, seg_states = self._segment_bounds()
        out: List[Tuple[float, float]] = []
        for lo, hi, state in zip(edges[:-1], edges[1:], seg_states):
            if state or hi <= lo:
                continue
            if out and out[-1][1] == lo:
                out[-1] = (out[-1][0], float(hi))
            else:
                out.append((float(lo), float(hi)))
        return out

    def s_transition_times(self) -> np.ndarray:
        """Instants of the T→S transitions."""
        return self.times[~self.states]

    def restricted(self, start: float, end: float) -> "OutputTimeline":
        """The same output restricted to a sub-window."""
        if not self.start <= start <= end <= self.end:
            raise ValueError("sub-window must lie within the timeline")
        mask = (self.times > start) & (self.times <= end)
        return OutputTimeline(
            start=start,
            end=end,
            initial_trust=self.state_at(start),
            times=self.times[mask].copy(),
            states=self.states[mask].copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OutputTimeline([{self.start:.3f}, {self.end:.3f}], "
            f"{self.n_transitions} transitions, "
            f"{self.n_s_transitions} S-transitions)"
        )
