"""Exact QoS analysis of Chen's NFD-S under i.i.d. network behaviour.

Eq. 16's ``f`` bounds the mistake rate via one-sided Chebyshev because only
(p_L, V(D)) are assumed known.  When the *full* delay distribution is known
— as it is for synthetic traces — the same quantities have exact closed
forms for the synchronized-clock detector (NFD-S, freshness points
``τ_i = i·Δi + δ``), because message fates are independent:

- heartbeat ``m_{i+m}`` (sent ``m`` intervals after ``m_i``) is *useful* at
  time ``t ∈ [τ_i, τ_{i+1})`` iff it was delivered and its delay is at most
  ``t − (i+m)·Δi``;
- q suspects at ``t`` iff **every** potentially useful heartbeat failed:

      P(suspect at τ_i + x) = ∏_{m≥0, m·Δi ≤ δ+x} (p_L + (1−p_L)·(1 − F(δ + x − m·Δi)))

- the query accuracy is one minus the average of that product over a
  freshness interval (stationarity):

      P_A = 1 − (1/Δi) ∫₀^Δi P(suspect at τ + x) dx

These formulas give the test suite an *oracle*: a trace generated with
i.i.d. delays and Bernoulli loss, replayed through the entire measurement
pipeline, must reproduce the analytic P_A and per-freshness-point suspicion
probability to within sampling error — validating trace generation, the
replay kernels, and the metric definitions in one shot.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro._validation import ensure_non_negative, ensure_positive, ensure_probability

__all__ = [
    "nfds_suspect_probability",
    "nfds_query_accuracy",
    "measured_trust_at",
]

#: A delay CDF: F(x) = P(D <= x), vectorized over numpy arrays.
DelayCdf = Callable[[np.ndarray], np.ndarray]


def _suspect_product(
    x: np.ndarray, interval: float, shift: float, loss: float, cdf: DelayCdf
) -> np.ndarray:
    """P(suspect at τ_i + x) for an array of offsets ``x`` ≥ 0."""
    out = np.ones_like(x, dtype=np.float64)
    m_max = int(math.floor((shift + float(np.max(x))) / interval))
    for m in range(m_max + 1):
        slack = shift + x - m * interval
        # Heartbeats not yet sent (negative slack) cannot help: factor 1.
        late = 1.0 - np.asarray(cdf(np.maximum(slack, 0.0)), dtype=np.float64)
        factor = np.where(slack >= 0.0, loss + (1.0 - loss) * late, 1.0)
        out *= factor
    return out


def nfds_suspect_probability(
    interval: float,
    shift: float,
    loss: float,
    cdf: DelayCdf,
    offset: float = 0.0,
) -> float:
    """Exact P(output = S at time ``τ_i + offset``), any freshness point i."""
    ensure_positive(interval, "interval")
    ensure_non_negative(shift, "shift")
    ensure_probability(loss, "loss")
    ensure_non_negative(offset, "offset")
    return float(
        _suspect_product(np.array([offset]), interval, shift, loss, cdf)[0]
    )


def nfds_query_accuracy(
    interval: float,
    shift: float,
    loss: float,
    cdf: DelayCdf,
    *,
    n_points: int = 2001,
) -> float:
    """Exact P_A of NFD-S: 1 − mean suspicion probability over an interval.

    The integral is evaluated with Simpson's rule on ``n_points`` offsets
    (the integrand is smooth except for kinks at multiples of Δi, which
    Simpson handles to well below measurement noise at this resolution).
    """
    from scipy.integrate import simpson

    ensure_positive(interval, "interval")
    x = np.linspace(0.0, interval, int(n_points))
    p_suspect = _suspect_product(x, interval, shift, loss, cdf)
    return 1.0 - float(simpson(p_suspect, x=x) / interval)


def measured_trust_at(
    t: np.ndarray,
    d: np.ndarray,
    times: Sequence[float],
) -> np.ndarray:
    """Measured output at arbitrary instants from a replay's ``(t, d)``.

    ``trusted at x`` iff the last accepted heartbeat at or before ``x``
    established a deadline beyond ``x`` (the strict ``x < d`` rule).  Used
    to sample the output at every freshness point and compare against
    :func:`nfds_suspect_probability`.
    """
    t = np.asarray(t, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    idx = np.searchsorted(t, times, side="right") - 1
    out = np.zeros(len(times), dtype=bool)
    valid = idx >= 0
    out[valid] = times[valid] < d[idx[valid]]
    return out
