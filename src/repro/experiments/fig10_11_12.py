"""Figures 10-12: how each QoS bound shapes the configured (Δi, Δto).

§V-B1 studies Chen's configuration procedure by varying one requirement at
a time and plotting the resulting heartbeat interval Δi and safety margin
Δto:

- **Fig. 10** (vary T_D^U): both grow; their sum is exactly T_D^U, so each
  is (piecewise) linear in T_D^U;
- **Fig. 11** (vary the mistake-recurrence bound): a more demanding bound
  (longer required time between mistakes) forces a smaller Δi and hence a
  larger Δto, with plateaus where the binding constraint is the discrete
  number of heartbeat opportunities ⌈T_D/Δi⌉ (the paper's "remain constant
  after a certain point");
- **Fig. 12** (vary T_M^U): T_M^U caps Δi directly (Step 1's
  Δi_max = min(γ'·T_D, T_M^U)), so Δi grows with T_M^U until the other
  constraints bind, then stays constant.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.results import ExperimentResult, Series
from repro.qos.configurator import ConfigurationError, configure
from repro.qos.estimators import NetworkBehavior
from repro.qos.spec import QoSSpec

__all__ = ["run", "DEFAULT_BEHAVIOR"]

#: Default network behaviour for the sweeps: mild loss, WAN-like delay
#: variance (V(D) in s²; ~30 ms delay std).
DEFAULT_BEHAVIOR = NetworkBehavior(loss_probability=0.01, delay_variance=0.001)


def _sweep(
    specs: Sequence[QoSSpec], behavior: NetworkBehavior
) -> tuple[list, list, list]:
    xs_ok, etas, margins = [], [], []
    for spec in specs:
        try:
            cfg = configure(spec, behavior)
        except ConfigurationError:
            continue
        xs_ok.append(spec)
        etas.append(cfg.interval)
        margins.append(cfg.safety_margin)
    return xs_ok, etas, margins


def run(
    behavior: NetworkBehavior = DEFAULT_BEHAVIOR,
    td_values: Sequence[float] = tuple(np.linspace(6.0, 60.0, 25)),
    recurrence_values: Sequence[float] = tuple(np.geomspace(60.0, 1e9, 40)),
    tm_values: Sequence[float] = tuple(np.geomspace(0.05, 100.0, 30)),
    base_td: float = 30.0,
    base_recurrence: float = 1e6,
    base_tm: float = 1000.0,
    scale: float | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Regenerate the three configuration-sweep figures.

    ``scale``/``seed`` are accepted (and ignored) for harness uniformity —
    these sweeps are analytic and use no trace.
    """
    result = ExperimentResult(
        experiment_id="fig10-12",
        title="Configured Δi and Δto vs each QoS bound",
        description=(
            "Chen's configuration procedure (Eq. 14-16) swept one QoS "
            "parameter at a time around the operating point "
            f"(T_D={base_td}s, recurrence≥{base_recurrence}s, T_M≤{base_tm}s) "
            f"under {behavior}."
        ),
        params={
            "behavior": str(behavior),
            "base_td": base_td,
            "base_recurrence": base_recurrence,
            "base_tm": base_tm,
        },
    )

    # Fig. 10: vary T_D^U.  T_M^U is kept non-binding (base_tm large) and the
    # recurrence requirement strong enough that the number of heartbeat
    # opportunities per detection window stays constant across the sweep —
    # the regime in which the paper's figure shows both Δi and Δto growing
    # linearly (their ratio "determined by the remaining QoS parameters").
    specs = [
        QoSSpec.from_recurrence_time(td, base_recurrence, base_tm) for td in td_values
    ]
    ok, etas, margins = _sweep(specs, behavior)
    xs = [s.detection_time for s in ok]
    result.series.append(Series("fig10 Δi", "T_D^U [s]", "Δi [s]", xs, etas))
    result.series.append(Series("fig10 Δto", "T_D^U [s]", "Δto [s]", xs, margins))
    sums_ok = np.allclose(np.array(etas) + np.array(margins), np.array(xs))
    result.add_check("fig10: Δi + Δto == T_D^U exactly", bool(sums_ok))
    result.add_check(
        "fig10: both Δi and Δto grow with T_D^U",
        bool(np.all(np.diff(etas) >= -1e-9) and np.all(np.diff(margins) >= -1e-9)),
    )

    # Fig. 11: vary the mistake-recurrence requirement.
    specs = [
        QoSSpec.from_recurrence_time(base_td, rec, base_tm)
        for rec in recurrence_values
    ]
    ok, etas, margins = _sweep(specs, behavior)
    xs = [s.recurrence_time for s in ok]
    result.series.append(
        Series("fig11 Δi", "required recurrence [s]", "Δi [s]", xs, etas)
    )
    result.series.append(
        Series("fig11 Δto", "required recurrence [s]", "Δto [s]", xs, margins)
    )
    result.add_check(
        "fig11: Δi non-increasing / Δto non-decreasing as the requirement tightens",
        bool(np.all(np.diff(etas) <= 1e-9) and np.all(np.diff(margins) >= -1e-9)),
    )
    diffs = np.diff(etas)
    plateaus = int(np.isclose(diffs, 0.0, atol=1e-6).sum())
    decreases = int((diffs < -1e-6).sum())
    result.add_check(
        "fig11: Δi declines in steps with plateau regions "
        "(discrete heartbeat-count constraint)",
        plateaus >= 1 and decreases >= 1,
        f"{plateaus} flat steps, {decreases} drops of {len(etas) - 1}",
    )

    # Fig. 12: vary T_M^U (it caps Δi_max directly; the sweep extends past
    # the point where the other constraints take over, exposing saturation).
    specs = [
        QoSSpec.from_recurrence_time(base_td, base_recurrence, tm) for tm in tm_values
    ]
    ok, etas, margins = _sweep(specs, behavior)
    xs = [s.mistake_duration for s in ok]
    result.series.append(Series("fig12 Δi", "T_M^U [s]", "Δi [s]", xs, etas))
    result.series.append(Series("fig12 Δto", "T_M^U [s]", "Δto [s]", xs, margins))
    result.add_check(
        "fig12: Δi non-decreasing in T_M^U (T_M^U caps Δi_max)",
        bool(np.all(np.diff(etas) >= -1e-9)),
    )
    # Once T_M^U exceeds the other binding constraints, Δi saturates.
    tail = np.array(etas[-5:])
    result.add_check(
        "fig12: Δi saturates for loose T_M^U",
        bool(np.allclose(tail, tail[-1], rtol=1e-3)),
        f"tail Δi = {tail.round(6).tolist()}",
    )
    return result
