"""Shared plumbing for the experiment runners.

Caches generated traces per (scenario, scale, seed) so a benchmark session
regenerating several figures pays trace synthesis once, and provides the
standard detection-time grid used across the comparison figures.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.replay.detection import measured_detection_time
from repro.replay.kernels import DeadlineKernel, make_kernel
from repro.replay.metrics_kernel import replay_metrics
from repro.replay.sweep import QoSCurve, calibrate_to_detection_time
from repro.runtime.cache import cached_trace
from repro.runtime.parallel import pmap
from repro.traces.lan import make_lan_trace
from repro.traces.trace import HeartbeatTrace
from repro.traces.wan import make_wan_trace

__all__ = [
    "DEFAULT_SCALE",
    "DEFAULT_SEED",
    "TD_TARGETS_WAN",
    "TD_TARGETS_LAN",
    "curve_at_targets",
    "curves_at_targets",
    "lan_trace",
    "wan_trace",
]

#: Default trace scale for interactive runs (fraction of the original
#: 5.8M/7.1M samples).  Benchmarks override via the REPRO_SCALE env var.
DEFAULT_SCALE: float = 0.02
DEFAULT_SEED: int = 2015

#: Detection-time grid for the WAN figures, anchored on the paper's
#: aggressive operating point T_D = 215 ms (§IV-C3).
TD_TARGETS_WAN: tuple = (0.215, 0.25, 0.30, 0.35, 0.40, 0.50, 0.70, 1.0, 1.5, 2.0)

#: Detection-time grid for the LAN scenario (Δi = 20 ms).
TD_TARGETS_LAN: tuple = (0.025, 0.03, 0.04, 0.06, 0.1, 0.2, 0.5, 1.0)


@lru_cache(maxsize=8)
def wan_trace(scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED) -> HeartbeatTrace:
    """Cached synthetic WAN trace (in-process LRU + optional disk cache)."""
    return cached_trace(
        "wan",
        {"scale": scale, "seed": seed},
        lambda: make_wan_trace(scale=scale, seed=seed),
    )


@lru_cache(maxsize=8)
def lan_trace(scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED) -> HeartbeatTrace:
    """Cached synthetic LAN trace (in-process LRU + optional disk cache)."""
    return cached_trace(
        "lan",
        {"scale": scale, "seed": seed},
        lambda: make_lan_trace(scale=scale, seed=seed),
    )


def curve_at_targets(
    kernel: DeadlineKernel,
    trace: HeartbeatTrace,
    targets: Sequence[float],
    label: str,
) -> QoSCurve:
    """QoS curve sampled at given *detection-time* targets.

    Each target is realized by calibrating the kernel's tuning parameter;
    unreachable targets (below the detector's floor, or beyond φ's
    threshold saturation) are skipped, which is how the φ curve ends early
    exactly as in the paper's figures.
    """
    offset = trace.send_offset_estimate()
    rows = []
    for target in targets:
        try:
            param = calibrate_to_detection_time(kernel, trace, target)
        except ValueError:
            continue
        d = kernel.deadlines(param)
        td = measured_detection_time(kernel.t, d, kernel.seq, kernel.interval, offset)
        m = replay_metrics(kernel.t, d, kernel.end_time, collect_gaps=False).metrics
        rows.append(
            (param, td, m.mistake_rate, m.query_accuracy, m.mistake_duration,
             m.n_mistakes, target)
        )
    if not rows:
        raise ValueError(f"no reachable detection-time target for {label!r}")
    cols = list(zip(*rows))
    return QoSCurve(
        label=label,
        detector=kernel.name,
        param_name=kernel.param_name,
        params=np.asarray(cols[0]),
        detection_time=np.asarray(cols[1]),
        mistake_rate=np.asarray(cols[2]),
        query_accuracy=np.asarray(cols[3]),
        mistake_duration=np.asarray(cols[4]),
        n_mistakes=np.asarray(cols[5], dtype=np.int64),
        targets=np.asarray(cols[6]),
    )


def _curve_at_targets_worker(
    job: Tuple[HeartbeatTrace, str, dict, Tuple[float, ...], str]
) -> QoSCurve | None:
    trace, detector, kwargs, targets, label = job
    kernel = make_kernel(detector, trace, **kwargs)
    try:
        return curve_at_targets(kernel, trace, targets, label)
    except ValueError:
        return None  # no reachable target at all (e.g. φ on the LAN trace)


def curves_at_targets(
    trace: HeartbeatTrace,
    specs: Sequence[Tuple[str, str, Mapping[str, object]]],
    targets: Sequence[float],
    *,
    jobs: int | None = None,
) -> Tuple[Dict[str, QoSCurve], List[str]]:
    """Build several detectors' target-grid curves, optionally in parallel.

    ``specs`` is a sequence of ``(label, detector_name, kernel_kwargs)``;
    each worker builds its own kernel (kernels don't pickle cheaply and the
    build is minor next to the calibration replays).  Returns the curves
    keyed by label, in spec order, plus the labels for which *no* target was
    reachable.
    """
    results = pmap(
        _curve_at_targets_worker,
        [
            (trace, detector, dict(kwargs), tuple(targets), label)
            for label, detector, kwargs in specs
        ],
        jobs=jobs,
    )
    curves: Dict[str, QoSCurve] = {}
    unreachable: List[str] = []
    for (label, _, _), curve in zip(specs, results):
        if curve is None:
            unreachable.append(label)
        else:
            curves[label] = curve
    return curves, unreachable
