"""Figures 6 & 7: 2W-FD vs Chen, Bertier, φ and ED (WAN scenario).

The paper's headline comparison: mistake rate T_MR (Fig. 6, log y) and
query accuracy P_A (Fig. 7) against detection time, with the window sizes
of §IV-C2 — 2W(1, 1000); Chen with windows 1 and 1000; φ, ED and Bertier
with window 1000.  Bertier has no tuning parameter and contributes a single
point.

Shape checks:

1. all tunable curves are monotone (T_MR non-increasing, P_A non-decreasing
   in T_D);
2. at the shared tuning parameter Δto, the 2W-FD never makes more mistakes
   than either Chen configuration (the Eq. 13 intersection theorem — this
   is the paper's dominance argument and holds exactly);
3. at matched measured T_D the 2W-FD has the lowest (or tied-lowest)
   mistake rate among the Chen-family/ED/Bertier detectors across the grid,
   and is strictly best at the paper's aggressive point T_D = 215 ms;
4. the φ curve stops early on the conservative side (threshold saturation,
   §IV-C2's "rounding error").
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.experiments.common import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    TD_TARGETS_WAN,
    curves_at_targets,
    wan_trace,
)
from repro.experiments.results import ExperimentResult, Series
from repro.replay.engine import replay_detector
from repro.replay.kernels import (
    BertierKernel,
    ChenKernel,
    MultiWindowKernel,
)
from repro.replay.sweep import QoSCurve, bertier_point

__all__ = ["run"]


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    targets: Sequence[float] = TD_TARGETS_WAN,
    scenario: str = "wan",
) -> ExperimentResult:
    """Regenerate Fig. 6 (T_MR vs T_D) and Fig. 7 (P_A vs T_D)."""
    if scenario == "wan":
        trace = wan_trace(scale, seed)
    elif scenario == "lan":
        from repro.experiments.common import TD_TARGETS_LAN, lan_trace

        trace = lan_trace(scale, seed)
        targets = TD_TARGETS_LAN
    else:
        raise ValueError(f"scenario must be 'wan' or 'lan', got {scenario!r}")

    # One worker per detector when REPRO_JOBS / --jobs asks for it; φ
    # missing every grid point (e.g. on the near-constant-gap LAN trace,
    # where its reachable T_D span collapses to a sliver around Δi) is
    # reported via ``unreachable`` — the extreme form of its early stop.
    specs = [
        ("2W-FD(1,1000)", "2w-fd", {"window_sizes": (1, 1000)}),
        ("Chen(1)", "chen", {"window_size": 1}),
        ("Chen(1000)", "chen", {"window_size": 1000}),
        ("phi(1000)", "phi", {"window_size": 1000}),
        ("ED(1000)", "ed", {"window_size": 1000}),
    ]
    curves: Dict[str, QoSCurve]
    curves, unreachable = curves_at_targets(trace, specs, targets)
    curves["Bertier(1000)"] = bertier_point(
        BertierKernel(trace, window_size=1000), trace, label="Bertier(1000)"
    )
    # Check 2 below replays the Chen-family kernels at shared margins.
    kernels = {
        "2W-FD(1,1000)": MultiWindowKernel(trace, window_sizes=(1, 1000)),
        "Chen(1)": ChenKernel(trace, window_size=1),
        "Chen(1000)": ChenKernel(trace, window_size=1000),
    }

    result = ExperimentResult(
        experiment_id="fig6-7",
        title=f"Detector comparison: T_MR and P_A vs T_D ({scenario.upper()})",
        description=(
            "Mistake rate (Fig. 6) and query accuracy (Fig. 7) of the 2W-FD "
            "against Chen (windows 1 and 1000), Bertier (single point), the "
            "phi accrual FD and the ED FD, all replayed over the same trace."
        ),
        params={
            "scale": scale,
            "seed": seed,
            "scenario": scenario,
            "n_received": trace.n_received,
        },
    )
    for label, curve in curves.items():
        result.series.append(
            Series(
                label=f"TMR {label}",
                x_label="T_D [s]",
                y_label="T_MR [1/s]",
                x=(curve.targets if curve.targets is not None else curve.detection_time).tolist(),
                y=curve.mistake_rate.tolist(),
                meta={"figure": 6},
            )
        )
        result.series.append(
            Series(
                label=f"PA {label}",
                x_label="T_D [s]",
                y_label="P_A",
                x=(curve.targets if curve.targets is not None else curve.detection_time).tolist(),
                y=curve.query_accuracy.tolist(),
                meta={"figure": 7},
            )
        )

    # Check 1: monotone curves.  P_A monotonicity is a theorem; the
    # S-transition *count* may wobble by a few (a larger margin can split
    # one long merged mistake into shorter ones around stalls), so the
    # T_MR check allows a couple of counts of slack.
    for label in ("2W-FD(1,1000)", "Chen(1)", "Chen(1000)", "ED(1000)"):
        if label not in curves:
            continue
        c = curves[label]
        count_slack = np.maximum(2.0, 0.05 * c.n_mistakes[:-1])
        mono = bool(
            np.all(np.diff(c.n_mistakes) <= count_slack)
            and np.all(np.diff(c.query_accuracy) >= -1e-12)
        )
        result.add_check(f"{label}: T_MR decreasing / P_A increasing in T_D", mono)

    # Check 2: the Eq. 13 dominance at equal Δto (exact theorem).
    margins = curves["2W-FD(1,1000)"].params
    dominance = []
    for margin in margins[:: max(1, len(margins) // 4)]:
        n2w = replay_detector(kernels["2W-FD(1,1000)"], trace, float(margin), collect_gaps=False).metrics.n_mistakes
        nc1 = replay_detector(kernels["Chen(1)"], trace, float(margin), collect_gaps=False).metrics.n_mistakes
        nc2 = replay_detector(kernels["Chen(1000)"], trace, float(margin), collect_gaps=False).metrics.n_mistakes
        dominance.append(n2w <= min(nc1, nc2))
    result.add_check(
        "2W-FD <= both Chen detectors at every shared margin (Eq. 13)",
        all(dominance),
    )

    # Check 3: lowest mistake rate among non-accrual baselines at matched
    # T_D.  The comparison is statistical (each point counts mistakes over a
    # finite trace), so a Poisson ~3σ slack is allowed on top of a 5%
    # relative tolerance; at full trace scale the slack is negligible.
    c2w = curves["2W-FD(1,1000)"]
    duration = trace.duration
    best_everywhere = True
    worst = ""
    for i, td in enumerate(c2w.detection_time):
        n_2w = float(c2w.n_mistakes[i])
        for other in ("Chen(1)", "Chen(1000)", "ED(1000)"):
            co = curves[other]
            j = int(np.argmin(np.abs(co.detection_time - td)))
            if abs(co.detection_time[j] - td) > 0.02 * td:
                continue
            n_other = float(co.n_mistakes[j])
            allowance = 1.05 * n_other + 3.0 * max(n_other, 1.0) ** 0.5
            if n_2w > allowance:
                best_everywhere = False
                worst = f"T_D={td:.3g}: 2W={n_2w:.0f} vs {other}={n_other:.0f}"
    result.add_check(
        "2W-FD best-or-tied vs Chen/ED at every matched T_D "
        "(5% + counting-noise tolerance)",
        best_everywhere,
        worst,
    )
    if scenario == "wan":
        aggressive = {
            label: float(c.mistake_rate[0]) for label, c in curves.items() if len(c) and label != "Bertier(1000)"
        }
        agg_counts = {
            label: float(c.n_mistakes[0])
            for label, c in curves.items()
            if len(c) and label not in ("Bertier(1000)", "phi(1000)")
        }
        n_2w = agg_counts["2W-FD(1,1000)"]
        best_other = min(v for k, v in agg_counts.items() if k != "2W-FD(1,1000)")
        result.add_check(
            "2W-FD lowest T_MR at the aggressive end (T_D = 215 ms) among "
            "freshness-point detectors (Chen/ED), within counting noise",
            n_2w <= best_other + 3.0 * max(best_other, 1.0) ** 0.5,
            ", ".join(f"{k}={v:.3g}" for k, v in aggressive.items()),
        )
        # The phi comparison at the aggressive point is reported but not
        # asserted: its outcome is seed/scale-sensitive on synthetic traces
        # (see EXPERIMENTS.md, deviations).
        result.params["phi_vs_2w_at_aggressive"] = (
            aggressive.get("phi(1000)"), aggressive["2W-FD(1,1000)"]
        )

    # Check 4: phi truncates early.
    max_td_others = max(
        curves[label].detection_time[-1]
        for label in ("2W-FD(1,1000)", "Chen(1)", "Chen(1000)", "ED(1000)")
        if label in curves
    )
    if "phi(1000)" in curves:
        result.add_check(
            "phi curve stops early (threshold saturation)",
            curves["phi(1000)"].detection_time[-1] < max_td_others,
            f"phi reaches T_D={curves['phi(1000)'].detection_time[-1]:.3g}s, "
            f"others {max_td_others:.3g}s",
        )
    else:
        result.add_check(
            "phi curve stops early (threshold saturation)",
            True,
            "phi reached no grid point at all (reachable T_D span collapses "
            "around Δi on this trace)",
        )
    if unreachable:
        result.params["unreachable_detectors"] = unreachable
    return result
