"""Figures 4 & 5: effect of the 2W-FD's window sizes (WAN scenario).

The paper sweeps both windows from 1 sample to 10,000 and plots, per
(n1, n2) pair, the mistake rate T_MR (Fig. 4, log y) and the query accuracy
P_A (Fig. 5) against detection time T_D.  Claims verified here (§IV-C1):

1. the smaller the small window, the better;
2. the bigger the big window, the better;
3. gains from growing the big window beyond 1000 are negligible;
4. curves sharing the same small window behave similarly (cluster).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.experiments.common import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    TD_TARGETS_WAN,
    curve_at_targets,
    wan_trace,
)
from repro.experiments.results import ExperimentResult, Series
from repro.replay.kernels import MultiWindowKernel

__all__ = ["WINDOW_PAIRS", "run"]

#: (small, big) pairs spanning the paper's 1 .. 10,000 sweep.
WINDOW_PAIRS: Tuple[Tuple[int, int], ...] = (
    (1, 10_000),
    (1, 1_000),
    (1, 100),
    (10, 1_000),
    (100, 1_000),
    (1_000, 10_000),
    (1, 1),
)


def _mean_ratio(a: np.ndarray, b: np.ndarray) -> float:
    """Geometric-mean ratio of two aligned positive series (0-safe)."""
    a = np.maximum(np.asarray(a, dtype=float), 1e-12)
    b = np.maximum(np.asarray(b, dtype=float), 1e-12)
    n = min(len(a), len(b))
    return float(np.exp(np.mean(np.log(a[:n] / b[:n]))))


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    targets: Sequence[float] = TD_TARGETS_WAN,
    window_pairs: Sequence[Tuple[int, int]] = WINDOW_PAIRS,
) -> ExperimentResult:
    """Regenerate Fig. 4 (T_MR vs T_D) and Fig. 5 (P_A vs T_D)."""
    trace = wan_trace(scale, seed)
    curves = {}
    for n1, n2 in window_pairs:
        kernel = MultiWindowKernel(trace, window_sizes=(n1, n2))
        curves[(n1, n2)] = curve_at_targets(kernel, trace, targets, f"2W({n1},{n2})")

    result = ExperimentResult(
        experiment_id="fig4-5",
        title="2W-FD window sizes: T_MR and P_A vs T_D (WAN)",
        description=(
            "Mistake rate (Fig. 4) and query accuracy probability (Fig. 5) of "
            "the 2W-FD for window-size pairs from 1 to 10,000, detection time "
            "swept via the safety margin Δto."
        ),
        params={"scale": scale, "seed": seed, "n_received": trace.n_received},
    )
    for (n1, n2), curve in curves.items():
        result.series.append(
            Series(
                label=f"TMR 2W({n1},{n2})",
                x_label="T_D [s]",
                y_label="T_MR [1/s]",
                x=(curve.targets if curve.targets is not None else curve.detection_time).tolist(),
                y=curve.mistake_rate.tolist(),
                meta={"figure": 4, "windows": (n1, n2)},
            )
        )
        result.series.append(
            Series(
                label=f"PA 2W({n1},{n2})",
                x_label="T_D [s]",
                y_label="P_A",
                x=(curve.targets if curve.targets is not None else curve.detection_time).tolist(),
                y=curve.query_accuracy.tolist(),
                meta={"figure": 5, "windows": (n1, n2)},
            )
        )

    # Claim 1: smaller small window is better (big window fixed at 1000).
    if (1, 1000) in curves and (10, 1000) in curves and (100, 1000) in curves:
        r_1_10 = _mean_ratio(curves[(1, 1000)].mistake_rate, curves[(10, 1000)].mistake_rate)
        r_10_100 = _mean_ratio(curves[(10, 1000)].mistake_rate, curves[(100, 1000)].mistake_rate)
        result.add_check(
            "smaller small window => lower mistake rate",
            r_1_10 <= 1.0 and r_10_100 <= 1.0,
            f"TMR(1,1000)/TMR(10,1000)={r_1_10:.3f}, TMR(10,1000)/TMR(100,1000)={r_10_100:.3f}",
        )
    # Claim 2: bigger big window is better (small window fixed at 1).
    if (1, 100) in curves and (1, 1000) in curves and (1, 10_000) in curves:
        r_1000_100 = _mean_ratio(curves[(1, 1000)].mistake_rate, curves[(1, 100)].mistake_rate)
        r_10000_1000 = _mean_ratio(curves[(1, 10_000)].mistake_rate, curves[(1, 1000)].mistake_rate)
        result.add_check(
            "bigger big window => lower mistake rate",
            r_1000_100 <= 1.02 and r_10000_1000 <= 1.05,
            f"TMR(1,1000)/TMR(1,100)={r_1000_100:.3f}, "
            f"TMR(1,10000)/TMR(1,1000)={r_10000_1000:.3f} "
            "(2%/5% noise tolerance on the near-saturated steps)",
        )
        # Claim 3: improvement beyond 1000 is negligible (< 30% further
        # change either way, vs the visible gap 100 -> 1000).
        result.add_check(
            "gain beyond big window 1000 is marginal",
            0.7 < r_10000_1000 < 1.3,
            f"TMR(1,10000)/TMR(1,1000)={r_10000_1000:.3f}",
        )
    # Claim 4: same small window => similar curves.  The (1,100)-(1,1000) gap
    # should be smaller than the (1,1000)-(100,1000) gap.
    if (1, 100) in curves and (100, 1000) in curves and (1, 1000) in curves:
        same_small = abs(np.log(_mean_ratio(curves[(1, 100)].mistake_rate, curves[(1, 1000)].mistake_rate)))
        diff_small = abs(np.log(_mean_ratio(curves[(100, 1000)].mistake_rate, curves[(1, 1000)].mistake_rate)))
        result.add_check(
            "curves sharing the small window cluster together",
            same_small <= diff_small,
            f"log-gap same-small={same_small:.3f} vs different-small={diff_small:.3f}",
        )
    return result
