"""Figure 9: the 2W-FD's mistakes are the intersection of Chen's (Eq. 13).

At T_D = 215 ms, W1 = 1, W2 = 1000, the paper overlays which mistakes each
of Chen-FD(W1), Chen-FD(W2) and MW-FD(W1, W2) makes over the WAN trace and
observes that the MW-FD makes exactly those mistakes made by *both* Chen
configurations.  With the shared safety margin this is a theorem (the
2W deadline is the pointwise max of the Chen deadlines), and this
experiment asserts it as exact set equality, then reports per-detector
mistake counts and the exclusive/shared breakdown the figure visualizes.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import DEFAULT_SCALE, DEFAULT_SEED, wan_trace
from repro.experiments.results import ExperimentResult
from repro.replay.kernels import ChenKernel, MultiWindowKernel
from repro.replay.mistakes import mistake_gaps
from repro.replay.sweep import calibrate_to_detection_time

__all__ = ["run"]


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    target_td: float = 0.215,
    w1: int = 1,
    w2: int = 1000,
) -> ExperimentResult:
    """Regenerate the Fig. 9 mistake-set analysis."""
    trace = wan_trace(scale, seed)
    k2w = MultiWindowKernel(trace, window_sizes=(w1, w2))
    kc1 = ChenKernel(trace, window_size=w1)
    kc2 = ChenKernel(trace, window_size=w2)

    # The shared tuning parameter: one margin for all three detectors, as in
    # the paper ("Chen and the MW failure detectors share a common tuning
    # parameter").  It is chosen so the 2W-FD hits the target T_D.
    margin = calibrate_to_detection_time(k2w, trace, target_td)

    m2w = mistake_gaps(k2w, trace, margin)
    mc1 = mistake_gaps(kc1, trace, margin)
    mc2 = mistake_gaps(kc2, trace, margin)
    inter = np.intersect1d(mc1.gap_index, mc2.gap_index)

    result = ExperimentResult(
        experiment_id="fig9",
        title=f"Mistake sets: 2W({w1},{w2}) = Chen({w1}) ∩ Chen({w2})",
        description=(
            "Which mistakes each detector makes over the WAN trace at the "
            "shared safety margin realizing T_D ≈ 215 ms for the 2W-FD "
            "(Eq. 13 / Fig. 9)."
        ),
        params={
            "scale": scale,
            "seed": seed,
            "target_td": target_td,
            "margin": margin,
            "w1": w1,
            "w2": w2,
        },
    )
    result.tables["mistake_sets"] = [
        {"detector": f"Chen({w1})", "mistakes": mc1.n_mistakes},
        {"detector": f"Chen({w2})", "mistakes": mc2.n_mistakes},
        {"detector": f"2W({w1},{w2})", "mistakes": m2w.n_mistakes},
        {"detector": f"Chen({w1}) ∩ Chen({w2})", "mistakes": int(inter.size)},
        {"detector": f"Chen({w1}) only", "mistakes": int(np.setdiff1d(mc1.gap_index, mc2.gap_index).size)},
        {"detector": f"Chen({w2}) only", "mistakes": int(np.setdiff1d(mc2.gap_index, mc1.gap_index).size)},
    ]
    result.add_check(
        "Mistakes(2W) == Mistakes(Chen_w1) ∩ Mistakes(Chen_w2) (exact)",
        bool(np.array_equal(np.sort(m2w.gap_index), inter)),
        f"|2W|={m2w.n_mistakes}, |∩|={inter.size}",
    )
    result.add_check(
        "2W makes no mistake either Chen avoids",
        bool(
            np.all(np.isin(m2w.gap_index, mc1.gap_index))
            and np.all(np.isin(m2w.gap_index, mc2.gap_index))
        ),
    )
    result.add_check(
        "each Chen configuration makes mistakes the other avoids "
        "(the two windows are complementary)",
        bool(
            np.setdiff1d(mc1.gap_index, mc2.gap_index).size > 0
            and np.setdiff1d(mc2.gap_index, mc1.gap_index).size > 0
        ),
    )
    return result
