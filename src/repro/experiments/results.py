"""Structured experiment results.

An :class:`ExperimentResult` carries the regenerated figure/table content —
named :class:`Series` of (x, y) points or table rows — together with
:class:`Check` records asserting the paper's qualitative claims (the
"shape" EXPERIMENTS.md tracks: who wins, orderings, monotonicity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

__all__ = ["Check", "Series", "ExperimentResult"]


@dataclass(frozen=True)
class Check:
    """One verified qualitative claim from the paper."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{mark}] {self.name}{suffix}"


@dataclass(frozen=True)
class Series:
    """One plotted curve / table column group."""

    label: str
    x_label: str
    y_label: str
    x: Sequence[float]
    y: Sequence[float]
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: x and y lengths differ "
                f"({len(self.x)} != {len(self.y)})"
            )

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class ExperimentResult:
    """The regenerated content of one paper table/figure."""

    experiment_id: str
    title: str
    description: str
    series: List[Series] = field(default_factory=list)
    tables: Dict[str, List[dict]] = field(default_factory=dict)
    checks: List[Check] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)

    def add_check(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(Check(name=name, passed=bool(passed), detail=detail))

    @property
    def all_checks_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(
            f"no series {label!r}; available: {[s.label for s in self.series]}"
        )

    def as_dict(self) -> dict:
        """JSON-serializable dump of the full result (for external plotting tools)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "description": self.description,
            "params": {k: _jsonable(v) for k, v in self.params.items()},
            "series": [
                {
                    "label": s.label,
                    "x_label": s.x_label,
                    "y_label": s.y_label,
                    "x": [float(v) for v in s.x],
                    "y": [float(v) for v in s.y],
                    "meta": {k: _jsonable(v) for k, v in s.meta.items()},
                }
                for s in self.series
            ],
            "tables": {
                name: [
                    {k: _jsonable(v) for k, v in row.items()} for row in rows
                ]
                for name, rows in self.tables.items()
            },
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.checks
            ],
        }


def _jsonable(value):
    """Coerce NumPy scalars / containers to plain JSON types."""
    import numpy as _np

    if isinstance(value, (_np.integer,)):
        return int(value)
    if isinstance(value, (_np.floating,)):
        return float(value)
    if isinstance(value, _np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
