"""Table I and Figure 8: per-sub-period mistakes at fixed T_D = 215 ms.

The paper fixes an aggressive detection time (215 ms), splits the WAN trace
into the four Table I periods (Stable 1 / Burst / Worm / Stable 2), and
counts each detector's mistakes per period.  Bertier cannot be parametrized
to hit a chosen T_D and is excluded, as in the paper.

Shape checks: the 2W-FD has the fewest mistakes of the Chen family in every
period, with its largest relative margin over Chen(1000) in the Burst
period ("performs better in all scenarios, but particularly better during
the Burst period", §IV-C3).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.common import DEFAULT_SCALE, DEFAULT_SEED, wan_trace
from repro.experiments.results import ExperimentResult, Series
from repro.replay.kernels import ChenKernel, EDKernel, MultiWindowKernel, PhiKernel
from repro.replay.mistakes import mistake_gaps, mistakes_by_segment
from repro.replay.sweep import calibrate_to_detection_time
from repro.traces.segments import WAN_SEGMENTS, scale_segments

__all__ = ["run", "TARGET_TD"]

#: The paper's fixed aggressive detection time (seconds).
TARGET_TD: float = 0.215

_SEGMENT_ORDER = ("stable1", "burst", "worm", "stable2")


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    target_td: float = TARGET_TD,
) -> ExperimentResult:
    """Regenerate Table I (segment boundaries) and Fig. 8 (mistake counts)."""
    trace = wan_trace(scale, seed)
    kernels = {
        "2W-FD(1,1000)": MultiWindowKernel(trace, window_sizes=(1, 1000)),
        "Chen(1)": ChenKernel(trace, window_size=1),
        "Chen(1000)": ChenKernel(trace, window_size=1000),
        "phi(1000)": PhiKernel(trace, window_size=1000),
        "ED(1000)": EDKernel(trace, window_size=1000),
    }

    per_segment: Dict[str, Dict[str, int]] = {}
    for label, kernel in kernels.items():
        try:
            param = calibrate_to_detection_time(kernel, trace, target_td)
        except ValueError:
            continue  # cannot reach the aggressive T_D — excluded like Bertier
        record = mistake_gaps(kernel, trace, param)
        per_segment[label] = mistakes_by_segment(record, trace)

    result = ExperimentResult(
        experiment_id="table1-fig8",
        title=f"Mistakes per WAN sub-period at T_D = {target_td*1000:.0f} ms",
        description=(
            "Table I's division of the WAN sample into Stable 1 / Burst / "
            "Worm / Stable 2 (boundaries rescaled to the generated trace), "
            "and Fig. 8's total mistakes per sub-period per detector."
        ),
        params={"scale": scale, "seed": seed, "target_td": target_td},
    )

    scaled = scale_segments(WAN_SEGMENTS, trace.n_received)
    result.tables["table1_segments"] = [
        {"name": seg.name, "from_sample": seg.start, "to_sample": seg.stop}
        for seg in scaled
    ]
    result.tables["fig8_mistakes"] = [
        {"detector": label, **{s: counts.get(s, 0) for s in _SEGMENT_ORDER}, "total": sum(counts.values())}
        for label, counts in per_segment.items()
    ]
    for label, counts in per_segment.items():
        result.series.append(
            Series(
                label=label,
                x_label="sub-period",
                y_label="mistakes",
                x=list(range(len(_SEGMENT_ORDER))),
                y=[counts.get(s, 0) for s in _SEGMENT_ORDER],
                meta={"segments": _SEGMENT_ORDER},
            )
        )

    chen_family = [l for l in ("2W-FD(1,1000)", "Chen(1)", "Chen(1000)") if l in per_segment]
    if len(chen_family) == 3:
        for seg in _SEGMENT_ORDER:
            counts = {l: per_segment[l][seg] for l in chen_family}
            best_other = min(v for k, v in counts.items() if k != "2W-FD(1,1000)")
            # Counting noise at reduced scale: allow ~3σ Poisson slack on
            # top of the best competitor (exact dominance holds at equal
            # margins — Eq. 13 — but each detector is calibrated to its own
            # margin here, so ties wobble by a few counts in quiet periods).
            slack = max(3.0, 3.0 * best_other**0.5)
            result.add_check(
                f"2W-FD fewest (within counting noise) in {seg}",
                counts["2W-FD(1,1000)"] <= best_other + slack,
                ", ".join(f"{k}={v}" for k, v in counts.items()),
            )
        # The burst period is where the advantage is biggest vs the
        # long-window Chen detector (the paper's motivating regime).
        def ratio(seg: str) -> float:
            a = per_segment["Chen(1000)"][seg]
            b = per_segment["2W-FD(1,1000)"][seg]
            return a / b if b else float("inf")

        result.add_check(
            "advantage over Chen(1000) largest in the Burst period",
            ratio("burst") >= max(ratio(s) for s in ("stable1", "worm", "stable2")),
            ", ".join(f"{s}:{ratio(s):.2f}x" for s in _SEGMENT_ORDER),
        )
    return result
