"""Terminal rendering of figure series (log/linear axes, multi-series).

The benchmark harness prints each regenerated figure as an ASCII chart so a
run's output is visually comparable with the paper's plots without any
plotting dependency.  Marks are single characters per series; collisions
show the later series' mark.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.experiments.results import Series

__all__ = ["ascii_plot", "ascii_timeline"]

_MARKS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        return math.log10(max(value, 1e-300))
    return value


def _format_tick(value: float, log: bool) -> str:
    v = 10.0**value if log else value
    return f"{v:.3g}"


def ascii_plot(
    series_list: Sequence[Series],
    *,
    width: int = 72,
    height: int = 18,
    log_y: bool = False,
    log_x: bool = False,
    title: str = "",
) -> str:
    """Render series as an ASCII chart with a legend.

    Points with non-positive values on a log axis are dropped.  Series
    order fixes mark assignment (first = 'o', second = 'x', ...).
    """
    pts: List[tuple] = []  # (mark_index, x, y) in transformed coordinates
    kept_series: List[Series] = []
    for s in series_list:
        usable = [
            (float(x), float(y))
            for x, y in zip(s.x, s.y)
            if (not log_x or x > 0) and (not log_y or y > 0)
        ]
        if not usable:
            continue
        idx = len(kept_series)
        kept_series.append(s)
        for x, y in usable:
            pts.append((idx, _transform(x, log_x), _transform(y, log_y)))
    if not pts:
        return "(nothing to plot)"

    xs = [p[1] for p in pts]
    ys = [p[2] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, x, y in pts:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = _MARKS[idx % len(_MARKS)]

    y_top = _format_tick(y_hi, log_y)
    y_bot = _format_tick(y_lo, log_y)
    label_w = max(len(y_top), len(y_bot))
    lines: List[str] = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = y_top.rjust(label_w)
        elif r == height - 1:
            label = y_bot.rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row)}")
    x_left = _format_tick(x_lo, log_x)
    x_right = _format_tick(x_hi, log_x)
    lines.append(" " * label_w + " +" + "-" * width)
    lines.append(
        " " * label_w
        + "  "
        + x_left
        + " " * max(1, width - len(x_left) - len(x_right))
        + x_right
    )
    axes = f"(y {'log' if log_y else 'linear'}, x {'log' if log_x else 'linear'})"
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} = {s.label}" for i, s in enumerate(kept_series)
    )
    lines.append(f"{axes}  {legend}")
    return "\n".join(lines)


def ascii_timeline(
    timeline,
    start: float | None = None,
    stop: float | None = None,
    width: int = 72,
) -> str:
    """Render a T/S output timeline as a bar: ``█`` trust, ``░`` suspect.

    Accepts a :class:`repro.qos.timeline.OutputTimeline`; ``start``/``stop``
    default to the timeline's window.
    """
    lo = timeline.start if start is None else max(start, timeline.start)
    hi = timeline.end if stop is None else min(stop, timeline.end)
    if hi <= lo:
        return "(empty window)"
    cells = []
    for i in range(width):
        # Clamp against float round-off pushing an edge past the window.
        a = min(max(lo + (hi - lo) * i / width, lo), hi)
        b = min(max(lo + (hi - lo) * (i + 1) / width, a), hi)
        sub = timeline.restricted(a, b)
        frac = sub.trust_time() / max(sub.duration, 1e-300)
        cells.append("█" if frac > 0.99 else ("░" if frac < 0.01 else "▒"))
    left, right = f"{lo:.2f}s", f"{hi:.2f}s"
    pad = " " * max(1, width - len(left) - len(right))
    return (
        "".join(cells)
        + "\n"
        + left
        + pad
        + right
        + "\n(█ trust, ░ suspect, ▒ mixed)"
    )
