"""Experiment harness: one runner per table/figure of the paper.

Each module exposes ``run(scale=..., seed=...) -> ExperimentResult``; the
registry maps experiment ids (``fig4`` ... ``fig12``, ``table1``,
``shared``, ``shared-empirical``) to runners.  Benchmarks and the CLI are
thin wrappers over these.

``scale`` is the fraction of the original trace sizes to generate (the
paper's WAN trace has 5.8M samples; CI runs use a small fraction, results
keep the same Table I segment structure at any scale).
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.results import Check, ExperimentResult, Series

__all__ = [
    "Check",
    "EXPERIMENTS",
    "ExperimentResult",
    "Series",
    "get_experiment",
    "run_experiment",
]
