"""§V-C: combining multiple applications' QoS on one heartbeat stream.

Runs the Steps 1-4 combination for a representative mix of applications
(an aggressive cluster manager, a moderate group-membership service, a
relaxed monitoring dashboard) and verifies the §V-C1 consequences:

1. each application's detection time is preserved exactly
   (T_D = Δi + Δto);
2. adapted applications' guaranteed mistake-rate bound improves (a more
   frequent heartbeat with a larger margin can only help);
3. the network carries fewer messages than with one detector per
   application.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.results import ExperimentResult
from repro.qos.estimators import NetworkBehavior
from repro.qos.shared import combine
from repro.qos.spec import QoSSpec

__all__ = ["run", "DEFAULT_APPS", "DEFAULT_BEHAVIOR"]

DEFAULT_BEHAVIOR = NetworkBehavior(loss_probability=0.01, delay_variance=0.001)

#: Heterogeneous application mix used by the §V-C experiment.
DEFAULT_APPS: tuple = (
    QoSSpec.from_recurrence_time(2.0, 1800.0, 1.0, name="cluster-manager"),
    QoSSpec.from_recurrence_time(8.0, 600.0, 4.0, name="group-membership"),
    QoSSpec.from_recurrence_time(30.0, 300.0, 15.0, name="dashboard"),
)


def run(
    specs: Sequence[QoSSpec] = DEFAULT_APPS,
    behavior: NetworkBehavior = DEFAULT_BEHAVIOR,
    scale: float | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Regenerate the §V-C shared-configuration analysis.

    ``scale``/``seed`` accepted for harness uniformity (no trace is used).
    """
    shared = combine(list(specs), behavior)

    result = ExperimentResult(
        experiment_id="shared",
        title="Shared FD service: combined (Δi, Δto) for multiple QoS tuples",
        description=(
            "Steps 1-4 of §V-C for a heterogeneous application mix: each "
            "application keeps its exact detection time while the host "
            "sends a single heartbeat stream at Δi_min."
        ),
        params={"behavior": str(behavior), "n_apps": len(specs)},
    )
    rows = []
    for app in shared.applications:
        rows.append(
            {
                "app": app.spec.name,
                "T_D [s]": app.spec.detection_time,
                "dedicated Δi [s]": app.dedicated.interval,
                "dedicated Δto [s]": app.dedicated.safety_margin,
                "shared Δto [s]": app.safety_margin,
                "f dedicated [1/s]": app.dedicated.mistake_rate_bound,
                "f shared [1/s]": app.mistake_rate_bound,
            }
        )
    result.tables["per_application"] = rows
    result.tables["traffic"] = [
        {
            "shared msg rate [1/s]": shared.message_rate,
            "dedicated msg rate [1/s]": shared.dedicated_message_rate,
            "reduction": shared.traffic_reduction,
        }
    ]

    # §V-C1 consequence 1: detection time preserved exactly.
    result.add_check(
        "detection time preserved for every application",
        all(
            np.isclose(shared.interval + app.safety_margin, app.spec.detection_time)
            for app in shared.applications
        ),
    )
    # Consequence 2: adapted applications' guaranteed bound does not worsen.
    result.add_check(
        "mistake-rate bound never worse under sharing",
        all(
            app.mistake_rate_bound <= app.dedicated.mistake_rate_bound * (1 + 1e-9)
            for app in shared.applications
        ),
        ", ".join(
            f"{a.spec.name}: {a.dedicated.mistake_rate_bound:.3g}→{a.mistake_rate_bound:.3g}"
            for a in shared.applications
        ),
    )
    adapted = [
        a
        for a in shared.applications
        if not np.isclose(a.dedicated.interval, shared.interval)
    ]
    result.add_check(
        "strict improvement for adapted applications",
        all(a.mistake_rate_bound < a.dedicated.mistake_rate_bound for a in adapted)
        if adapted
        else False,
        f"{len(adapted)} adapted of {len(shared.applications)}",
    )
    # Consequence 3: traffic reduced vs one detector per application.
    result.add_check(
        "network load reduced vs dedicated detectors",
        shared.message_rate < shared.dedicated_message_rate,
        f"{shared.message_rate:.3g}/s vs {shared.dedicated_message_rate:.3g}/s "
        f"({100 * shared.traffic_reduction:.1f}% saved)",
    )
    return result
