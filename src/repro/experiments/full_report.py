"""One-shot Markdown report over every registered experiment.

``repro-fd report -o report.md --scale 0.05`` regenerates all paper
artifacts at the requested scale and writes a single self-contained
Markdown document: per experiment the parameters, the regenerated tables,
the series (as Markdown tables plus ASCII charts in code fences), and the
shape-check outcomes — a reviewer-friendly snapshot of the reproduction.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import format_series_table, format_table
from repro.experiments.results import ExperimentResult
from repro.runtime.parallel import pmap

__all__ = ["build_report", "render_result_markdown"]


def render_result_markdown(result: ExperimentResult) -> str:
    """One experiment as a Markdown section."""
    lines: List[str] = [f"## {result.experiment_id} — {result.title}", ""]
    lines.append(result.description)
    lines.append("")
    if result.params:
        lines.append(
            "*Parameters:* "
            + ", ".join(f"`{k}={v}`" for k, v in result.params.items())
        )
        lines.append("")
    for name, rows in result.tables.items():
        lines.append(f"**{name}**")
        lines.append("")
        lines.append("```")
        lines.append(format_table(rows))
        lines.append("```")
        lines.append("")
    if result.series:
        lines.append("```")
        lines.append(format_series_table(result.series))
        lines.append("```")
        lines.append("")
        # Chart groups: series sharing a y_label plot together.
        by_y: Dict[str, list] = {}
        for s in result.series:
            by_y.setdefault(s.y_label, []).append(s)
        for y_label, group in by_y.items():
            positive = [float(v) for s in group for v in s.y if float(v) > 0]
            log_y = bool(positive) and max(positive) / min(positive) > 50.0
            lines.append("```")
            lines.append(
                ascii_plot(
                    group,
                    log_y=log_y,
                    title=f"{y_label} vs {group[0].x_label}",
                    width=68,
                    height=14,
                )
            )
            lines.append("```")
            lines.append("")
    if result.checks:
        lines.append("**Paper-shape checks**")
        lines.append("")
        for check in result.checks:
            mark = "✅" if check.passed else "❌"
            detail = f" — {check.detail}" if check.detail else ""
            lines.append(f"- {mark} {check.name}{detail}")
        lines.append("")
    return "\n".join(lines)


def _run_one_experiment(job: Tuple[str, dict]) -> ExperimentResult:
    exp_id, kwargs = job
    return run_experiment(exp_id, **kwargs)


def build_report(
    scale: float | None = None,
    seed: int | None = None,
    jobs: int | None = None,
) -> str:
    """Run every registered experiment and render the full report.

    Registry entries are independent, so they fan out over worker
    processes via :func:`repro.runtime.parallel.pmap` (``jobs`` /
    ``REPRO_JOBS``); sections stay in registry order.
    """
    kwargs: dict = {}
    if scale is not None:
        kwargs["scale"] = scale
    if seed is not None:
        kwargs["seed"] = seed

    sections: List[str] = [
        "# 2W-FD reproduction report",
        "",
        (
            "Regenerated tables and figures for '2W-FD: A Failure Detector "
            "Algorithm with QoS'.  See EXPERIMENTS.md for the paper-vs-"
            "measured discussion and DESIGN.md for the system inventory."
        ),
        "",
    ]
    if kwargs:
        sections.append(
            "*Run options:* " + ", ".join(f"`{k}={v}`" for k, v in kwargs.items())
        )
        sections.append("")

    seen = set()
    exp_ids: List[str] = []
    for exp_id in sorted(EXPERIMENTS):
        runner = EXPERIMENTS[exp_id][0]
        if runner in seen:
            continue
        seen.add(runner)
        exp_ids.append(exp_id)

    n_checks = n_passed = 0
    results = pmap(_run_one_experiment, [(exp_id, kwargs) for exp_id in exp_ids], jobs=jobs)
    for result in results:
        sections.append(render_result_markdown(result))
        n_checks += len(result.checks)
        n_passed += sum(c.passed for c in result.checks)
    sections.insert(
        4, f"**Shape checks: {n_passed}/{n_checks} passed.**\n"
    )
    return "\n".join(sections)
