"""Seed sweeps: statistical robustness of the reproduced results.

A single synthetic trace is one draw from the generator; mistake counts at
any operating point carry Poisson-scale noise.  :func:`sweep_seeds` runs an
experiment across several seeds and aggregates:

- per-check pass rates (an *exact* claim — Eq. 13, monotonicity of P_A —
  must pass on every seed; a *statistical* one — strict orderings of noisy
  counts — is expected to pass on most),
- per-series point statistics (mean/min/max of each y at each x), which is
  how EXPERIMENTS.md distinguishes robust orderings from seed-dependent
  ones (e.g. φ vs 2W-FD at the aggressive end).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.registry import run_experiment
from repro.experiments.results import ExperimentResult
from repro.runtime.parallel import pmap

__all__ = ["SeedSweepResult", "sweep_seeds"]


@dataclass(frozen=True)
class SeriesStats:
    """Across-seed statistics of one series point."""

    label: str
    x: float
    mean: float
    minimum: float
    maximum: float
    n: int


@dataclass
class SeedSweepResult:
    """Aggregate of one experiment across seeds."""

    experiment_id: str
    seeds: Tuple[int, ...]
    results: List[ExperimentResult]
    check_passes: Dict[str, int] = field(default_factory=dict)

    @property
    def n_runs(self) -> int:
        return len(self.results)

    def pass_rate(self, check_name: str) -> float:
        """Fraction of seeds on which the named check passed."""
        if check_name not in self.check_passes:
            raise KeyError(
                f"unknown check {check_name!r}; known: "
                f"{sorted(self.check_passes)}"
            )
        return self.check_passes[check_name] / self.n_runs

    def checks_always_passing(self) -> Tuple[str, ...]:
        return tuple(
            sorted(k for k, v in self.check_passes.items() if v == self.n_runs)
        )

    def checks_sometimes_failing(self) -> Tuple[str, ...]:
        return tuple(
            sorted(k for k, v in self.check_passes.items() if v < self.n_runs)
        )

    def series_stats(self, label: str) -> List[SeriesStats]:
        """Across-seed stats of the series named ``label``, per x value."""
        by_x: Dict[float, List[float]] = {}
        for result in self.results:
            try:
                series = result.series_by_label(label)
            except KeyError:
                continue
            for x, y in zip(series.x, series.y):
                by_x.setdefault(float(x), []).append(float(y))
        if not by_x:
            raise KeyError(f"series {label!r} appears in no run")
        return [
            SeriesStats(
                label=label,
                x=x,
                mean=float(np.mean(ys)),
                minimum=float(np.min(ys)),
                maximum=float(np.max(ys)),
                n=len(ys),
            )
            for x, ys in sorted(by_x.items())
        ]


def _run_one_seed(job: Tuple[str, int, dict]) -> ExperimentResult:
    experiment_id, seed, kwargs = job
    return run_experiment(experiment_id, seed=seed, **kwargs)


def sweep_seeds(
    experiment_id: str,
    seeds: Sequence[int],
    *,
    jobs: int | None = None,
    **kwargs: object,
) -> SeedSweepResult:
    """Run ``experiment_id`` once per seed and aggregate the outcomes.

    Seeds are independent replays, so they fan out over worker processes
    via :func:`repro.runtime.parallel.pmap` (``jobs`` / ``REPRO_JOBS``);
    results keep seed order and match the serial run exactly.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    results: List[ExperimentResult] = pmap(
        _run_one_seed,
        [(experiment_id, int(seed), dict(kwargs)) for seed in seeds],
        jobs=jobs,
    )
    passes: Dict[str, int] = {}
    for result in results:
        for check in result.checks:
            passes[check.name] = passes.get(check.name, 0) + int(check.passed)
    return SeedSweepResult(
        experiment_id=experiment_id,
        seeds=tuple(int(s) for s in seeds),
        results=results,
        check_passes=passes,
    )
