"""Experiment registry: id → runner.

Every table and figure in the paper's evaluation maps to one entry; the
CLI (``repro-fd run <id>``) and the benchmark suite dispatch through here.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (
    adaptive_ablation,
    fig04_05,
    fig06_07,
    fig08_subsamples,
    fig09_intersection,
    fig10_11_12,
    shared_empirical,
    shared_service,
)
from repro.experiments.results import ExperimentResult

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

#: id -> (runner, description).
EXPERIMENTS: Dict[str, tuple] = {
    "fig4": (fig04_05.run, "2W-FD window sizes: T_MR vs T_D (WAN)"),
    "fig5": (fig04_05.run, "2W-FD window sizes: P_A vs T_D (WAN)"),
    "fig6": (fig06_07.run, "detector comparison: T_MR vs T_D (WAN)"),
    "fig7": (fig06_07.run, "detector comparison: P_A vs T_D (WAN)"),
    "fig6-lan": (
        lambda **kw: fig06_07.run(scenario="lan", **kw),
        "detector comparison on the LAN trace (paper: 'same behavior')",
    ),
    "table1": (fig08_subsamples.run, "Table I sub-sample boundaries"),
    "fig8": (fig08_subsamples.run, "mistakes per sub-period at T_D = 215 ms"),
    "fig9": (fig09_intersection.run, "mistake-set intersection (Eq. 13)"),
    "fig10": (fig10_11_12.run, "Δi, Δto vs T_D^U"),
    "fig11": (fig10_11_12.run, "Δi, Δto vs mistake-recurrence bound"),
    "fig12": (fig10_11_12.run, "Δi, Δto vs T_M^U"),
    "shared": (shared_service.run, "§V-C shared-service combination"),
    "shared-empirical": (
        shared_empirical.run,
        "§VI extension: empirical shared-vs-dedicated replay",
    ),
    "adaptive": (
        adaptive_ablation.run,
        "§V-A extension: static vs adaptive safety margin",
    ),
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """The runner for ``experiment_id`` (figures sharing a runner collapse)."""
    try:
        return EXPERIMENTS[experiment_id][0]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}"
        ) from None


def run_experiment(experiment_id: str, **kwargs: object) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id)(**kwargs)
