"""§VI extension: *empirical* shared-vs-dedicated comparison.

The paper names "an empirical analysis on resulting QoS of applications
using the service as well as a study on how network traffic is reduced" as
future work.  This experiment performs it by replay: traces are generated
over the same link at each configured heartbeat interval, every application
is replayed both dedicated and shared, and measured QoS plus message counts
are compared (see :mod:`repro.service.analysis`).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.experiments.results import ExperimentResult
from repro.experiments.shared_service import DEFAULT_APPS
from repro.net.delays import LogNormalDelay
from repro.net.link import Link
from repro.net.loss import BernoulliLoss
from repro.qos.spec import QoSSpec
from repro.service.analysis import compare_shared_vs_dedicated
from repro.service.application import Application

__all__ = ["run", "DEFAULT_LINK"]

#: WAN-like link for the empirical run (~120 ms delays, 1% loss).
DEFAULT_LINK = Link(
    delay_model=LogNormalDelay(log_mu=math.log(0.118), log_sigma=0.1),
    loss_model=BernoulliLoss(0.01),
)


def run(
    specs: Sequence[QoSSpec] = DEFAULT_APPS,
    link: Link = DEFAULT_LINK,
    duration: float = 7200.0,
    scale: float | None = None,
    seed: int = 7,
) -> ExperimentResult:
    """Run the empirical shared-service experiment.

    ``scale`` (when given) multiplies the experiment duration, mirroring the
    trace-size knob of the figure experiments.
    """
    if scale is not None:
        duration = max(600.0, duration * scale * 50)
    apps = [Application(s.name, s) for s in specs]
    comparison = compare_shared_vs_dedicated(
        apps, link, duration=duration, seed=seed
    )

    result = ExperimentResult(
        experiment_id="shared-empirical",
        title="Empirical shared vs dedicated failure detection (replay)",
        description=(
            "Each application replayed with its dedicated (Δi_j, Δto_j) "
            "configuration and with the shared (Δi_min, adapted Δto'_j) one "
            "over traces from the same link; measured QoS and traffic."
        ),
        params={"duration": duration, "seed": seed, "link": repr(link)},
    )
    rows = []
    for app in comparison.applications:
        rows.append(
            {
                "app": app.name,
                "T_D config [s]": app.shared_interval + app.shared_margin,
                "ded. T_MR [1/s]": app.dedicated_metrics.mistake_rate,
                "shr. T_MR [1/s]": app.shared_metrics.mistake_rate,
                "ded. T_M [s]": app.dedicated_metrics.mistake_duration,
                "shr. T_M [s]": app.shared_metrics.mistake_duration,
                "ded. P_A": app.dedicated_metrics.query_accuracy,
                "shr. P_A": app.shared_metrics.query_accuracy,
            }
        )
    result.tables["per_application"] = rows
    result.tables["traffic"] = [
        {
            "shared msgs": comparison.shared_messages_sent,
            "dedicated msgs": comparison.dedicated_messages_sent,
            "measured reduction": comparison.measured_traffic_reduction,
            "predicted reduction": comparison.configuration.traffic_reduction,
        }
    ]

    result.add_check(
        "configured detection time preserved per application",
        all(a.detection_time_preserved for a in comparison.applications),
    )
    adapted = [
        a
        for a in comparison.applications
        if not np.isclose(a.dedicated_interval, a.shared_interval)
    ]
    result.add_check(
        "measured mistake rate no worse under sharing (adapted apps)",
        all(
            a.shared_metrics.mistake_rate
            <= a.dedicated_metrics.mistake_rate + 1e-12
            for a in adapted
        ),
        ", ".join(
            f"{a.name}: {a.dedicated_metrics.mistake_rate:.3g}→"
            f"{a.shared_metrics.mistake_rate:.3g}"
            for a in adapted
        ),
    )
    result.add_check(
        "measured query accuracy no worse under sharing (adapted apps)",
        all(
            a.shared_metrics.query_accuracy
            >= a.dedicated_metrics.query_accuracy - 1e-6
            for a in adapted
        ),
    )
    result.add_check(
        "measured traffic reduced",
        comparison.shared_messages_sent < comparison.dedicated_messages_sent,
        f"{comparison.shared_messages_sent} vs {comparison.dedicated_messages_sent} "
        f"messages ({100 * comparison.measured_traffic_reduction:.1f}% saved)",
    )
    result.add_check(
        "measured reduction matches the 1/Δi prediction (±10%)",
        bool(
            np.isclose(
                comparison.measured_traffic_reduction,
                comparison.configuration.traffic_reduction,
                atol=0.1,
            )
        ),
    )
    return result
