"""Extension experiment: static vs adaptive safety margin (§V-A remark).

Runs the adaptive-margin 2W-FD (periodic (p_L, V(D)) re-estimation, margin
re-derived from the Eq. 16 accuracy bound) over the regime-changing WAN
trace, then calibrates a *static* 2W-FD to the same mean detection time and
compares mistake counts.  Reported series: the margin trajectory per Table I
regime — where the adaptive policy chose to spend its detection-time budget.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import DEFAULT_SCALE, DEFAULT_SEED, wan_trace
from repro.experiments.results import ExperimentResult, Series
from repro.replay.adaptive import adaptive_margin_deadlines
from repro.replay.detection import measured_detection_time
from repro.replay.engine import replay_detector
from repro.replay.kernels import MultiWindowKernel
from repro.replay.metrics_kernel import replay_metrics
from repro.replay.sweep import calibrate_to_detection_time
from repro.traces.segments import WAN_SEGMENTS, segment_slices

__all__ = ["run", "DEFAULT_BOUND"]

#: Guaranteed accuracy target: at most one mistake per 10 minutes.
DEFAULT_BOUND: float = 1.0 / 600.0


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    bound: float = DEFAULT_BOUND,
    update_period: float = 60.0,
) -> ExperimentResult:
    """Run the static-vs-adaptive ablation."""
    trace = wan_trace(scale, seed)
    adaptive = adaptive_margin_deadlines(
        trace, bound, update_period=update_period
    )
    a_metrics = replay_metrics(
        adaptive.t, adaptive.deadlines, adaptive.end_time, collect_gaps=False
    ).metrics

    kernel = MultiWindowKernel(trace, window_sizes=(1, 1000))
    mean_td = measured_detection_time(
        adaptive.t, adaptive.deadlines, kernel.seq, trace.interval,
        trace.send_offset_estimate(),
    )
    static = replay_detector(
        kernel, trace, calibrate_to_detection_time(kernel, trace, mean_td),
        collect_gaps=False,
    ).metrics

    result = ExperimentResult(
        experiment_id="adaptive",
        title="Extension: static vs adaptive safety margin at equal mean T_D",
        description=(
            "The §V-A closing remark implemented: periodic (p_L, V(D)) "
            "re-estimation drives the smallest margin meeting the Eq. 16 "
            "mistake-rate bound; compared against a statically calibrated "
            "2W-FD at the same mean detection time."
        ),
        params={
            "scale": scale,
            "seed": seed,
            "bound": bound,
            "update_period": update_period,
            "mean_td": mean_td,
            "n_updates": adaptive.n_updates,
        },
    )
    result.tables["comparison"] = [
        {
            "policy": "static",
            "mistakes": static.n_mistakes,
            "T_MR [1/s]": static.mistake_rate,
            "P_A": static.query_accuracy,
        },
        {
            "policy": "adaptive",
            "mistakes": a_metrics.n_mistakes,
            "T_MR [1/s]": a_metrics.mistake_rate,
            "P_A": a_metrics.query_accuracy,
        },
    ]

    # Margin trajectory per Table I regime.
    accepted_pos = np.flatnonzero(trace.accepted_mask())
    slices = segment_slices(WAN_SEGMENTS, n_total=trace.n_received)
    names, means = [], []
    for name, (start, stop) in slices.items():
        mask = (accepted_pos >= start) & (accepted_pos < stop)
        if mask.any():
            names.append(name)
            means.append(float(adaptive.margins[mask].mean()))
    result.series.append(
        Series(
            "mean adaptive margin", "segment index", "Δto [s]",
            list(range(len(names))), means, meta={"segments": names},
        )
    )

    result.add_check(
        "margin stretches in the worm period vs stable1",
        means[names.index("worm")] > means[names.index("stable1")],
        ", ".join(f"{n}={m * 1000:.0f}ms" for n, m in zip(names, means)),
    )
    result.add_check(
        "adaptive beats static at equal mean T_D (within counting noise)",
        a_metrics.n_mistakes
        <= static.n_mistakes + 3.0 * max(static.n_mistakes, 1) ** 0.5,
        f"static={static.n_mistakes}, adaptive={a_metrics.n_mistakes}",
    )
    result.add_check(
        "reconfigurations actually happened",
        adaptive.n_updates >= 3,
        f"{adaptive.n_updates} updates",
    )
    return result
