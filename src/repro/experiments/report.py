"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports;
these helpers format them as aligned ASCII tables so diffs against
EXPERIMENTS.md stay readable.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from repro.experiments.results import ExperimentResult, Series

__all__ = ["format_table", "format_series_table", "render_result"]


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-4:
            return f"{value:.4g}"
        return f"{value:.6g}"
    return str(value)


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return "(empty table)"
    columns = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) for i, col in enumerate(columns)
    ]
    header = " | ".join(c.rjust(w) for c, w in zip(columns, widths))
    sep = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in cells
    )
    return f"{header}\n{sep}\n{body}"


def format_series_table(series_list: Sequence[Series]) -> str:
    """Render several series sharing an x-axis as one wide table.

    Rows are the union of x values; a series without a point at some x
    shows a blank (e.g. φ's truncated conservative range).
    """
    if not series_list:
        return "(no series)"
    xs: List[float] = sorted({float(x) for s in series_list for x in s.x})
    rows = []
    for x in xs:
        row = {series_list[0].x_label: x}
        for s in series_list:
            lookup = {float(a): b for a, b in zip(s.x, s.y)}
            row[s.label] = lookup.get(x, "")
        rows.append(row)
    return format_table(rows)


def render_result(result: ExperimentResult) -> str:
    """Full plain-text report for one experiment."""
    lines = [
        f"=== {result.experiment_id}: {result.title} ===",
        result.description,
        "",
    ]
    if result.params:
        lines.append(
            "parameters: "
            + ", ".join(f"{k}={_fmt(v)}" for k, v in result.params.items())
        )
        lines.append("")
    if result.series:
        lines.append(format_series_table(result.series))
        lines.append("")
    for name, rows in result.tables.items():
        lines.append(f"-- {name} --")
        lines.append(format_table(rows))
        lines.append("")
    if result.checks:
        lines.append("paper-shape checks:")
        lines.extend(f"  {check}" for check in result.checks)
    return "\n".join(lines)
