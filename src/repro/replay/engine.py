"""Uniform replay entry points.

Two interchangeable ways to run a detector over a recorded trace:

- :func:`replay_online` feeds an *online* detector object heartbeat by
  heartbeat (exactly how the live simulator and service drive it) and
  collects its transition log and the deadline it held after each accepted
  message;
- :func:`replay_detector` uses the vectorized kernels and the shared
  metrics kernel — thousands of times faster on long traces, bit-compatible
  in semantics (the test suite cross-validates the two paths).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import HeartbeatFailureDetector
from repro.qos.metrics import QoSMetrics, compute_metrics
from repro.qos.timeline import OutputTimeline
from repro.replay.detection import measured_detection_time
from repro.replay.kernels import DeadlineKernel, make_kernel
from repro.replay.metrics_kernel import ReplayOutcome, replay_metrics
from repro.traces.trace import HeartbeatTrace

__all__ = ["OnlineReplayResult", "VectorReplayResult", "replay_online", "replay_detector"]


@dataclass(frozen=True)
class OnlineReplayResult:
    """Everything an online replay produces."""

    timeline: OutputTimeline
    metrics: QoSMetrics
    accepted_seq: np.ndarray
    accepted_arrival: np.ndarray
    deadlines: np.ndarray
    detection_time: float


@dataclass(frozen=True)
class VectorReplayResult:
    """Everything a vectorized replay produces."""

    outcome: ReplayOutcome
    deadlines: np.ndarray
    detection_time: float

    @property
    def metrics(self) -> QoSMetrics:
        return self.outcome.metrics


def replay_online(
    detector: HeartbeatFailureDetector, trace: HeartbeatTrace
) -> OnlineReplayResult:
    """Drive an online detector over every received heartbeat of ``trace``.

    The detector sees messages in arrival order, including stale/duplicate
    ones (which it must ignore) — the same stream a UDP socket would give
    it.  Use only on small/medium traces; for paper-scale sweeps use
    :func:`replay_detector`.
    """
    if detector.largest_seq:
        raise ValueError("replay_online requires a freshly constructed detector")
    seqs: list[int] = []
    arrivals: list[float] = []
    deadlines: list[float] = []
    for seq, arrival in trace.iter_heartbeats():
        if detector.receive(seq, arrival):
            seqs.append(seq)
            arrivals.append(arrival)
            deadlines.append(detector.suspicion_deadline)
    transitions = detector.finalize(trace.end_time)
    if not arrivals:
        raise ValueError("the detector accepted no heartbeats")
    t = np.asarray(arrivals)
    d = np.asarray(deadlines)
    seq_arr = np.asarray(seqs, dtype=np.int64)
    timeline = OutputTimeline.from_transitions(
        transitions, start=float(t[0]), end=trace.end_time
    )
    return OnlineReplayResult(
        timeline=timeline,
        metrics=compute_metrics(timeline),
        accepted_seq=seq_arr,
        accepted_arrival=t,
        deadlines=d,
        detection_time=measured_detection_time(
            t, d, seq_arr, trace.interval, trace.send_offset_estimate()
        ),
    )


def replay_detector(
    name_or_kernel: str | DeadlineKernel,
    trace: HeartbeatTrace,
    param: float | None = None,
    *,
    collect_gaps: bool = True,
    **kernel_kwargs: object,
) -> VectorReplayResult:
    """Vectorized replay of detector ``name`` at one parameter value.

    ``name_or_kernel`` may be a registry name (a kernel is built, passing
    ``kernel_kwargs``) or an already-built kernel (reused across parameter
    values — the cheap path sweeps rely on).
    """
    if isinstance(name_or_kernel, DeadlineKernel):
        kernel = name_or_kernel
        if kernel_kwargs:
            raise ValueError("kernel_kwargs are only valid with a detector name")
    else:
        kernel = make_kernel(name_or_kernel, trace, **kernel_kwargs)
    d = kernel.deadlines(param) if kernel.param_name else kernel.deadlines()
    outcome = replay_metrics(kernel.t, d, kernel.end_time, collect_gaps=collect_gaps)
    return VectorReplayResult(
        outcome=outcome,
        deadlines=d,
        detection_time=measured_detection_time(
            kernel.t, d, kernel.seq, trace.interval, trace.send_offset_estimate()
        ),
    )
