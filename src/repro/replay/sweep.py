"""Parameter sweeps → QoS curves, and calibration to a target T_D.

The paper's central figures plot accuracy metrics against detection time,
produced by varying each algorithm's tuning parameter (Δto for the Chen
family, the threshold for the accruals; Bertier contributes a single
point).  :func:`sweep` builds one such curve; :func:`calibrate_to_detection_time`
finds the parameter value that realizes a given measured T_D (used by the
fixed-T_D experiments, Fig. 8-9, at T_D = 215 ms).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.replay.detection import measured_detection_time
from repro.replay.kernels import DeadlineKernel
from repro.replay.metrics_kernel import replay_metrics
from repro.traces.trace import HeartbeatTrace

__all__ = ["QoSCurve", "sweep", "bertier_point", "calibrate_to_detection_time"]


@dataclass(frozen=True)
class QoSCurve:
    """One detector's accuracy-vs-detection-time curve.

    Points are sorted by detection time.  Sweep values whose detector can
    never suspect (infinite deadlines — φ's saturated threshold) are
    dropped, which is exactly why the φ curve "stops early" in the paper's
    figures.
    """

    label: str
    detector: str
    param_name: str | None
    params: np.ndarray
    detection_time: np.ndarray
    mistake_rate: np.ndarray
    query_accuracy: np.ndarray
    mistake_duration: np.ndarray
    n_mistakes: np.ndarray
    #: When the curve was sampled at a shared detection-time grid, the grid
    #: values realized per point (lines up points across detectors even
    #: though measured T_D differs in the 4th decimal).  None for raw sweeps.
    targets: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.params)

    def point(self, i: int) -> dict:
        """The i-th curve point as a plain dict (for reports)."""
        return {
            "param": float(self.params[i]),
            "detection_time": float(self.detection_time[i]),
            "mistake_rate": float(self.mistake_rate[i]),
            "query_accuracy": float(self.query_accuracy[i]),
            "mistake_duration": float(self.mistake_duration[i]),
            "n_mistakes": int(self.n_mistakes[i]),
        }

    def as_rows(self) -> list[dict]:
        return [self.point(i) for i in range(len(self))]


def sweep(
    kernel: DeadlineKernel,
    trace: HeartbeatTrace,
    params: Sequence[float],
    label: str | None = None,
) -> QoSCurve:
    """Replay ``kernel`` at every parameter value, producing a QoS curve."""
    if kernel.param_name is None:
        raise ValueError(
            f"detector {kernel.name!r} has no tuning parameter; use bertier_point()"
        )
    offset = trace.send_offset_estimate()
    rows = []
    for p in params:
        d = kernel.deadlines(float(p))
        td = measured_detection_time(kernel.t, d, kernel.seq, kernel.interval, offset)
        if math.isinf(td):
            continue  # un-plottable point (detector can never suspect)
        outcome = replay_metrics(kernel.t, d, kernel.end_time, collect_gaps=False)
        m = outcome.metrics
        rows.append(
            (float(p), td, m.mistake_rate, m.query_accuracy, m.mistake_duration, m.n_mistakes)
        )
    if not rows:
        raise ValueError("no usable sweep points (all produced infinite detection time)")
    rows.sort(key=lambda r: r[1])
    cols = list(zip(*rows))
    return QoSCurve(
        label=label or kernel.name,
        detector=kernel.name,
        param_name=kernel.param_name,
        params=np.asarray(cols[0]),
        detection_time=np.asarray(cols[1]),
        mistake_rate=np.asarray(cols[2]),
        query_accuracy=np.asarray(cols[3]),
        mistake_duration=np.asarray(cols[4]),
        n_mistakes=np.asarray(cols[5], dtype=np.int64),
    )


def bertier_point(
    kernel: DeadlineKernel, trace: HeartbeatTrace, label: str = "bertier"
) -> QoSCurve:
    """The single (T_D, accuracy) point of a non-tunable detector."""
    d = kernel.deadlines()
    td = measured_detection_time(
        kernel.t, d, kernel.seq, kernel.interval, trace.send_offset_estimate()
    )
    m = replay_metrics(kernel.t, d, kernel.end_time, collect_gaps=False).metrics
    return QoSCurve(
        label=label,
        detector=kernel.name,
        param_name=None,
        params=np.asarray([math.nan]),
        detection_time=np.asarray([td]),
        mistake_rate=np.asarray([m.mistake_rate]),
        query_accuracy=np.asarray([m.query_accuracy]),
        mistake_duration=np.asarray([m.mistake_duration]),
        n_mistakes=np.asarray([m.n_mistakes], dtype=np.int64),
    )


def calibrate_to_detection_time(
    kernel: DeadlineKernel,
    trace: HeartbeatTrace,
    target_td: float,
    *,
    param_lo: float = 1e-6,
    param_hi: float | None = None,
    tol: float = 1e-9,
    max_iters: int = 100,
) -> float:
    """Find the tuning parameter realizing measured T_D = ``target_td``.

    For the Chen family the measured T_D is exactly linear in Δto, so the
    answer is closed-form; for the accruals (monotone but nonlinear in the
    threshold) bisection is used.

    Raises :class:`ValueError` if the target is unreachable — below the
    detector's minimum achievable T_D, or (for φ) beyond the threshold
    saturation point.
    """
    if kernel.param_name is None:
        raise ValueError(f"detector {kernel.name!r} is not tunable")
    offset = trace.send_offset_estimate()
    sends = offset + kernel.interval * kernel.seq.astype(np.float64)

    # Kernels with expensive per-parameter deadlines may provide their own
    # closed-form calibration (e.g. the histogram kernel's order-statistic
    # path, which makes a whole T_D grid cost one sliding sort).
    custom = getattr(kernel, "calibrate_param_for_td", None)
    if custom is not None:
        return float(custom(target_td, sends))

    if kernel.linear_base is not None:
        base_td = float((kernel.linear_base - sends).mean())
        param = target_td - base_td
        if param < 0:
            raise ValueError(
                f"target T_D {target_td:.4g}s is below the minimum achievable "
                f"{base_td:.4g}s for {kernel.name!r}"
            )
        return param

    def td_at(p: float) -> float:
        return measured_detection_time(kernel.t, kernel.deadlines(p), kernel.seq, kernel.interval, offset)

    lo = param_lo
    td_lo = td_at(lo)
    if td_lo > target_td:
        raise ValueError(
            f"target T_D {target_td:.4g}s is below the minimum achievable "
            f"{td_lo:.4g}s for {kernel.name!r}"
        )
    # The parameter domain may be bounded above (the ED threshold lives in
    # (0, 1)); expand toward, but never onto, the supremum.
    sup = kernel.param_max
    cap = sup if math.isinf(sup) else math.nextafter(sup, 0.0)
    hi = param_hi if param_hi is not None else min(cap, max(1.0, 2.0 * lo))
    td_hi = td_at(hi)
    expansions = 0
    while not math.isinf(td_hi) and td_hi < target_td:
        if hi >= cap:
            raise ValueError(
                f"target T_D {target_td:.4g}s unreachable for {kernel.name!r}: "
                f"T_D at the parameter supremum is {td_hi:.4g}s"
            )
        lo, td_lo = hi, td_hi
        hi = min(cap, 2.0 * hi) if math.isinf(sup) else min(cap, 0.5 * (hi + sup))
        td_hi = td_at(hi)
        expansions += 1
        if expansions > 200:
            raise ValueError(
                f"target T_D {target_td:.4g}s unreachable for {kernel.name!r}"
            )
    if math.isinf(td_hi):
        # Shrink hi back inside the finite region before bisecting.
        finite_hi = hi
        for _ in range(200):
            finite_hi = 0.5 * (lo + finite_hi)
            if not math.isinf(td_at(finite_hi)):
                break
        else:
            raise ValueError(f"no finite-T_D parameter found for {kernel.name!r}")
        if td_at(finite_hi) < target_td:
            raise ValueError(
                f"target T_D {target_td:.4g}s unreachable for {kernel.name!r}: "
                f"the threshold saturates first"
            )
        hi = finite_hi
    for _ in range(max_iters):
        mid = 0.5 * (lo + hi)
        td_mid = td_at(mid)
        if math.isinf(td_mid) or td_mid > target_td:
            hi = mid
        else:
            lo = mid
        if hi - lo < tol:
            break
    return 0.5 * (lo + hi)
