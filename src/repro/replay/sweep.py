"""Parameter sweeps → QoS curves, and calibration to a target T_D.

The paper's central figures plot accuracy metrics against detection time,
produced by varying each algorithm's tuning parameter (Δto for the Chen
family, the threshold for the accruals; Bertier contributes a single
point).  :func:`sweep` builds one such curve; :func:`calibrate_to_detection_time`
finds the parameter value that realizes a given measured T_D (used by the
fixed-T_D experiments, Fig. 8-9, at T_D = 215 ms).

Execution modes (see ``docs/performance.md``):

- ``mode="batch"`` (default): all parameters are replayed through
  :meth:`~repro.replay.kernels.DeadlineKernel.deadlines_batch` and
  :func:`~repro.replay.metrics_kernel.replay_metrics_batch` in row chunks.
  Results are **bitwise identical** to the per-point path.
- ``mode="points"``: the legacy one-parameter-at-a-time loop (the
  cross-validation reference and the serial benchmark baseline).
- ``mode="fused"``: the O(log m)-per-point closed-form evaluator for
  linear kernels (:mod:`repro.replay.fused`); falls back to ``batch`` for
  kernels without a finite linear base.  Float metrics agree with the
  elementwise replay to rounding, mistake counts exactly (away from
  breakpoint ties).

:func:`sweep_many` fans a set of detector sweeps out over worker processes
via :func:`repro.runtime.parallel.pmap`.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.obs.metrics import log_buckets
from repro.obs.runtime import Observability, default_observability
from repro.replay.detection import (
    measured_detection_time,
    measured_detection_times_batch,
)
from repro.replay.kernels import DeadlineKernel, make_kernel
from repro.replay.metrics_kernel import replay_metrics, replay_metrics_batch
from repro.traces.trace import HeartbeatTrace

__all__ = [
    "QoSCurve",
    "SweepSpec",
    "sweep",
    "sweep_many",
    "bertier_point",
    "calibrate_to_detection_time",
]

#: Modes accepted by :func:`sweep`.
SWEEP_MODES = ("batch", "points", "fused")

#: Default number of parameter rows replayed per batched chunk.  Small
#: chunks keep the (rows × m) workspaces inside the cache hierarchy; the
#: element budget caps memory for multi-million-sample traces.
_CHUNK_ROWS = 8
_CHUNK_ELEMENT_BUDGET = 1 << 22


@dataclass(frozen=True)
class QoSCurve:
    """One detector's accuracy-vs-detection-time curve.

    Points are sorted by detection time.  Sweep values whose detector can
    never suspect (infinite deadlines — φ's saturated threshold) are
    dropped, which is exactly why the φ curve "stops early" in the paper's
    figures.
    """

    label: str
    detector: str
    param_name: str | None
    params: np.ndarray
    detection_time: np.ndarray
    mistake_rate: np.ndarray
    query_accuracy: np.ndarray
    mistake_duration: np.ndarray
    n_mistakes: np.ndarray
    #: When the curve was sampled at a shared detection-time grid, the grid
    #: values realized per point (lines up points across detectors even
    #: though measured T_D differs in the 4th decimal).  None for raw sweeps.
    targets: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.params)

    def point(self, i: int) -> dict:
        """The i-th curve point as a plain dict (for reports)."""
        return {
            "param": float(self.params[i]),
            "detection_time": float(self.detection_time[i]),
            "mistake_rate": float(self.mistake_rate[i]),
            "query_accuracy": float(self.query_accuracy[i]),
            "mistake_duration": float(self.mistake_duration[i]),
            "n_mistakes": int(self.n_mistakes[i]),
        }

    def as_rows(self) -> list[dict]:
        return [self.point(i) for i in range(len(self))]


def _curve_from_columns(
    kernel: DeadlineKernel,
    label: str | None,
    params: np.ndarray,
    td: np.ndarray,
    mistake_rate: np.ndarray,
    query_accuracy: np.ndarray,
    mistake_duration: np.ndarray,
    n_mistakes: np.ndarray,
) -> QoSCurve:
    """Sort by detection time (stable, matching the per-point path) and wrap."""
    if len(params) == 0:
        raise ValueError("no usable sweep points (all produced infinite detection time)")
    order = np.argsort(td, kind="stable")
    return QoSCurve(
        label=label or kernel.name,
        detector=kernel.name,
        param_name=kernel.param_name,
        params=np.asarray(params)[order],
        detection_time=np.asarray(td)[order],
        mistake_rate=np.asarray(mistake_rate)[order],
        query_accuracy=np.asarray(query_accuracy)[order],
        mistake_duration=np.asarray(mistake_duration)[order],
        n_mistakes=np.asarray(n_mistakes, dtype=np.int64)[order],
    )


def _sweep_points(
    kernel: DeadlineKernel,
    trace: HeartbeatTrace,
    params: Sequence[float],
    label: str | None,
) -> QoSCurve:
    """The legacy per-point loop: one deadline array + replay per parameter."""
    offset = trace.send_offset_estimate()
    rows = []
    for p in params:
        d = kernel.deadlines(float(p))
        td = measured_detection_time(kernel.t, d, kernel.seq, kernel.interval, offset)
        if math.isinf(td):
            continue  # un-plottable point (detector can never suspect)
        outcome = replay_metrics(kernel.t, d, kernel.end_time, collect_gaps=False)
        m = outcome.metrics
        rows.append(
            (float(p), td, m.mistake_rate, m.query_accuracy, m.mistake_duration, m.n_mistakes)
        )
    if not rows:
        raise ValueError("no usable sweep points (all produced infinite detection time)")
    cols = list(zip(*rows))
    return _curve_from_columns(
        kernel,
        label,
        np.asarray(cols[0]),
        np.asarray(cols[1]),
        np.asarray(cols[2]),
        np.asarray(cols[3]),
        np.asarray(cols[4]),
        np.asarray(cols[5], dtype=np.int64),
    )


def _sweep_batch(
    kernel: DeadlineKernel,
    trace: HeartbeatTrace,
    params: np.ndarray,
    label: str | None,
) -> QoSCurve:
    """Chunked batched replay; bitwise identical to the per-point loop."""
    offset = trace.send_offset_estimate()
    m = len(kernel.t)
    chunk = max(1, min(_CHUNK_ROWS, _CHUNK_ELEMENT_BUDGET // max(m, 1)))
    kept: list[np.ndarray] = []
    cols: list[Tuple[np.ndarray, ...]] = []
    for lo in range(0, len(params), chunk):
        chunk_params = params[lo : lo + chunk]
        D = kernel.deadlines_batch(chunk_params)
        td = measured_detection_times_batch(D, kernel.seq, kernel.interval, offset)
        finite = np.isfinite(td)
        if not finite.any():
            continue
        bm = replay_metrics_batch(kernel.t, D[finite], kernel.end_time)
        kept.append(chunk_params[finite])
        cols.append(
            (
                td[finite],
                bm.mistake_rate,
                bm.query_accuracy,
                bm.mistake_duration,
                bm.n_mistakes,
            )
        )
    if not kept:
        raise ValueError("no usable sweep points (all produced infinite detection time)")
    return _curve_from_columns(
        kernel,
        label,
        np.concatenate(kept),
        np.concatenate([c[0] for c in cols]),
        np.concatenate([c[1] for c in cols]),
        np.concatenate([c[2] for c in cols]),
        np.concatenate([c[3] for c in cols]),
        np.concatenate([c[4] for c in cols]),
    )


def _record_sweep(
    obs: Observability, kernel: DeadlineKernel, mode: str, n_points: int,
    duration: float,
) -> None:
    """Fold one finished sweep into the process-default registry."""
    reg = obs.registry
    reg.counter(
        "repro_sweeps_total",
        "Parameter sweeps executed by the replay engine.",
        ("detector", "mode"),
    ).labels(kernel.name, mode).inc()
    reg.counter(
        "repro_sweep_points_total",
        "Usable sweep points produced (finite detection time).",
        ("detector", "mode"),
    ).labels(kernel.name, mode).inc(n_points)
    reg.histogram(
        "repro_sweep_seconds",
        "Wall-clock duration of one sweep() call.",
        buckets=log_buckets(1e-4, 100.0, 3),
    ).observe(duration)


def sweep(
    kernel: DeadlineKernel,
    trace: HeartbeatTrace,
    params: Sequence[float],
    label: str | None = None,
    *,
    mode: str = "batch",
) -> QoSCurve:
    """Replay ``kernel`` at every parameter value, producing a QoS curve.

    When a process-default observability bundle is installed
    (:func:`repro.obs.runtime.set_default_observability`), each call
    records sweep count, usable points, and duration — one attribute read
    when observability is off.
    """
    obs = default_observability()
    t0 = _time.perf_counter() if obs is not None else 0.0
    curve = _sweep_dispatch(kernel, trace, params, label, mode)
    if obs is not None:
        _record_sweep(obs, kernel, mode, len(curve), _time.perf_counter() - t0)
    return curve


def _sweep_dispatch(
    kernel: DeadlineKernel,
    trace: HeartbeatTrace,
    params: Sequence[float],
    label: str | None,
    mode: str,
) -> QoSCurve:
    if kernel.param_name is None:
        raise ValueError(
            f"detector {kernel.name!r} has no tuning parameter; use bertier_point()"
        )
    if mode not in SWEEP_MODES:
        raise ValueError(f"unknown sweep mode {mode!r}; expected one of {SWEEP_MODES}")
    if mode == "points":
        return _sweep_points(kernel, trace, params, label)

    params_arr = np.asarray([float(p) for p in params], dtype=np.float64)
    if params_arr.ndim != 1:
        raise ValueError(f"params must be 1-D, got shape {params_arr.shape}")

    if mode == "fused":
        evaluator = kernel.fused_sweep_evaluator(trace)
        if evaluator is not None:
            for p in params_arr:
                kernel.validate_param(float(p))
            td = evaluator.detection_times(params_arr)
            bm = evaluator.evaluate(params_arr)
            return _curve_from_columns(
                kernel,
                label,
                params_arr,
                td,
                bm.mistake_rate,
                bm.query_accuracy,
                bm.mistake_duration,
                bm.n_mistakes,
            )
        # No finite linear base — fall through to the exact batched path.
    return _sweep_batch(kernel, trace, params_arr, label)


@dataclass(frozen=True)
class SweepSpec:
    """One detector sweep of a multi-curve comparison (see :func:`sweep_many`)."""

    label: str
    detector: str
    params: Tuple[float, ...]
    kernel_kwargs: Mapping[str, object] = field(default_factory=dict)


def _sweep_spec_worker(job: Tuple[HeartbeatTrace, SweepSpec, str]) -> QoSCurve:
    trace, spec, mode = job
    kernel = make_kernel(spec.detector, trace, **dict(spec.kernel_kwargs))
    return sweep(kernel, trace, list(spec.params), label=spec.label, mode=mode)


def sweep_many(
    trace: HeartbeatTrace,
    specs: Sequence[SweepSpec],
    *,
    jobs: int | None = None,
    mode: str = "batch",
) -> Dict[str, QoSCurve]:
    """Run several detector sweeps over one trace, optionally in parallel.

    Each spec builds its kernel inside the worker (kernels hold multi-MB
    trace-length arrays; shipping the trace once and the curve back is the
    cheap direction).  Results keep spec order and are keyed by label.
    """
    from repro.runtime.parallel import pmap

    curves = pmap(_sweep_spec_worker, [(trace, spec, mode) for spec in specs], jobs=jobs)
    return {spec.label: curve for spec, curve in zip(specs, curves)}


def bertier_point(
    kernel: DeadlineKernel, trace: HeartbeatTrace, label: str = "bertier"
) -> QoSCurve:
    """The single (T_D, accuracy) point of a non-tunable detector."""
    d = kernel.deadlines()
    td = measured_detection_time(
        kernel.t, d, kernel.seq, kernel.interval, trace.send_offset_estimate()
    )
    m = replay_metrics(kernel.t, d, kernel.end_time, collect_gaps=False).metrics
    return QoSCurve(
        label=label,
        detector=kernel.name,
        param_name=None,
        params=np.asarray([math.nan]),
        detection_time=np.asarray([td]),
        mistake_rate=np.asarray([m.mistake_rate]),
        query_accuracy=np.asarray([m.query_accuracy]),
        mistake_duration=np.asarray([m.mistake_duration]),
        n_mistakes=np.asarray([m.n_mistakes], dtype=np.int64),
    )


def calibrate_to_detection_time(
    kernel: DeadlineKernel,
    trace: HeartbeatTrace,
    target_td: float,
    *,
    param_lo: float = 1e-6,
    param_hi: float | None = None,
    tol: float = 1e-9,
    max_iters: int = 100,
) -> float:
    """Find the tuning parameter realizing measured T_D = ``target_td``.

    For the Chen family the measured T_D is exactly linear in Δto, so the
    answer is closed-form; for the accruals (monotone but nonlinear in the
    threshold) bisection is used.  The virtual send times are computed once
    and every evaluated parameter's T_D is memoized, so interval endpoints
    are never replayed twice.

    Raises :class:`ValueError` if the target is unreachable — below the
    detector's minimum achievable T_D, or (for φ) beyond the threshold
    saturation point.
    """
    if kernel.param_name is None:
        raise ValueError(f"detector {kernel.name!r} is not tunable")
    obs = default_observability()
    if obs is not None:
        obs.registry.counter(
            "repro_calibrations_total",
            "calibrate_to_detection_time calls.",
            ("detector",),
        ).labels(kernel.name).inc()
    offset = trace.send_offset_estimate()
    sends = offset + kernel.interval * kernel.seq.astype(np.float64)

    # Kernels with expensive per-parameter deadlines may provide their own
    # closed-form calibration (e.g. the histogram kernel's order-statistic
    # path, which makes a whole T_D grid cost one sliding sort).
    custom = getattr(kernel, "calibrate_param_for_td", None)
    if custom is not None:
        return float(custom(target_td, sends))

    if kernel.linear_base is not None:
        base_td = float((kernel.linear_base - sends).mean())
        param = target_td - base_td
        if param < 0:
            raise ValueError(
                f"target T_D {target_td:.4g}s is below the minimum achievable "
                f"{base_td:.4g}s for {kernel.name!r}"
            )
        return param

    td_cache: Dict[float, float] = {}

    def td_at(p: float) -> float:
        td = td_cache.get(p)
        if td is None:
            d = kernel.deadlines(p)
            td = math.inf if np.any(np.isinf(d)) else float((d - sends).mean())
            td_cache[p] = td
        return td

    lo = param_lo
    td_lo = td_at(lo)
    if td_lo > target_td:
        raise ValueError(
            f"target T_D {target_td:.4g}s is below the minimum achievable "
            f"{td_lo:.4g}s for {kernel.name!r}"
        )
    # The parameter domain may be bounded above (the ED threshold lives in
    # (0, 1)); expand toward, but never onto, the supremum.
    sup = kernel.param_max
    cap = sup if math.isinf(sup) else math.nextafter(sup, 0.0)
    hi = param_hi if param_hi is not None else min(cap, max(1.0, 2.0 * lo))
    td_hi = td_at(hi)
    expansions = 0
    while not math.isinf(td_hi) and td_hi < target_td:
        if hi >= cap:
            raise ValueError(
                f"target T_D {target_td:.4g}s unreachable for {kernel.name!r}: "
                f"T_D at the parameter supremum is {td_hi:.4g}s"
            )
        lo, td_lo = hi, td_hi
        hi = min(cap, 2.0 * hi) if math.isinf(sup) else min(cap, 0.5 * (hi + sup))
        td_hi = td_at(hi)
        expansions += 1
        if expansions > 200:
            raise ValueError(
                f"target T_D {target_td:.4g}s unreachable for {kernel.name!r}"
            )
    if math.isinf(td_hi):
        # Shrink hi back inside the finite region before bisecting.
        finite_hi = hi
        for _ in range(200):
            finite_hi = 0.5 * (lo + finite_hi)
            if not math.isinf(td_at(finite_hi)):
                break
        else:
            raise ValueError(f"no finite-T_D parameter found for {kernel.name!r}")
        if td_at(finite_hi) < target_td:  # memoized: no second replay
            raise ValueError(
                f"target T_D {target_td:.4g}s unreachable for {kernel.name!r}: "
                f"the threshold saturates first"
            )
        hi = finite_hi
    for _ in range(max_iters):
        mid = 0.5 * (lo + hi)
        td_mid = td_at(mid)
        if math.isinf(td_mid) or td_mid > target_td:
            hi = mid
        else:
            lo = mid
        if hi - lo < tol:
            break
    return 0.5 * (lo + hi)
