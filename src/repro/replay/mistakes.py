"""Mistake-set algebra (Eq. 13 / Fig. 9) and per-segment counts (Fig. 8).

A *mistake* is identified by the accepted-heartbeat gap in which the
detector's output was S: gap k spans from accepted arrival ``t_k`` to the
next accepted arrival.  Because the 2W-FD's deadline is the pointwise max
of the two Chen deadlines over the same accepted heartbeats, its mistake
set is exactly the intersection of the two Chen mistake sets (Eq. 13):

    Mistakes(2W_{n1,n2}) = Mistakes(Chen_{n1}) ∩ Mistakes(Chen_{n2})

:func:`mistake_gaps` extracts the set; plain :func:`numpy.intersect1d` /
``setdiff1d`` implement the algebra; :func:`mistakes_by_segment` buckets
mistakes into the Table I sub-periods for the Fig. 8 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.replay.kernels import DeadlineKernel
from repro.replay.metrics_kernel import replay_metrics
from repro.traces.segments import Segment, WAN_SEGMENTS, segment_slices
from repro.traces.trace import HeartbeatTrace

__all__ = ["MistakeRecord", "mistake_gaps", "mistakes_by_segment"]


@dataclass(frozen=True)
class MistakeRecord:
    """The mistakes of one detector configuration over one trace.

    ``gap_index`` — indices into the accepted-heartbeat sequence;
    ``received_index`` — the same mistakes located in the raw received
    stream (0-based), the coordinate Table I's segment boundaries use;
    ``time`` — the arrival time opening each mistake's gap.
    """

    detector: str
    gap_index: np.ndarray
    received_index: np.ndarray
    time: np.ndarray

    @property
    def n_mistakes(self) -> int:
        return int(len(self.gap_index))

    def intersect(self, other: "MistakeRecord") -> np.ndarray:
        """Gap indices mistaken by both detectors (same trace required)."""
        return np.intersect1d(self.gap_index, other.gap_index)

    def difference(self, other: "MistakeRecord") -> np.ndarray:
        """Gap indices mistaken by self but not by other."""
        return np.setdiff1d(self.gap_index, other.gap_index)


def mistake_gaps(
    kernel: DeadlineKernel,
    trace: HeartbeatTrace,
    param: float | None = None,
    *,
    kind: str = "suspicion",
) -> MistakeRecord:
    """Extract the mistake set of ``kernel`` at parameter ``param``.

    ``kind='suspicion'`` identifies mistakes as gaps with any S-output
    (the Eq. 13 set, exactly closed under the max-deadline argument);
    ``kind='s-transition'`` restricts to gaps containing a T→S transition
    (§II-A's mistake events — a subset, since a mistake spanning several
    gaps transitions only once).
    """
    if kind not in ("suspicion", "s-transition"):
        raise ValueError(f"kind must be 'suspicion' or 's-transition', got {kind!r}")
    d = kernel.deadlines(param) if kernel.param_name else kernel.deadlines()
    outcome = replay_metrics(kernel.t, d, kernel.end_time, collect_gaps=True)
    gaps = outcome.suspicion_gaps if kind == "suspicion" else outcome.s_transition_gaps
    accepted_pos = np.flatnonzero(trace.accepted_mask())
    return MistakeRecord(
        detector=kernel.name,
        gap_index=gaps,
        received_index=accepted_pos[gaps],
        time=kernel.t[gaps],
    )


def mistakes_by_segment(
    record: MistakeRecord,
    trace: HeartbeatTrace,
    segments: Tuple[Segment, ...] = WAN_SEGMENTS,
) -> Dict[str, int]:
    """Count mistakes per Table I sub-period (rescaled to the trace size).

    Mistakes are bucketed by the received-stream index of the heartbeat
    opening their gap.
    """
    slices = segment_slices(segments, n_total=trace.n_received)
    return {
        name: int(
            np.count_nonzero(
                (record.received_index >= start) & (record.received_index < stop)
            )
        )
        for name, (start, stop) in slices.items()
    }
