"""Per-episode reaction analysis.

Given a trace with *known* disturbance episodes (injected via
:mod:`repro.traces.transform`, or taken from generator metadata), measure
how each detector behaves around each episode:

- did it make a mistake at the episode's onset (usually unavoidable — no
  detector can distinguish the first late heartbeat from a crash)?
- how much suspicion time did the episode cost in total?
- when did the detector *recover* — produce its last in-episode suspicion —
  relative to the onset?

This is the per-event view behind the paper's §III-A rationale: the 2W-FD's
short window should confine an episode's damage to its onset, while a
single long window keeps paying through the entire episode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.replay.kernels import DeadlineKernel
from repro.replay.metrics_kernel import replay_metrics

__all__ = ["EpisodeReaction", "episode_reactions"]


@dataclass(frozen=True)
class EpisodeReaction:
    """One detector's behaviour around one known episode."""

    start: float
    stop: float
    n_mistakes: int
    suspicion_time: float
    first_suspicion: float | None
    last_suspicion_end: float | None

    @property
    def recovery_time(self) -> float:
        """Time from episode onset until suspicion last ended (0 if clean)."""
        if self.last_suspicion_end is None:
            return 0.0
        return max(0.0, self.last_suspicion_end - self.start)

    @property
    def clean(self) -> bool:
        return self.n_mistakes == 0 and self.suspicion_time == 0.0


def episode_reactions(
    kernel: DeadlineKernel,
    param: float | None,
    episodes: Sequence[Tuple[float, float]],
    *,
    slack: float = 0.0,
) -> List[EpisodeReaction]:
    """Analyse ``kernel`` (at ``param``) around each ``(start, stop)`` episode.

    ``slack`` widens each episode's attribution window on both sides
    (suspicion caused by an episode's last heartbeats materializes slightly
    after ``stop``).
    """
    d = kernel.deadlines(param) if kernel.param_name else kernel.deadlines()
    t = kernel.t
    outcome = replay_metrics(t, d, kernel.end_time, collect_gaps=True)
    # Suspicion interval of gap k: [max(t_k, d_k), next arrival).
    next_t = np.empty_like(t)
    next_t[:-1] = t[1:]
    next_t[-1] = kernel.end_time
    sus_start = np.maximum(t, d)[outcome.suspicion_gaps]
    sus_stop = next_t[outcome.suspicion_gaps]
    trans_times = np.maximum(t, d)[outcome.s_transition_gaps]

    reactions = []
    for start, stop in episodes:
        lo, hi = start - slack, stop + slack
        inside = (sus_stop > lo) & (sus_start < hi)
        clipped = np.clip(sus_stop[inside], lo, hi) - np.clip(
            sus_start[inside], lo, hi
        )
        n_mist = int(np.count_nonzero((trans_times >= lo) & (trans_times < hi)))
        firsts = sus_start[inside]
        reactions.append(
            EpisodeReaction(
                start=float(start),
                stop=float(stop),
                n_mistakes=n_mist,
                suspicion_time=float(clipped.sum()),
                first_suspicion=float(firsts.min()) if firsts.size else None,
                last_suspicion_end=(
                    float(np.clip(sus_stop[inside], lo, hi).max())
                    if inside.any()
                    else None
                ),
            )
        )
    return reactions
