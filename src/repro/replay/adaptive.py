"""Replay support for the adaptive-margin extension.

:func:`adaptive_margin_deadlines` reproduces, over a recorded trace, the
exact deadline sequence the online
:class:`~repro.detectors.adaptive.AdaptiveTwoWindowFailureDetector` would
hold — the margin is piecewise-constant (re-derived from windowed
(p_L, V(D)) estimates every ``update_period`` of observed traffic), so the
deadline is the 2W base plus a per-heartbeat margin vector.

The Eq. 2 bases come from the vectorized kernel; the controller walk is a
Python loop over accepted heartbeats (its sliding-window state is cheap but
inherently sequential) — fine up to a few hundred thousand samples, which
is what the adaptive ablation benchmark uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.qos.adaptive import AdaptiveMarginController
from repro.replay.kernels import MultiWindowKernel
from repro.traces.trace import HeartbeatTrace

__all__ = ["AdaptiveReplay", "adaptive_margin_deadlines"]


@dataclass(frozen=True)
class AdaptiveReplay:
    """Deadlines plus the margin trajectory of an adaptive replay."""

    t: np.ndarray
    deadlines: np.ndarray
    margins: np.ndarray
    n_updates: int
    end_time: float

    @property
    def mean_margin(self) -> float:
        return float(self.margins.mean())


def adaptive_margin_deadlines(
    trace: HeartbeatTrace,
    max_mistake_rate: float,
    window_sizes=(1, 1000),
    *,
    update_period: float = 60.0,
    estimator_window: int = 2000,
    initial_margin: float | None = None,
) -> AdaptiveReplay:
    """Replay the adaptive-margin 2W-FD over ``trace``."""
    kernel = MultiWindowKernel(trace, window_sizes=window_sizes)
    controller = AdaptiveMarginController(
        trace.interval,
        max_mistake_rate,
        update_period=update_period,
        estimator_window=estimator_window,
        initial_margin=initial_margin,
    )
    margins = np.empty(len(kernel.t))
    for i, (s, a) in enumerate(zip(kernel.seq.tolist(), kernel.t.tolist())):
        controller.observe(s, a)
        margins[i] = controller.margin
    return AdaptiveReplay(
        t=kernel.t,
        deadlines=kernel.base + margins,
        margins=margins,
        n_updates=controller.n_updates,
        end_time=kernel.end_time,
    )
