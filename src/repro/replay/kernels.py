"""Vectorized suspicion-deadline kernels, one per detector family.

A kernel consumes a trace once (computing the accepted-heartbeat view and
whatever windowed statistics the algorithm needs) and then produces the
deadline array ``d`` for any value of the algorithm's tuning parameter in
O(m).  For the Chen family the deadline is ``base + Δto`` with a
Δto-independent base, so an entire detection-time sweep (one figure curve)
costs a single pass over the trace plus one fused add per sweep point —
this is what makes replaying the paper's 5.8M-sample WAN trace across five
detectors and dozens of parameters interactive.

Numerical notes (per the hpc-parallel guides): windowed statistics are
cumulative sums over baseline-shifted values (round-off ~1e-9 s over a week
of trace); Bertier's Jacobson recursions are exponential moving averages and
are evaluated with ``scipy.signal.lfilter`` instead of a Python loop.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence, Tuple

import numpy as np
from scipy.signal import lfilter

from repro._validation import ensure_int_at_least, ensure_non_negative
from repro.core.estimation import windowed_means
from repro.detectors.accrual import phi_quantile
from repro.detectors.exponential import ed_timeout_factor
from repro.traces.trace import HeartbeatTrace

__all__ = [
    "DeadlineKernel",
    "ChenKernel",
    "MultiWindowKernel",
    "BertierKernel",
    "PhiKernel",
    "ChenSyncKernel",
    "EDKernel",
    "HistogramKernel",
    "FixedTimeoutKernel",
    "make_kernel",
    "windowed_mean_var",
]


def windowed_mean_var(values: np.ndarray, window: int) -> Tuple[np.ndarray, np.ndarray]:
    """Trailing windowed mean and population variance (warm-up = all-so-far).

    Matches :class:`repro.core.windows.SlidingWindow` semantics sample for
    sample.  Both moments come from two baseline-shifted cumulative sums.
    """
    values = np.asarray(values, dtype=np.float64)
    window = ensure_int_at_least(window, 1, "window")
    n = len(values)
    if n == 0:
        return values.copy(), values.copy()
    baseline = values[0]
    shifted = values - baseline
    csum = np.concatenate([[0.0], np.cumsum(shifted)])
    csum2 = np.concatenate([[0.0], np.cumsum(shifted * shifted)])
    counts = np.minimum(np.arange(1, n + 1), window)
    starts = np.arange(1, n + 1) - counts
    mean_shifted = (csum[1:] - csum[starts]) / counts
    meansq = (csum2[1:] - csum2[starts]) / counts
    var = meansq - mean_shifted * mean_shifted
    np.clip(var, 0.0, None, out=var)
    return mean_shifted + baseline, var


class DeadlineKernel(ABC):
    """Precomputed per-trace state producing deadlines per parameter value.

    Attributes
    ----------
    t:
        Accepted heartbeat arrival times (monitor clock).
    seq:
        Their sequence numbers (strictly increasing).
    end_time:
        Observation-window end, from the trace.
    """

    #: Registry name of the algorithm this kernel replays.
    name: str = "abstract"
    #: Name of the tuning parameter ``deadlines`` expects (None = fixed).
    param_name: str | None = None
    #: For kernels with ``d = linear_base + param``, the base array; lets
    #: calibration solve for the parameter in closed form.  None otherwise.
    linear_base: np.ndarray | None = None
    #: Supremum of valid tuning-parameter values (exclusive); ``inf`` when
    #: the parameter is unbounded.  The ED threshold lives in (0, 1).
    param_max: float = math.inf

    def __init__(self, trace: HeartbeatTrace):
        self.seq, self.t = trace.accepted()
        self.interval = trace.interval
        self.end_time = trace.end_time
        if len(self.t) < 2:
            raise ValueError("kernel needs at least two accepted heartbeats")

    @abstractmethod
    def deadlines(self, param: float | None = None) -> np.ndarray:
        """Suspicion deadline after each accepted heartbeat."""

    def validate_param(self, param: float) -> float:
        """Range-check one tuning-parameter value (same rules as ``deadlines``)."""
        return float(param)

    def _batch_params(self, params: Sequence[float]) -> np.ndarray:
        if self.param_name is None:
            raise ValueError(f"detector {self.name!r} has no tuning parameter")
        arr = np.asarray(params, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"params must be 1-D, got shape {arr.shape}")
        return arr

    def deadlines_batch(self, params: Sequence[float]) -> np.ndarray:
        """``(P, m)`` matrix whose row ``i`` equals ``deadlines(params[i])``.

        Rows are bit-for-bit identical to the per-point calls.  Kernels with
        a closed-form parameter dependence override this with a fused
        broadcast; this default stacks per-point calls (accrual kernels
        whose parameter enters through a scalar quantile still share the
        windowed statistics across rows).
        """
        arr = self._batch_params(params)
        out = np.empty((len(arr), len(self.t)), dtype=np.float64)
        for i, p in enumerate(arr):
            out[i] = self.deadlines(float(p))
        return out

    def fused_sweep_evaluator(self, trace: HeartbeatTrace):
        """O(log m)-per-parameter sweep evaluator, for linear kernels only.

        Returns a cached :class:`repro.replay.fused.LinearSweepEvaluator`
        when ``d = linear_base + param`` with a finite base, else ``None``.
        The build costs one O(m log m) pass; afterwards every sweep point is
        a handful of binary searches (see ``docs/performance.md``).
        """
        if self.linear_base is None or self.param_name is None:
            return None
        cached = getattr(self, "_fused_evaluator", None)
        if cached is not None:
            return cached
        base = np.asarray(self.linear_base, dtype=np.float64)
        if not np.all(np.isfinite(base)):
            return None
        from repro.replay.fused import LinearSweepEvaluator

        offset = trace.send_offset_estimate()
        sends = offset + self.interval * self.seq.astype(np.float64)
        evaluator = LinearSweepEvaluator(self.t, base, float(self.end_time), sends)
        self._fused_evaluator = evaluator
        return evaluator


class _GapStatsKernel(DeadlineKernel):
    """Shared machinery for the accrual kernels (interarrival statistics).

    ``mu[k]``/``var[k]`` are the windowed moments of the interarrival gaps
    available right after accepting heartbeat k — including the gap that
    ended at k, matching the online classes which fold the gap in before
    computing the deadline.  During warm-up (k = 0, no gap yet) the nominal
    interval with zero variance is used, as in the online classes.
    """

    def __init__(self, trace: HeartbeatTrace, window_size: int = 1000):
        super().__init__(trace)
        ensure_int_at_least(window_size, 1, "window_size")
        self.window_size = window_size
        gaps = np.diff(self.t)
        mu_g, var_g = windowed_mean_var(gaps, window_size)
        self.mu = np.concatenate([[self.interval], mu_g])
        self.var = np.concatenate([[0.0], var_g])


class ChenKernel(DeadlineKernel):
    """Chen's FD: ``d = windowed-mean(A − Δi·s) + Δi·(l+1) + Δto``."""

    name = "chen"
    param_name = "safety_margin"

    def __init__(self, trace: HeartbeatTrace, window_size: int = 1000):
        super().__init__(trace)
        ensure_int_at_least(window_size, 1, "window_size")
        self.window_size = window_size
        normalized = self.t - self.interval * self.seq.astype(np.float64)
        means = windowed_means(normalized, window_size)
        self.base = means + self.interval * (self.seq.astype(np.float64) + 1.0)
        self.linear_base = self.base

    def deadlines(self, param: float | None = None) -> np.ndarray:
        margin = ensure_non_negative(param if param is not None else 0.0, "safety_margin")
        return self.base + margin

    def validate_param(self, param: float) -> float:
        return ensure_non_negative(param, "safety_margin")

    def deadlines_batch(self, params: Sequence[float]) -> np.ndarray:
        margins = self._batch_params(params)
        for p in margins:
            ensure_non_negative(float(p), "safety_margin")
        return self.base[None, :] + margins[:, None]


class MultiWindowKernel(DeadlineKernel):
    """The 2W-FD / MW-FD: Eq. 12's max over per-window Chen bases."""

    name = "2w-fd"
    param_name = "safety_margin"

    def __init__(self, trace: HeartbeatTrace, window_sizes: Sequence[int] = (1, 1000)):
        super().__init__(trace)
        sizes = tuple(ensure_int_at_least(w, 1, "window size") for w in window_sizes)
        if not sizes:
            raise ValueError("at least one window size is required")
        self.window_sizes = sizes
        normalized = self.t - self.interval * self.seq.astype(np.float64)
        best = windowed_means(normalized, sizes[0])
        for w in sizes[1:]:
            np.maximum(best, windowed_means(normalized, w), out=best)
        self.base = best + self.interval * (self.seq.astype(np.float64) + 1.0)
        self.linear_base = self.base

    def deadlines(self, param: float | None = None) -> np.ndarray:
        margin = ensure_non_negative(param if param is not None else 0.0, "safety_margin")
        return self.base + margin

    def validate_param(self, param: float) -> float:
        return ensure_non_negative(param, "safety_margin")

    def deadlines_batch(self, params: Sequence[float]) -> np.ndarray:
        margins = self._batch_params(params)
        for p in margins:
            ensure_non_negative(float(p), "safety_margin")
        return self.base[None, :] + margins[:, None]


class BertierKernel(DeadlineKernel):
    """Bertier's FD: Eq. 2 base plus the Jacobson-adapted margin (Eq. 3-6).

    The two EWMA recursions are linear filters::

        delay_{k+1} = (1−γ)·delay_k + γ·x_k,   x_k = A_k − EA_k
        var_{k+1}   = (1−γ)·var_k   + γ·|x_k − delay_k|

    evaluated with ``lfilter([γ], [1, −(1−γ)], ·)``.  No tuning parameter:
    ``deadlines()`` takes none (the paper plots Bertier as a single point).
    """

    name = "bertier"
    param_name = None

    def __init__(
        self,
        trace: HeartbeatTrace,
        window_size: int = 1000,
        gamma: float = 0.1,
        beta: float = 1.0,
        phi: float = 4.0,
    ):
        super().__init__(trace)
        ensure_int_at_least(window_size, 1, "window_size")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must lie in (0, 1], got {gamma}")
        self.window_size = window_size
        normalized = self.t - self.interval * self.seq.astype(np.float64)
        means = windowed_means(normalized, window_size)
        # Prediction error for message k uses the window state *before* k:
        # x_k = u_k − mean_{k−1} (no prediction exists for the first message).
        x = np.zeros(len(self.t))
        x[1:] = normalized[1:] - means[:-1]
        delay_after = lfilter([gamma], [1.0, -(1.0 - gamma)], x)
        delay_pre = np.concatenate([[0.0], delay_after[:-1]])
        err_abs = np.abs(x - delay_pre)
        var_after = lfilter([gamma], [1.0, -(1.0 - gamma)], err_abs)
        margin = beta * delay_after + phi * var_after
        ea_next = means + self.interval * (self.seq.astype(np.float64) + 1.0)
        self._deadlines = ea_next + margin

    def deadlines(self, param: float | None = None) -> np.ndarray:
        if param is not None:
            raise ValueError("Bertier's detector has no tuning parameter")
        return self._deadlines


class PhiKernel(_GapStatsKernel):
    """φ accrual: ``d = t + μ + σ·z(Φ)`` with windowed gap moments.

    ``deadlines(Φ)`` returns all-``inf`` when ``1 − 10^{−Φ}`` rounds to 1 in
    float64 — the paper's 'curve stops early' effect; sweeps detect this via
    :func:`math.isinf` and truncate the curve.
    """

    name = "phi"
    param_name = "threshold"

    def deadlines(self, param: float | None = None) -> np.ndarray:
        if param is None or param <= 0:
            raise ValueError("the φ detector needs a positive threshold Φ")
        z = phi_quantile(param)
        if math.isinf(z):
            return np.full(len(self.t), np.inf)
        return self.t + self.mu + np.sqrt(self.var) * z

    def validate_param(self, param: float) -> float:
        if param is None or param <= 0:
            raise ValueError("the φ detector needs a positive threshold Φ")
        return float(param)

    def deadlines_batch(self, params: Sequence[float]) -> np.ndarray:
        arr = self._batch_params(params)
        z = np.array([phi_quantile(self.validate_param(float(p))) for p in arr])
        out = np.empty((len(arr), len(self.t)), dtype=np.float64)
        finite = np.isfinite(z)
        if finite.any():
            tm = self.t + self.mu
            sv = np.sqrt(self.var)
            out[finite] = tm[None, :] + sv[None, :] * z[finite, None]
        out[~finite] = np.inf
        return out


class EDKernel(_GapStatsKernel):
    """ED accrual: ``d = t − μ·ln(1 − E)`` with the windowed gap mean."""

    name = "ed"
    param_name = "threshold"
    param_max = 1.0

    def deadlines(self, param: float | None = None) -> np.ndarray:
        if param is None:
            raise ValueError("the ED detector needs a threshold E in (0, 1)")
        return self.t + self.mu * ed_timeout_factor(param)

    def validate_param(self, param: float) -> float:
        if param is None:
            raise ValueError("the ED detector needs a threshold E in (0, 1)")
        ed_timeout_factor(param)  # range-checks E
        return float(param)

    def deadlines_batch(self, params: Sequence[float]) -> np.ndarray:
        arr = self._batch_params(params)
        factors = np.array([ed_timeout_factor(float(p)) for p in arr])
        return self.t[None, :] + self.mu[None, :] * factors[:, None]


class ChenSyncKernel(DeadlineKernel):
    """Chen's NFD-S: ``d = (l+1)·Δi + clock_offset + δ`` (exact send times).

    ``clock_offset`` defaults to the trace's estimated send offset so the
    kernel is usable on unsynchronized traces as an oracle-ish baseline.
    """

    name = "chen-sync"
    param_name = "shift"

    def __init__(self, trace: HeartbeatTrace, clock_offset: float | None = None):
        super().__init__(trace)
        if clock_offset is None:
            clock_offset = trace.send_offset_estimate()
        self.clock_offset = float(clock_offset)
        self.linear_base = (
            (self.seq.astype(np.float64) + 1.0) * self.interval + self.clock_offset
        )

    def deadlines(self, param: float | None = None) -> np.ndarray:
        shift = ensure_non_negative(param if param is not None else 0.0, "shift")
        return self.linear_base + shift

    def validate_param(self, param: float) -> float:
        return ensure_non_negative(param, "shift")

    def deadlines_batch(self, params: Sequence[float]) -> np.ndarray:
        shifts = self._batch_params(params)
        for p in shifts:
            ensure_non_negative(float(p), "shift")
        return self.linear_base[None, :] + shifts[:, None]


class HistogramKernel(_GapStatsKernel):
    """Histogram accrual: ``d = t + factor·Quantile_H(recent gaps)``.

    Sliding-window quantiles have no cumulative-sum trick; the kernel uses
    ``numpy.lib.stride_tricks.sliding_window_view`` in row chunks (memory
    stays bounded at ``chunk × window`` floats) with the 'inverted_cdf'
    method to match the online detector exactly.  Costlier than the other
    kernels (~O(n·w log w)) — fine at benchmark scales, and the quantile
    array is cached so threshold sweeps pay it once per threshold.
    """

    name = "histogram"
    param_name = "threshold"
    param_max = 1.0

    def __init__(
        self,
        trace: HeartbeatTrace,
        window_size: int = 1000,
        margin_factor: float = 1.0,
        chunk_rows: int = 8192,
    ):
        super().__init__(trace, window_size=window_size)
        if margin_factor <= 0.0:
            raise ValueError(f"margin_factor must be positive, got {margin_factor}")
        self.margin_factor = float(margin_factor)
        self._chunk_rows = int(chunk_rows)
        self._gaps = np.diff(self.t)

    def _windowed_quantile(self, threshold: float) -> np.ndarray:
        gaps, w = self._gaps, self.window_size
        n = len(gaps)
        out = np.empty(n)
        warm = min(w - 1, n)
        # Warm-up: quantile over all gaps seen so far.
        for k in range(warm):
            out[k] = np.quantile(gaps[: k + 1], threshold, method="inverted_cdf")
        if n >= w:
            view = np.lib.stride_tricks.sliding_window_view(gaps, w)
            for start in range(0, len(view), self._chunk_rows):
                stop = min(start + self._chunk_rows, len(view))
                out[w - 1 + start : w - 1 + stop] = np.quantile(
                    view[start:stop], threshold, axis=1, method="inverted_cdf"
                )
        return out

    def deadlines(self, param: float | None = None) -> np.ndarray:
        if param is None or not 0.0 < param <= 1.0:
            raise ValueError("the histogram detector needs a threshold H in (0, 1]")
        q = np.concatenate([[self.interval], self._windowed_quantile(float(param))])
        return self.t + self.margin_factor * q

    def validate_param(self, param: float) -> float:
        if param is None or not 0.0 < param <= 1.0:
            raise ValueError("the histogram detector needs a threshold H in (0, 1]")
        return float(param)

    def mean_quantile_by_rank(self) -> np.ndarray:
        """Mean (over full windows) of each order statistic of the gaps.

        One chunked sort of the sliding windows yields the mean H-quantile
        for *every* threshold at once (the quantile is piecewise constant
        in H with breakpoints at multiples of 1/w), which is what makes
        closed-form detection-time calibration possible.  Cached.
        """
        cached = getattr(self, "_mean_by_rank", None)
        if cached is not None:
            return cached
        gaps, w = self._gaps, self.window_size
        if len(gaps) < w:
            sorted_all = np.sort(gaps)
            # Degenerate: one short window; ranks beyond len collapse.
            out = np.interp(
                np.linspace(0, len(gaps) - 1, w), np.arange(len(gaps)), sorted_all
            )
            self._mean_by_rank = out
            return out
        view = np.lib.stride_tricks.sliding_window_view(gaps, w)
        totals = np.zeros(w)
        for start in range(0, len(view), self._chunk_rows):
            chunk = np.sort(view[start : start + self._chunk_rows], axis=1)
            totals += chunk.sum(axis=0)
        self._mean_by_rank = totals / len(view)
        return self._mean_by_rank

    def calibrate_param_for_td(self, target_td: float, sends: np.ndarray) -> float:
        """Threshold H whose mean detection time best approaches ``target_td``.

        Mean T_D(H) ≈ mean(t − σ) + factor·mean-quantile(H) is a step
        function of H; the smallest rank reaching the target is selected
        (below the floor or above the ceiling raises, matching the generic
        calibration contract).
        """
        base = float((self.t - sends).mean())
        mean_q = self.mean_quantile_by_rank()
        td_by_rank = base + self.margin_factor * mean_q
        if target_td < td_by_rank[0] - 1e-12:
            raise ValueError(
                f"target T_D {target_td:.4g}s is below the minimum achievable "
                f"{td_by_rank[0]:.4g}s for 'histogram'"
            )
        if target_td > td_by_rank[-1] + 1e-12:
            raise ValueError(
                f"target T_D {target_td:.4g}s unreachable for 'histogram': "
                f"the H=1 quantile tops out at {td_by_rank[-1]:.4g}s"
            )
        rank = int(np.searchsorted(td_by_rank, target_td, side="left"))
        rank = min(rank, self.window_size - 1)
        return (rank + 1) / self.window_size


class FixedTimeoutKernel(DeadlineKernel):
    """Naive control: ``d = t + timeout``."""

    name = "fixed-timeout"
    param_name = "timeout"

    def __init__(self, trace: HeartbeatTrace):
        super().__init__(trace)
        self.linear_base = self.t

    def deadlines(self, param: float | None = None) -> np.ndarray:
        if param is None or param <= 0:
            raise ValueError("the fixed-timeout detector needs a positive timeout")
        return self.t + float(param)

    def validate_param(self, param: float) -> float:
        if param is None or param <= 0:
            raise ValueError("the fixed-timeout detector needs a positive timeout")
        return float(param)

    def deadlines_batch(self, params: Sequence[float]) -> np.ndarray:
        timeouts = self._batch_params(params)
        for p in timeouts:
            self.validate_param(float(p))
        return self.t[None, :] + timeouts[:, None]


_KERNELS = {
    "2w-fd": MultiWindowKernel,
    "chen-sync": ChenSyncKernel,
    "histogram": HistogramKernel,
    "mw-fd": MultiWindowKernel,
    "chen": ChenKernel,
    "bertier": BertierKernel,
    "phi": PhiKernel,
    "ed": EDKernel,
    "fixed-timeout": FixedTimeoutKernel,
}


def make_kernel(name: str, trace: HeartbeatTrace, **kwargs: object) -> DeadlineKernel:
    """Build the replay kernel for detector ``name`` over ``trace``.

    ``kwargs`` are the algorithm's *structural* parameters (window sizes,
    Jacobson constants) — the tuning parameter goes to
    :meth:`DeadlineKernel.deadlines` instead.

    When the on-disk cache is enabled (``REPRO_CACHE`` /
    ``REPRO_CACHE_DIR``), the built kernel — windowed statistics included —
    is cached keyed on (trace digest, kernel class, kwargs) and reloaded on
    repeat runs.
    """
    try:
        cls = _KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(sorted(_KERNELS))}"
        ) from None
    from repro.runtime.cache import cache_enabled, cached_pickle, trace_digest

    if cache_enabled():
        key = {
            "trace": trace_digest(trace),
            "class": cls.__name__,
            "kwargs": dict(kwargs),
        }
        return cached_pickle("kernels", cls.__name__, key, lambda: cls(trace, **kwargs))
    return cls(trace, **kwargs)
