"""Trace replay: the paper's evaluation methodology (§IV-A).

The paper compares detectors by *replaying* each over the same logged
heartbeat arrival times.  This subpackage provides:

- :mod:`repro.replay.kernels` — vectorized per-detector suspicion-deadline
  computations (every detector reduces to "a deadline after each accepted
  heartbeat"; see DESIGN.md "Architectural unification"),
- :mod:`repro.replay.metrics_kernel` — the shared NumPy kernel turning
  ``(arrival, deadline)`` pairs into QoS metrics and mistake sets,
- :mod:`repro.replay.detection` — measured detection time T_D via virtual
  crash injection,
- :mod:`repro.replay.engine` — uniform entry points for replaying online
  detector objects and vectorized kernels,
- :mod:`repro.replay.sweep` — parameter sweeps producing the QoS curves of
  the paper's figures, plus calibration to a target T_D,
- :mod:`repro.replay.mistakes` — mistake-set algebra (Eq. 13 / Fig. 9) and
  per-segment mistake counts (Fig. 8).
"""

from repro.replay.adaptive import AdaptiveReplay, adaptive_margin_deadlines
from repro.replay.detection import measured_detection_time
from repro.replay.engine import replay_detector, replay_online
from repro.replay.kernels import (
    BertierKernel,
    ChenKernel,
    DeadlineKernel,
    EDKernel,
    FixedTimeoutKernel,
    MultiWindowKernel,
    PhiKernel,
    make_kernel,
)
from repro.replay.metrics_kernel import ReplayOutcome, replay_metrics, timeline_from_deadlines
from repro.replay.mistakes import MistakeRecord, mistake_gaps, mistakes_by_segment
from repro.replay.reaction import EpisodeReaction, episode_reactions
from repro.replay.sweep import (
    QoSCurve,
    bertier_point,
    calibrate_to_detection_time,
    sweep,
)

__all__ = [
    "AdaptiveReplay",
    "BertierKernel",
    "adaptive_margin_deadlines",
    "ChenKernel",
    "DeadlineKernel",
    "EDKernel",
    "EpisodeReaction",
    "FixedTimeoutKernel",
    "MistakeRecord",
    "MultiWindowKernel",
    "PhiKernel",
    "QoSCurve",
    "ReplayOutcome",
    "calibrate_to_detection_time",
    "episode_reactions",
    "make_kernel",
    "measured_detection_time",
    "mistake_gaps",
    "mistakes_by_segment",
    "replay_detector",
    "replay_metrics",
    "replay_online",
    "sweep",
    "timeline_from_deadlines",
]
