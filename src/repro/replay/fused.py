"""Closed-form sweep evaluation for linear-in-parameter kernels.

For the Chen family the deadline after heartbeat k is ``d_k = base_k + p``
with a parameter-independent base, so every per-gap quantity that enters the
QoS metrics is a piecewise-linear function of ``p`` whose breakpoints depend
only on the kernel:

- the gap trusts iff ``p > lo_k`` with ``lo_k = t_k − base_k``;
- the deadline expires inside the gap iff ``lo_k < p < hi_k`` with
  ``hi_k = upper_k − base_k``;
- the trusting span is ``min(base_k + p, upper_k) − t_k``, i.e. either the
  full gap span, ``(base_k − t_k) + p``, or zero.

Sorting the breakpoints once and prefix-summing the per-gap constants turns
every sweep point into a handful of binary searches: an O(m log m) build,
then **O(log m) per parameter** instead of the O(m) elementwise replay.
That is what makes dense calibration curves and 10³-point sweeps on the
5.8M-sample WAN trace cheap.

Numerics: group sums are accumulated via prefix sums in breakpoint order
rather than in gap order, so float results agree with the elementwise replay
only to rounding (~1e-12 relative; mistake *counts* are exact away from
breakpoint ties).  Results are deterministic and independent of which other
parameters share the batch.  The bitwise-reference path remains
``replay_metrics_batch`` / ``sweep(mode="batch")``; cross-validation lives in
``tests/replay/test_batch.py``.
"""

from __future__ import annotations

import math

import numpy as np

from repro._validation import ensure_1d_float_array, ensure_same_length
from repro.replay.metrics_kernel import BatchReplayMetrics

__all__ = ["LinearSweepEvaluator"]


class LinearSweepEvaluator:
    """Evaluate QoS metrics of ``d = base + p`` for many ``p`` in O(log m) each.

    Parameters
    ----------
    t:
        Accepted heartbeat arrivals (non-decreasing).
    base:
        The kernel's ``linear_base`` (finite, same length as ``t``).
    end_time:
        Observation-window end (``≥ t[-1]``).
    sends:
        Virtual send instants for the accepted heartbeats (for T_D).
    """

    def __init__(
        self,
        t: np.ndarray,
        base: np.ndarray,
        end_time: float,
        sends: np.ndarray,
    ):
        t = ensure_1d_float_array(t, "t")
        base = ensure_1d_float_array(base, "base")
        sends = ensure_1d_float_array(sends, "sends")
        ensure_same_length(t, base, "t", "base")
        ensure_same_length(t, sends, "t", "sends")
        if len(t) == 0:
            raise ValueError("need at least one accepted heartbeat")
        if not np.all(np.isfinite(base)):
            raise ValueError("linear base must be finite")
        if end_time < t[-1]:
            raise ValueError(
                f"end_time ({end_time}) precedes the last arrival ({t[-1]})"
            )
        self.duration = float(end_time - t[0])
        if self.duration <= 0.0:
            raise ValueError("observation window has zero length")
        self.n_gaps = len(t)
        self._t = t
        self._t0 = float(t[0])

        next_t = np.empty_like(t)
        next_t[:-1] = t[1:]
        next_t[-1] = end_time
        upper = np.maximum(next_t, t)
        lo = t - base  # gap k trusts iff p > lo_k
        hi = upper - base  # deadline expires in-gap iff p < hi_k
        span = upper - t

        # Positive gaps (hi > lo) are the only ones contributing trust,
        # suspicion, or expiries; zero-length gaps still host stale
        # S-transitions and are handled separately below.
        pos = hi > lo
        lo_p, hi_p, span_p = lo[pos], hi[pos], span[pos]
        order_lo = np.argsort(lo_p, kind="stable")
        order_hi = np.argsort(hi_p, kind="stable")
        self._slo = lo_p[order_lo]
        self._shi = hi_p[order_hi]

        def prefix(values: np.ndarray) -> np.ndarray:
            out = np.empty(len(values) + 1)
            out[0] = 0.0
            np.cumsum(values, out=out[1:])
            return out

        self._c_span_lo = prefix(span_p[order_lo])
        self._c_lo_lo = prefix(lo_p[order_lo])
        self._c_hi_lo = prefix(hi_p[order_lo])
        self._c_span_hi = prefix(span_p[order_hi])
        self._c_lo_hi = prefix(lo_p[order_hi])
        self._c_hi_hi = prefix(hi_p[order_hi])
        self._total_span = float(self._c_span_lo[-1])

        # Stale S-transitions at t_k (k ≥ 1, strictly inside the window):
        # the previous deadline still held (p > lo2_k = t_k − base_{k−1})
        # while the new one was already expired (p ≤ lo_k).  Only gaps with
        # lo2_k < lo_k (a deadline decrease) can ever fire.
        if self.n_gaps > 1:
            lo2 = t[1:] - base[:-1]
            eligible = (lo2 < lo[1:]) & (t[1:] > t[0])
            self._s_lo2 = np.sort(lo2[eligible])
            self._s_lo_stale = np.sort(lo[1:][eligible])
        else:
            self._s_lo2 = np.empty(0)
            self._s_lo_stale = np.empty(0)

        # Initial-suspicion lookup: the first gap index with lo_k < p is
        # always a running-minimum record of lo, and the records' values are
        # strictly decreasing — a binary search over them recovers the first
        # trusting gap for any p.
        pmin = np.minimum.accumulate(lo)
        rec_mask = np.empty(self.n_gaps, dtype=bool)
        rec_mask[0] = True
        rec_mask[1:] = pmin[1:] < pmin[:-1]
        self._rec_pos = np.flatnonzero(rec_mask)
        self._rec_vals_asc = lo[self._rec_pos][::-1].copy()  # ascending
        self._lo0 = float(lo[0])

        self._td_base = float((base - sends).mean())

    def detection_times(self, params: np.ndarray) -> np.ndarray:
        """Mean virtual-crash detection time for each parameter."""
        return self._td_base + np.asarray(params, dtype=np.float64)

    def calibrate_param_for_td(self, target_td: float) -> float:
        """Parameter whose mean detection time equals ``target_td`` exactly."""
        return float(target_td - self._td_base)

    def evaluate(self, params: np.ndarray) -> BatchReplayMetrics:
        """QoS metrics for every parameter in ``params`` (1-D array-like)."""
        p = np.atleast_1d(np.asarray(params, dtype=np.float64))
        if p.ndim != 1:
            raise ValueError(f"params must be 1-D, got shape {p.shape}")

        i_lo = np.searchsorted(self._slo, p, side="left")  # #{lo < p}
        i_hi = np.searchsorted(self._shi, p, side="right")  # #{hi <= p}
        n_mid = i_lo - i_hi  # gaps with an in-gap expiry
        n_stale = np.searchsorted(self._s_lo2, p, side="left") - np.searchsorted(
            self._s_lo_stale, p, side="left"
        )
        n_s = n_mid + n_stale

        trust = (
            self._c_span_hi[i_hi]
            + (self._c_lo_hi[i_hi] - self._c_lo_lo[i_lo])
            + n_mid * p
        )
        suspect = (
            (self._total_span - self._c_span_lo[i_lo])
            + (self._c_hi_lo[i_lo] - self._c_hi_hi[i_hi])
            - n_mid * p
        )
        np.clip(trust, 0.0, self.duration, out=trust)
        np.clip(suspect, 0.0, self.duration, out=suspect)

        # Initial suspicion (window opens in S because p <= lo_0): find the
        # first trusting gap via the running-minimum records.
        opens_suspecting = p <= self._lo0
        initial_suspect = np.zeros(len(p))
        if opens_suspecting.any():
            n_rec = len(self._rec_pos)
            count_less = np.searchsorted(self._rec_vals_asc, p, side="left")
            has_trust = count_less > 0
            first_rec = np.clip(n_rec - count_less, 0, n_rec - 1)
            first_t = self._t[self._rec_pos[first_rec]]
            init = np.where(has_trust, first_t - self._t0, self.duration)
            initial_suspect = np.where(opens_suspecting, init, 0.0)

        positive = n_s > 0
        mistake_duration = np.zeros(len(p))
        np.divide(
            np.maximum(suspect - initial_suspect, 0.0),
            n_s,
            out=mistake_duration,
            where=positive,
        )
        mistake_duration[~positive] = 0.0
        recurrence = np.full(len(p), math.inf)
        np.divide(self.duration, n_s, out=recurrence, where=positive)

        return BatchReplayMetrics(
            duration=self.duration,
            n_mistakes=n_s.astype(np.int64),
            mistake_rate=n_s / self.duration,
            mistake_recurrence_time=recurrence,
            mistake_duration=mistake_duration,
            query_accuracy=trust / self.duration,
            trust_time=trust,
            suspect_time=suspect,
        )
