"""Measured detection time T_D via virtual crash injection.

T_D (§II-A2, Fig. 1) is the time from p's crash to the final S-transition
at q.  On a trace where p never actually crashed, T_D is measured the way
the trace-replay literature does: inject a *virtual* crash immediately
after each heartbeat send and see when the detector — whose state evolved
only from messages sent before the crash — would suspect.

If p crashes right after sending ``m_{s_k}`` and the detector's last
accepted heartbeat is the k-th one (arrival ``t_k``, deadline ``d_k``),
then no later message ever raises the largest-sequence bound, so suspicion
starts (and is final) at ``d_k``:

    T_D(k) = d_k − σ(s_k)

where ``σ(s_k)`` is the send instant of ``m_{s_k}`` expressed on q's clock.
q cannot observe send instants directly; they are placed as
``offset + Δi·s`` with ``offset = min(A − Δi·s)`` (the fastest message is
assumed near-instant), a constant that affects every detector identically
and cancels from comparisons.  Averaging over all k yields the mean
worst-case detection time — the x-axis of the paper's Fig. 4-7.
"""

from __future__ import annotations

import math

import numpy as np

from repro._validation import ensure_1d_float_array, ensure_same_length

__all__ = [
    "measured_detection_time",
    "measured_detection_times_batch",
    "detection_times",
]


def detection_times(
    t: np.ndarray,
    d: np.ndarray,
    seq: np.ndarray,
    interval: float,
    send_offset: float,
) -> np.ndarray:
    """Per-crash-point detection times ``d_k − σ(s_k)``.

    Parameters
    ----------
    t, d:
        Accepted arrivals and their deadlines.
    seq:
        Accepted sequence numbers.
    interval:
        Heartbeat interval Δi.
    send_offset:
        Clock offset placing virtual send times on q's clock
        (see :meth:`repro.traces.trace.HeartbeatTrace.send_offset_estimate`).
    """
    t = ensure_1d_float_array(t, "t")
    d = ensure_1d_float_array(d, "d")
    ensure_same_length(t, d, "t", "d")
    sends = send_offset + interval * np.asarray(seq, dtype=np.float64)
    return d - sends


def measured_detection_time(
    t: np.ndarray,
    d: np.ndarray,
    seq: np.ndarray,
    interval: float,
    send_offset: float,
) -> float:
    """Mean detection time over all virtual crash points.

    Returns ``inf`` if any deadline is infinite (a detector that can never
    suspect — e.g. φ with a saturated threshold — has unbounded T_D).
    """
    td = detection_times(t, d, seq, interval, send_offset)
    if np.any(np.isinf(td)):
        return math.inf
    return float(td.mean())


def measured_detection_times_batch(
    D: np.ndarray,
    seq: np.ndarray,
    interval: float,
    send_offset: float,
) -> np.ndarray:
    """Row-wise :func:`measured_detection_time` for a ``(P, m)`` deadline matrix.

    Entry ``i`` is bit-for-bit identical to calling the scalar function on
    row ``i`` (same elementwise subtraction, same pairwise row mean); rows
    containing infinite deadlines yield ``inf``.
    """
    D = np.asarray(D, dtype=np.float64)
    if D.ndim != 2:
        raise ValueError(f"D must be a 2-D (P, m) array, got shape {D.shape}")
    sends = send_offset + interval * np.asarray(seq, dtype=np.float64)
    td = D - sends
    out = td.mean(axis=1)
    out[np.isinf(td).any(axis=1)] = math.inf
    return out
