"""The shared vectorized timeline/metrics kernel.

Every detector, replayed over a trace, reduces to arrays ``t`` (accepted
heartbeat arrivals) and ``d`` (the suspicion deadline each establishes).
Between consecutive accepted arrivals ``[t_k, t_{k+1})`` (and from the last
arrival to the end of the observation window) the output is:

- **T then S** if ``t_k < d_k < t_{k+1}``: trust until the deadline expires
  (the S-transition instant is ``d_k``);
- **T throughout** if ``d_k ≥ t_{k+1}``: the next heartbeat arrives fresh;
- **S throughout** if ``d_k ≤ t_k``: the heartbeat was already stale when
  it arrived (Alg. 1 line 20's ``t < τ`` test fails).

This module turns ``(t, d)`` into QoS metrics, mistake sets, and — for
cross-validation against the online implementations — full
:class:`~repro.qos.timeline.OutputTimeline` objects, entirely with NumPy
ufunc pipelines (no Python loops; a 6M-sample replay costs a few tens of
milliseconds).

:func:`replay_metrics_batch` is the many-parameters variant: given a
``(P, m)`` deadline matrix (one row per tuning-parameter value, see
:meth:`~repro.replay.kernels.DeadlineKernel.deadlines_batch`) it computes
the metrics of every row in one chunked vectorized pass, reusing the
row-independent gap geometry and preallocated workspaces across rows.  Its
per-row results are bit-for-bit identical to calling :func:`replay_metrics`
on each row (the batch path applies the exact same elementwise operations).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._validation import ensure_1d_float_array, ensure_same_length
from repro.qos.metrics import QoSMetrics
from repro.qos.timeline import OutputTimeline

__all__ = [
    "BatchReplayMetrics",
    "ReplayOutcome",
    "replay_metrics",
    "replay_metrics_batch",
    "timeline_from_deadlines",
]


@dataclass(frozen=True)
class ReplayOutcome:
    """Result of replaying one detector configuration over one trace.

    ``suspicion_gaps`` indexes the accepted-heartbeat gaps in which the
    output was S for a positive duration — the mistake identity used by the
    Fig. 9 intersection analysis; ``s_transition_gaps`` indexes gaps
    containing a T→S transition (the §II-A mistake *events*).
    """

    metrics: QoSMetrics
    n_gaps: int
    suspicion_gaps: np.ndarray
    s_transition_gaps: np.ndarray

    @property
    def n_mistakes(self) -> int:
        return self.metrics.n_mistakes


def _gap_decomposition(t: np.ndarray, d: np.ndarray, end_time: float):
    """Per-gap trust/suspect spans and transition flags."""
    next_t = np.empty_like(t)
    next_t[:-1] = t[1:]
    next_t[-1] = end_time
    upper = np.maximum(next_t, t)  # guard a final gap truncated by end_time
    trust = np.minimum(d, upper) - t
    np.clip(trust, 0.0, None, out=trust)
    suspect = upper - np.maximum(d, t)
    np.clip(suspect, 0.0, None, out=suspect)
    # S-transition at d_k within the gap:
    expiry = (d > t) & (d < upper)
    # S-transition at t_k itself: the message arrived stale while the
    # previous deadline still held (possible only with a non-monotone
    # deadline sequence; kept for exact Alg. 1 semantics).  A transition
    # exactly at the window-start instant t[0] is not observable inside the
    # window [t[0], end] — the online timeline folds it into the initial
    # state — so it must not count as an in-window mistake.
    prev_trusting = np.zeros(len(t), dtype=bool)
    if len(t) > 1:
        prev_trusting[1:] = d[:-1] > t[1:]
    stale = (d <= t) & prev_trusting & (t > t[0])
    return next_t, trust, suspect, expiry, stale


def replay_metrics(
    t: np.ndarray,
    d: np.ndarray,
    end_time: float,
    *,
    collect_gaps: bool = True,
) -> ReplayOutcome:
    """Compute QoS metrics from accepted arrivals ``t`` and deadlines ``d``.

    The observation window is ``[t[0], end_time]`` (accuracy metrics start
    at the first heartbeat: before it the detector has no information and
    is suspecting vacuously).

    Parameters
    ----------
    t, d:
        Same-length arrays; ``t`` non-decreasing.
    end_time:
        End of the observation window (``≥ t[-1]``).
    collect_gaps:
        When ``False``, the mistake-gap index arrays are left empty (saves
        two ``flatnonzero`` passes in tight sweeps).
    """
    t = ensure_1d_float_array(t, "t")
    d = ensure_1d_float_array(d, "d")
    ensure_same_length(t, d, "t", "d")
    if len(t) == 0:
        raise ValueError("need at least one accepted heartbeat")
    if end_time < t[-1]:
        raise ValueError(f"end_time ({end_time}) precedes the last arrival ({t[-1]})")

    next_t, trust, suspect, expiry, stale = _gap_decomposition(t, d, end_time)
    duration = float(end_time - t[0])
    if duration <= 0.0:
        raise ValueError("observation window has zero length")

    n_s = int(np.count_nonzero(expiry)) + int(np.count_nonzero(stale))
    # Per-gap segment sums can exceed the window length by an ulp of
    # accumulated rounding; clamp so P_A stays within [0, 1] exactly.
    total_trust = min(float(trust.sum()), duration)
    total_suspect = min(float(suspect.sum()), duration)

    # Initial suspicion (window opens in S because d_0 <= t_0) has no
    # in-window S-transition; exclude it from the mistake-duration average.
    if n_s:
        initial_suspect = 0.0
        if d[0] <= t[0]:
            trusting_gaps = d > t
            first_trust = int(np.argmax(trusting_gaps)) if trusting_gaps.any() else -1
            initial_suspect = (
                float(t[first_trust] - t[0]) if first_trust >= 0 else duration
            )
        mistake_duration = max(0.0, total_suspect - initial_suspect) / n_s
    else:
        mistake_duration = 0.0

    metrics = QoSMetrics(
        duration=duration,
        n_mistakes=n_s,
        mistake_rate=n_s / duration,
        mistake_recurrence_time=(duration / n_s) if n_s else math.inf,
        mistake_duration=mistake_duration,
        query_accuracy=total_trust / duration,
        trust_time=total_trust,
        suspect_time=total_suspect,
    )
    if collect_gaps:
        suspicion_gaps = np.flatnonzero(suspect > 0.0)
        s_transition_gaps = np.flatnonzero(expiry | stale)
    else:
        suspicion_gaps = np.zeros(0, dtype=np.int64)
        s_transition_gaps = np.zeros(0, dtype=np.int64)
    return ReplayOutcome(
        metrics=metrics,
        n_gaps=len(t),
        suspicion_gaps=suspicion_gaps,
        s_transition_gaps=s_transition_gaps,
    )


@dataclass(frozen=True)
class BatchReplayMetrics:
    """QoS metrics for every row of a ``(P, m)`` deadline matrix.

    Each array has one entry per parameter row; entry ``i`` is bit-for-bit
    identical to the corresponding field of
    ``replay_metrics(t, D[i], end_time).metrics``.
    """

    duration: float
    n_mistakes: np.ndarray
    mistake_rate: np.ndarray
    mistake_recurrence_time: np.ndarray
    mistake_duration: np.ndarray
    query_accuracy: np.ndarray
    trust_time: np.ndarray
    suspect_time: np.ndarray

    def __len__(self) -> int:
        return len(self.n_mistakes)

    def row(self, i: int) -> QoSMetrics:
        """The ``i``-th row as a scalar :class:`QoSMetrics`."""
        return QoSMetrics(
            duration=self.duration,
            n_mistakes=int(self.n_mistakes[i]),
            mistake_rate=float(self.mistake_rate[i]),
            mistake_recurrence_time=float(self.mistake_recurrence_time[i]),
            mistake_duration=float(self.mistake_duration[i]),
            query_accuracy=float(self.query_accuracy[i]),
            trust_time=float(self.trust_time[i]),
            suspect_time=float(self.suspect_time[i]),
        )


def replay_metrics_batch(
    t: np.ndarray,
    D: np.ndarray,
    end_time: float,
    *,
    chunk_elements: int = 1 << 22,
) -> BatchReplayMetrics:
    """Vectorized :func:`replay_metrics` over a ``(P, m)`` deadline matrix.

    Row-independent gap geometry (``next_t``, ``upper``, the window-start
    mask) is computed once; the per-row passes run over row chunks of at
    most ``chunk_elements`` total elements, with preallocated workspaces and
    in-place ufuncs that replicate the per-point elementwise operation
    sequence exactly — the results are bitwise equal to the per-point path,
    not merely close.

    Rows containing ``inf`` deadlines are fine (they simply never expire);
    validation matches :func:`replay_metrics`.
    """
    t = ensure_1d_float_array(t, "t")
    D = np.asarray(D, dtype=np.float64)
    if D.ndim != 2:
        raise ValueError(f"D must be a 2-D (P, m) array, got shape {D.shape}")
    if D.shape[1] != len(t):
        raise ValueError(
            f"D has {D.shape[1]} columns but t has {len(t)} samples"
        )
    if len(t) == 0:
        raise ValueError("need at least one accepted heartbeat")
    if end_time < t[-1]:
        raise ValueError(f"end_time ({end_time}) precedes the last arrival ({t[-1]})")
    duration = float(end_time - t[0])
    if duration <= 0.0:
        raise ValueError("observation window has zero length")

    n_rows, m = D.shape
    # Row-independent geometry, hoisted out of the per-row passes.
    next_t = np.empty_like(t)
    next_t[:-1] = t[1:]
    next_t[-1] = end_time
    upper = np.maximum(next_t, t)
    in_window = t > t[0]  # gaps whose start instant lies inside the window

    n_s = np.zeros(n_rows, dtype=np.int64)
    trust_time = np.empty(n_rows, dtype=np.float64)
    suspect_time = np.empty(n_rows, dtype=np.float64)
    initial_suspect = np.zeros(n_rows, dtype=np.float64)

    chunk = max(1, min(n_rows, chunk_elements // max(m, 1)))
    work = np.empty((chunk, m), dtype=np.float64)
    flags = np.empty((chunk, m), dtype=bool)
    scratch = np.empty((chunk, m), dtype=bool)
    extra = np.empty((chunk, m), dtype=bool)

    for lo in range(0, n_rows, chunk):
        hi = min(lo + chunk, n_rows)
        rows = hi - lo
        Dv = D[lo:hi]
        Wv = work[:rows]
        Gv = flags[:rows]  # d > t, reused by expiry/stale/initial-suspicion
        Bv = scratch[:rows]
        Ev = extra[:rows]

        # trust = clip(min(d, upper) - t, 0)
        np.minimum(Dv, upper, out=Wv)
        np.subtract(Wv, t, out=Wv)
        np.clip(Wv, 0.0, None, out=Wv)
        trust_time[lo:hi] = np.minimum(Wv.sum(axis=1), duration)

        # suspect = clip(upper - max(d, t), 0)
        np.maximum(Dv, t, out=Wv)
        np.subtract(upper, Wv, out=Wv)
        np.clip(Wv, 0.0, None, out=Wv)
        suspect_time[lo:hi] = np.minimum(Wv.sum(axis=1), duration)

        # expiry = (d > t) & (d < upper)
        np.greater(Dv, t, out=Gv)
        np.less(Dv, upper, out=Bv)
        np.logical_and(Gv, Bv, out=Bv)
        n_s[lo:hi] = np.count_nonzero(Bv, axis=1)

        # stale = (d <= t) & prev_trusting & (t > t[0]);  (d <= t) == ~(d > t)
        if m > 1:
            np.greater(Dv[:, :-1], t[1:], out=Bv[:, 1:])
            Bv[:, 0] = False
            np.logical_not(Gv, out=Ev)
            np.logical_and(Ev, Bv, out=Ev)
            np.logical_and(Ev, in_window, out=Ev)
            n_s[lo:hi] += np.count_nonzero(Ev, axis=1)

        # Initial suspicion per row (only matters where d_0 <= t_0): the
        # first trusting gap, if any, ends it at t[first]; otherwise the
        # window never leaves S.
        opens_suspecting = ~Gv[:, 0]
        if opens_suspecting.any():
            has_trust = Gv.any(axis=1)
            first_trust = Gv.argmax(axis=1)
            init = np.where(has_trust, t[first_trust] - t[0], duration)
            initial_suspect[lo:hi] = np.where(opens_suspecting, init, 0.0)

    # Rows with no mistakes carry no initial-suspicion exclusion (matches
    # the per-point short-circuit: initial_suspect only enters T_M).
    positive = n_s > 0
    mistake_duration = np.zeros(n_rows, dtype=np.float64)
    if positive.any():
        excess = np.maximum(suspect_time - initial_suspect, 0.0)
        np.divide(excess, n_s, out=mistake_duration, where=positive)
        mistake_duration[~positive] = 0.0
    recurrence = np.full(n_rows, math.inf, dtype=np.float64)
    np.divide(duration, n_s, out=recurrence, where=positive)

    return BatchReplayMetrics(
        duration=duration,
        n_mistakes=n_s,
        mistake_rate=n_s / duration,
        mistake_recurrence_time=recurrence,
        mistake_duration=mistake_duration,
        query_accuracy=trust_time / duration,
        trust_time=trust_time,
        suspect_time=suspect_time,
    )


def timeline_from_deadlines(
    t: np.ndarray, d: np.ndarray, end_time: float
) -> OutputTimeline:
    """Materialize the full T/S :class:`OutputTimeline` for ``(t, d)``.

    Used for cross-validating the vectorized kernels against the online
    detectors' transition logs, and for plotting small traces.
    """
    t = ensure_1d_float_array(t, "t")
    d = ensure_1d_float_array(d, "d")
    ensure_same_length(t, d, "t", "d")
    _, _, _, expiry, stale = _gap_decomposition(t, d, end_time)

    # T-transitions happen at arrivals t_k where the gap is trusting and the
    # output just before the arrival was S.
    prev_trusting = np.zeros(len(t), dtype=bool)
    if len(t) > 1:
        prev_trusting[1:] = d[:-1] > t[1:]
    t_trans_mask = (d > t) & ~prev_trusting
    events = [
        (t[t_trans_mask], np.ones(int(t_trans_mask.sum()), dtype=bool)),
        (d[expiry], np.zeros(int(expiry.sum()), dtype=bool)),
        (t[stale], np.zeros(int(stale.sum()), dtype=bool)),
    ]
    times = np.concatenate([e[0] for e in events])
    states = np.concatenate([e[1] for e in events])
    order = np.argsort(times, kind="stable")
    return OutputTimeline.from_transitions(
        zip(times[order].tolist(), states[order].tolist()),
        start=float(t[0]),
        end=float(end_time),
        initial_trust=False,
    )
