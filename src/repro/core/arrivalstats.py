"""Shared per-peer arrival statistics: estimate once, consume many times.

A monitor running several detectors against one heartbeat stream (the
paper's §V FD-as-a-service deployment) repeats the estimation layer per
detector: the 2W-FD, Chen's FD, and the accrual detectors each keep private
:class:`~repro.core.windows.SlidingWindow` copies over the *same* accepted
arrivals, so a five-detector monitor pays ~5x the estimation cost per
heartbeat.  :class:`SharedArrivalState` is the per-peer fix: one object owns
every distinct window the detector set needs —

- *normalized-arrival* windows (``A − Δi·s``, Chen's Eq. 2 input), keyed by
  window size, backing :class:`~repro.core.estimation.ArrivalEstimator`;
- *interarrival-gap* windows (the accrual detectors' Eq. 8-9 input), keyed
  by window size;

— and is pushed exactly **once** per accepted heartbeat via
:meth:`receive`.  Detectors adopt the shared windows through
:meth:`~repro.core.base.HeartbeatFailureDetector.bind_shared_arrivals`
before the first heartbeat; two detectors requesting the same window
configuration get the *same* object, so the arithmetic (and therefore every
deadline and output transition) is bitwise identical to the private-copy
path — the estimation work is simply not repeated.

Bertier's detector reads the window *before* folding the new arrival in
(its Jacobson error term compares the arrival against the prediction the
detector held); :meth:`SharedArrivalState.track_pre_mean` serves it by
capturing the pre-push normalized mean of the requested window at the top
of every :meth:`receive` — the exact float the private estimator would
have returned.  Detectors whose estimation state is not window-shaped at
all decline the bind and keep private state; mixing shared and private
detectors on one stream is fully supported.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro._validation import ensure_positive
from repro.core.estimation import ArrivalEstimator
from repro.core.windows import SlidingWindow

__all__ = ["SharedArrivalState"]


class SharedArrivalState:
    """Per-peer arrival statistics computed once per accepted heartbeat.

    Parameters
    ----------
    interval:
        The heartbeat interval Δi (needed to normalize arrivals per Eq. 2).
    """

    __slots__ = (
        "_interval",
        "_estimators",
        "_gaps",
        "_est_list",
        "_gap_list",
        "_pre_sizes",
        "_pre_list",
        "_pre_means",
        "_prev_arrival",
        "_largest_seq",
    )

    def __init__(self, interval: float):
        self._interval = ensure_positive(interval, "interval")
        self._estimators: Dict[int, ArrivalEstimator] = {}
        self._gaps: Dict[int, SlidingWindow] = {}
        # Tuple caches (estimator windows, gap windows) built lazily on
        # the first receive (registration is closed by then) so the hot
        # loop walks tuples, not dict views.
        self._est_list: tuple | None = None
        self._gap_list: tuple = ()
        self._pre_sizes: set = set()
        self._pre_list: tuple = ()
        self._pre_means: Dict[int, float | None] = {}
        self._prev_arrival: float | None = None
        self._largest_seq = 0

    # ------------------------------------------------------------------
    @property
    def interval(self) -> float:
        return self._interval

    @property
    def largest_seq(self) -> int:
        """Largest sequence number accepted so far (0 before any)."""
        return self._largest_seq

    @property
    def window_sizes(self) -> Tuple[int, ...]:
        """Registered normalized-arrival window sizes (sorted)."""
        return tuple(sorted(self._estimators))

    @property
    def gap_window_sizes(self) -> Tuple[int, ...]:
        """Registered interarrival-gap window sizes (sorted)."""
        return tuple(sorted(self._gaps))

    @property
    def n_windows(self) -> int:
        """Distinct windows maintained (= pushes per accepted heartbeat)."""
        return len(self._estimators) + len(self._gaps)

    # ------------------------------------------------------------------
    def estimator(self, window_size: int) -> ArrivalEstimator:
        """The shared Eq. 2 estimator for ``window_size`` (get-or-create).

        Registration must happen before the first heartbeat: a window
        created later would be missing history and silently diverge from
        the private-copy arithmetic.
        """
        est = self._estimators.get(window_size)
        if est is None:
            self._require_unstarted("normalized-arrival", window_size)
            est = ArrivalEstimator(window_size, self._interval)
            self._estimators[window_size] = est
        return est

    def gap_window(self, window_size: int) -> SlidingWindow:
        """The shared interarrival-gap window of ``window_size`` (get-or-create)."""
        win = self._gaps.get(window_size)
        if win is None:
            self._require_unstarted("interarrival-gap", window_size)
            win = SlidingWindow(window_size)
            self._gaps[window_size] = win
        return win

    def track_pre_mean(self, window_size: int) -> None:
        """Capture the *pre-push* normalized mean of this window per receive.

        Bertier's Jacobson error needs the prediction the detector held
        *before* the new arrival was folded in; with the window shared,
        that state is gone by the time the detector runs.  Tracking makes
        :meth:`receive` record ``estimator(window_size).normalized_mean()``
        (``None`` while the window is empty) just before pushing, for
        :meth:`pre_mean` to serve — the identical float the private
        estimator would have produced.
        """
        if window_size not in self._pre_sizes:
            self._require_unstarted("pre-push mean", window_size)
        self.estimator(window_size)  # registers (and closes registration checks)
        self._pre_sizes.add(window_size)
        self._pre_means.setdefault(window_size, None)

    def pre_mean(self, window_size: int) -> float | None:
        """Normalized mean of the window *before* the last accepted push.

        ``None`` until the second accepted heartbeat (no prediction exists
        for the very first message).  Requires a prior
        :meth:`track_pre_mean` for this size.
        """
        return self._pre_means[window_size]

    def _require_unstarted(self, kind: str, window_size: int) -> None:
        if self._largest_seq or self._est_list is not None:
            raise ValueError(
                f"cannot register a new shared {kind} window (size "
                f"{window_size}) after heartbeats have been accepted or "
                f"the state was sealed: it would be missing history"
            )

    def seal(self) -> None:
        """Close registration and build the hot-path dispatch tuples.

        Idempotent; called lazily by the first :meth:`receive` anyway.
        Callers that inline the receive body (the batched live monitor)
        seal explicitly after binding so the tuples are guaranteed built.
        """
        if self._est_list is not None:
            return
        # Estimator windows are pushed directly: every registered
        # estimator shares this object's interval, so the normalized value
        # A − Δi·s is one multiply for the whole set (ArrivalEstimator
        # .observe verbatim, minus the per-estimator call frames).  The
        # tuples hold *bound* push methods — the method resolution is paid
        # here once, not per heartbeat.
        self._est_list = tuple(
            est._window.push for est in self._estimators.values()
        )
        self._gap_list = tuple(win.push for win in self._gaps.values())
        self._pre_list = tuple(
            (size, self._estimators[size]._window)
            for size in sorted(self._pre_sizes)
        )

    # ------------------------------------------------------------------
    def receive(self, seq: int, arrival: float) -> bool:
        """Fold one heartbeat into every registered window, exactly once.

        The acceptance rule is the detectors' own (Alg. 1 line 13: only
        sequence-fresh messages), so calling this alongside the detectors'
        ``receive`` keeps the shared windows in lockstep with what private
        copies would have held.  Returns ``True`` iff accepted.
        """
        seq = int(seq)
        if seq <= self._largest_seq:
            return False
        self._largest_seq = seq
        est_list = self._est_list
        if est_list is None:
            self.seal()
            est_list = self._est_list
        for size, window in self._pre_list:
            # Pre-push capture for track_pre_mean consumers; the inline
            # read is SlidingWindow.mean() verbatim (empty window = no
            # prediction yet).
            c = window._count
            self._pre_means[size] = (
                window._baseline + window._sum / c if c else None
            )
        norm = arrival - self._interval * seq
        for push in est_list:
            push(norm)
        if self._gap_list:
            prev = self._prev_arrival
            if prev is not None:
                gap = arrival - prev
                for push in self._gap_list:
                    push(gap)
        self._prev_arrival = arrival
        return True

    def describe(self) -> dict:
        """JSON-able summary (for the monitor-load status block)."""
        return {
            "window_sizes": list(self.window_sizes),
            "gap_window_sizes": list(self.gap_window_sizes),
            "pre_mean_sizes": sorted(self._pre_sizes),
            "n_windows": self.n_windows,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedArrivalState(interval={self._interval}, "
            f"windows={self.window_sizes}, gaps={self.gap_window_sizes})"
        )
