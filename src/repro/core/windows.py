"""Sliding-window accumulators with O(1) updates.

Every detector in the paper keeps the last *n* observations (arrival times or
interarrival gaps) and needs their mean — and, for the accrual detectors,
their variance — after every heartbeat.  Recomputing over the window would
cost O(n) per heartbeat (ruinous at n = 10,000 and millions of heartbeats),
so :class:`SlidingWindow` maintains running sums over a ring buffer.

Floating-point hygiene: values are accumulated relative to a *baseline* (the
first value pushed), which keeps the running sums small even when absolute
times grow to ~10^5 s over a multi-day trace; and the sums are recomputed
exactly from the buffer once per wrap-around, bounding drift.
"""

from __future__ import annotations

import math

import numpy as np

from repro._validation import ensure_int_at_least

__all__ = ["SlidingWindow"]


class SlidingWindow:
    """Fixed-capacity window of floats with O(1) mean and variance.

    Parameters
    ----------
    capacity:
        Maximum number of retained values (the paper's window size *n*).
    """

    __slots__ = (
        "_buffer",
        "_capacity",
        "_count",
        "_next",
        "_baseline",
        "_sum",
        "_sumsq",
        "_pushes_since_rebuild",
    )

    def __init__(self, capacity: int):
        self._capacity = ensure_int_at_least(capacity, 1, "capacity")
        # A plain list, not a numpy array: scalar ring-buffer reads and
        # writes are several times faster on a list, and the only bulk
        # consumers (values()/_rebuild) pay one array construction, which
        # for _rebuild is amortized over `capacity` pushes.
        self._buffer: list = [0.0] * self._capacity
        self._count = 0
        self._next = 0
        self._baseline = 0.0
        self._sum = 0.0
        self._sumsq = 0.0
        self._pushes_since_rebuild = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of retained values."""
        return self._capacity

    def __len__(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        return self._count == self._capacity

    # ------------------------------------------------------------------
    def push(self, value: float) -> None:
        """Insert ``value``, evicting the oldest if the window is full."""
        if type(value) is not float:
            # Coerce numpy scalars (and ints) up front so the list holds
            # only Python floats; the hot callers already pass floats and
            # skip the coercion on a type check.
            value = float(value)
        if self._capacity == 1:
            # A single-slot window rebuilds on every push (the rebuild
            # cadence is one push); short-circuit to the rebuilt state the
            # general path would reach — baseline = the value, both running
            # sums exactly zero — skipping the eviction arithmetic.
            # Bitwise identical: mean() is then value + 0.0/1 either way.
            self._buffer[0] = value
            self._baseline = value
            self._sum = 0.0
            self._sumsq = 0.0
            self._count = 1
            self._pushes_since_rebuild = 0
            return
        if self._count == 0:
            self._baseline = value
        rel = value - self._baseline
        if self._count == self._capacity:
            # The list holds Python floats (push float()s its input), so
            # the eviction read cannot contaminate the running sums with
            # numpy scalar arithmetic.
            old = self._buffer[self._next] - self._baseline
            self._sum -= old
            self._sumsq -= old * old
        else:
            self._count += 1
        self._buffer[self._next] = value
        self._sum += rel
        self._sumsq += rel * rel
        nxt = self._next + 1
        self._next = 0 if nxt == self._capacity else nxt
        self._pushes_since_rebuild += 1
        if self._pushes_since_rebuild >= self._capacity:
            self._rebuild()

    def _rebuild(self) -> None:
        """Recompute the running sums exactly, resetting accumulated drift."""
        values = self.values()
        if values.size:
            self._baseline = float(values[0])
            rel = values - self._baseline
            self._sum = float(rel.sum())
            self._sumsq = float((rel * rel).sum())
        else:
            self._sum = 0.0
            self._sumsq = 0.0
        self._pushes_since_rebuild = 0

    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Mean of the retained values."""
        if self._count == 0:
            raise ValueError("mean() of an empty window")
        return self._baseline + self._sum / self._count

    def variance(self) -> float:
        """Population variance of the retained values (clamped at 0)."""
        if self._count == 0:
            raise ValueError("variance() of an empty window")
        m = self._sum / self._count
        return max(0.0, self._sumsq / self._count - m * m)

    def std(self) -> float:
        """Population standard deviation of the retained values."""
        # math.sqrt == np.sqrt bit for bit (both correctly rounded IEEE
        # sqrt) and skips the numpy scalar round-trip on the hot path.
        return math.sqrt(self.variance())

    def values(self) -> np.ndarray:
        """Retained values, oldest first (copies; O(n))."""
        if self._count < self._capacity:
            return np.array(self._buffer[: self._count], dtype=np.float64)
        return np.array(
            self._buffer[self._next :] + self._buffer[: self._next],
            dtype=np.float64,
        )

    def clear(self) -> None:
        """Drop all retained values."""
        self._count = 0
        self._next = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._pushes_since_rebuild = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SlidingWindow(capacity={self._capacity}, count={self._count})"
