"""Chen's expected-arrival-time estimator (Eq. 2), online and vectorized.

With unsynchronized clocks the monitor estimates when the next heartbeat
should arrive from the last *n* received ones (paper Eq. 2):

    EA_{l+1} ≈ (1/n) Σ_i (A'_i − Δi·s_i)  +  (l+1)·Δi

i.e. normalize each arrival by shifting it back ``Δi·s_i``, average, and
shift forward to the next sequence number.  Both Chen's FD and the 2W-FD are
built on this estimator; the 2W-FD simply runs two of them with different
window sizes and takes the max (Eq. 12).

Two implementations with identical semantics:

- :class:`ArrivalEstimator` — O(1)-per-message online form used by the live
  detectors and the discrete-event simulator;
- :func:`windowed_means` / :func:`expected_arrivals` — NumPy forms used by
  the trace-replay kernels, processing entire multi-million-sample traces
  without Python loops (cumulative sums over baseline-shifted values keep
  float64 round-off at the nanosecond level over week-long traces).
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    ensure_1d_float_array,
    ensure_int_at_least,
    ensure_positive,
)
from repro.core.windows import SlidingWindow

__all__ = ["ArrivalEstimator", "windowed_means", "expected_arrivals"]


class ArrivalEstimator:
    """Online Eq. 2 estimator over a sliding window of size ``n``.

    Feed it every accepted heartbeat via :meth:`observe`; query
    :meth:`expected_arrival` for the EA of any future sequence number.
    """

    __slots__ = ("_interval", "_window")

    def __init__(self, window_size: int, interval: float):
        ensure_int_at_least(window_size, 1, "window_size")
        self._interval = ensure_positive(interval, "interval")
        self._window = SlidingWindow(window_size)

    @property
    def window_size(self) -> int:
        return self._window.capacity

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def n_observed(self) -> int:
        """Number of heartbeats currently retained in the window."""
        return len(self._window)

    def observe(self, seq: int, arrival: float) -> None:
        """Record an accepted heartbeat ``m_seq`` received at ``arrival``."""
        self._window.push(arrival - self._interval * seq)

    def normalized_mean(self) -> float:
        """Windowed mean of ``A − Δi·s`` (skew + average delay estimate)."""
        return self._window.mean()

    def expected_arrival(self, seq: int) -> float:
        """EA of heartbeat ``m_seq`` per Eq. 2.

        Raises :class:`ValueError` before the first observation — Alg. 1
        only ever queries the estimator after accepting a message.
        """
        return self.normalized_mean() + self._interval * seq

    def reset(self) -> None:
        self._window.clear()


def windowed_means(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing windowed means: ``out[k] = mean(values[max(0, k-window+1) : k+1])``.

    During warm-up (fewer than ``window`` samples seen) the mean of all
    samples so far is used — exactly what a partially filled
    :class:`SlidingWindow` returns.

    Implemented as a single cumulative sum over baseline-shifted values: for
    week-long traces, shifting by ``values[0]`` keeps the cumsum magnitude at
    the scale of delay *fluctuations* rather than absolute times, bounding
    the windowed-mean round-off near 1e-9 s instead of 1e-4 s.
    """
    values = ensure_1d_float_array(values, "values")
    window = ensure_int_at_least(window, 1, "window")
    n = len(values)
    if n == 0:
        return values.copy()
    baseline = values[0]
    shifted = values - baseline
    csum = np.concatenate([[0.0], np.cumsum(shifted)])
    counts = np.minimum(np.arange(1, n + 1), window)
    starts = np.arange(1, n + 1) - counts
    means = (csum[1:] - csum[starts]) / counts
    return means + baseline


def expected_arrivals(
    seq: np.ndarray,
    arrival: np.ndarray,
    interval: float,
    window: int,
) -> np.ndarray:
    """Vectorized Eq. 2: EA of heartbeat ``seq[k] + 1`` after each arrival.

    Parameters are the *accepted* heartbeat log (strictly increasing ``seq``)
    and return value ``out[k]`` is the EA the detector holds for the next
    heartbeat right after accepting the k-th one.
    """
    arrival = ensure_1d_float_array(arrival, "arrival")
    seq = np.asarray(seq, dtype=np.int64)
    ensure_positive(interval, "interval")
    normalized = arrival - interval * seq.astype(np.float64)
    means = windowed_means(normalized, window)
    return means + interval * (seq.astype(np.float64) + 1.0)
