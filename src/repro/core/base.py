"""Abstract base class for online heartbeat failure detectors.

The QoS model (§II-A) is a two-process system: the monitor q runs the
detector; the monitored process p sends heartbeats ``m_1, m_2, ...`` every
``Δi`` on its own clock.  Every concrete detector (Chen, Bertier, φ, ED,
2W-FD, fixed-timeout) shares this per-message skeleton:

1. ignore messages that do not carry the largest sequence number seen so
   far (Alg. 1 line 13);
2. update its estimator state from the accepted message;
3. compute the *suspicion deadline* — the freshness point after which,
   absent fresher heartbeats, the output becomes S;
4. hand ``(arrival, deadline)`` to a :class:`FreshnessOutput` that maintains
   the T/S output and the transition log.

Subclasses implement :meth:`_update` (step 2) and :meth:`_deadline`
(step 3) only.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Tuple

from repro._validation import ensure_positive
from repro.core.freshness import FreshnessOutput

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.arrivalstats import SharedArrivalState

__all__ = ["HeartbeatFailureDetector"]


class HeartbeatFailureDetector(ABC):
    """Online failure detector at monitor q observing one process p.

    Parameters
    ----------
    interval:
        The sender's heartbeat interval Δi in seconds (a protocol parameter
        known to both sides, per the paper's model).
    """

    #: Human-readable algorithm name, overridden by subclasses.
    name: str = "abstract"

    #: True once the detector consumes shared per-peer arrival statistics
    #: (set by a successful :meth:`bind_shared_arrivals`).
    shared_arrivals: bool = False

    #: Class-level promise that, once shared arrivals are bound, this
    #: detector's :meth:`_update` is a pure no-op (all its estimation
    #: state lives in the shared windows, already pushed upstream).  The
    #: batched ingest path then dispatches :meth:`receive_shared`, which
    #: skips the update step outright.  Detectors that keep per-message
    #: private state alongside the shared windows (Bertier's Jacobson
    #: margin, the adaptive controller) leave this False.
    shared_update_noop: bool = False

    def __init__(self, interval: float):
        self._interval = ensure_positive(interval, "interval")
        self._largest_seq = 0  # paper's l (with l = -1 represented as 0: seqs start at 1)
        self._last_arrival: float | None = None
        self._current_deadline: float | None = None
        self._output = FreshnessOutput()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def interval(self) -> float:
        """Heartbeat interval Δi (seconds)."""
        return self._interval

    @property
    def largest_seq(self) -> int:
        """Largest sequence number accepted so far (0 before any)."""
        return self._largest_seq

    @property
    def last_arrival(self) -> float | None:
        """Arrival time of the last accepted heartbeat."""
        return self._last_arrival

    @property
    def suspicion_deadline(self) -> float | None:
        """Current freshness point: the output turns S at this instant."""
        return self._current_deadline

    def bind_shared_arrivals(self, stats: "SharedArrivalState") -> bool:
        """Adopt shared per-peer arrival statistics instead of private copies.

        A detector that supports sharing swaps its private windows for the
        matching ones in ``stats`` and stops pushing into them itself; the
        caller then invokes ``stats.receive(seq, arrival)`` exactly once
        per heartbeat *before* the detectors' :meth:`receive`, and every
        deadline comes out bitwise identical to the private-copy path.
        Must be called before the first heartbeat.

        Returns ``True`` iff the detector now reads shared state.  The
        default declines (``False``): detectors whose estimation state is
        not expressible over the shared windows (even with the pre-push
        mean capture Bertier uses) keep their private state, which remains
        fully supported alongside shared consumers.
        """
        return False

    def receive(self, seq: int, arrival: float) -> bool:
        """Deliver heartbeat ``m_seq`` received at time ``arrival``.

        Returns ``True`` if the message was accepted (sequence-fresh),
        ``False`` if it was discarded as stale/duplicate.
        """
        seq = int(seq)
        if seq <= self._largest_seq:
            return False
        self._largest_seq = seq
        self._update(seq, arrival)
        deadline = self._deadline(seq, arrival)
        self._last_arrival = arrival
        self._current_deadline = deadline
        self._output.on_heartbeat(arrival, deadline)
        return True

    def receive_accepted(self, seq: int, arrival: float) -> float:
        """:meth:`receive`, with sequence freshness established by the caller.

        The batched-ingest fast path: every detector watching one peer
        applies the identical Alg. 1 line-13 acceptance rule to the
        identical message stream, so their ``largest_seq`` march in
        lockstep and one freshness check covers the whole set.  The caller
        guarantees ``seq`` is fresh (``seq > largest_seq``, as an int);
        state changes are exactly those of an accepting :meth:`receive`.
        Returns the new suspicion deadline.
        """
        self._largest_seq = seq
        self._update(seq, arrival)
        deadline = self._deadline(seq, arrival)
        self._last_arrival = arrival
        self._current_deadline = deadline
        self._output.on_heartbeat(arrival, deadline)
        return deadline

    def receive_shared(self, seq: int, arrival: float) -> float:
        """:meth:`receive_accepted` for bound :attr:`shared_update_noop` detectors.

        With shared arrivals bound and the shared windows already pushed
        by the caller, a ``shared_update_noop`` detector's ``_update`` is
        a guaranteed no-op — so this skips the dispatch entirely and goes
        straight to the deadline.  Same preconditions (fresh int ``seq``,
        shared state pushed first) and bitwise-identical state changes.
        """
        self._largest_seq = seq
        deadline = self._deadline(seq, arrival)
        self._last_arrival = arrival
        self._current_deadline = deadline
        self._output.on_heartbeat(arrival, deadline)
        return deadline

    def _shared_receive(self, seq: int, arrival: float) -> float:
        """``_update`` + ``_deadline`` in one call, for bound shared state.

        The batched-ingest path for detectors that share arrival
        statistics but keep per-message private state in ``_update``
        (``shared_update_noop`` is False); the caller applies the output
        and bookkeeping itself.  Subclasses on this path may override with
        a fused body to drop the inner dispatch (bertier does).
        """
        self._update(seq, arrival)
        return self._deadline(seq, arrival)

    def is_trusting(self, now: float) -> bool:
        """Detector output at time ``now``: ``True`` = trust, ``False`` = suspect.

        Before the first heartbeat the output is suspect (Alg. 1 sets the
        initial freshness point to 0).
        """
        if self._current_deadline is None:
            return False
        return now < self._current_deadline

    def advance_to(self, now: float) -> None:
        """Materialize any deadline expiry up to ``now`` in the transition log."""
        self._output.advance_to(now)

    def finalize(self, end_time: float) -> List[Tuple[float, bool]]:
        """Close the run at ``end_time``; return the ``(time, trust)`` transitions."""
        return self._output.finalize(end_time)

    @property
    def transitions(self) -> List[Tuple[float, bool]]:
        """Retained transition log (time, new output; ``True`` = T-transition).

        The full history unless :meth:`set_transition_retention` enabled
        compaction, in which case this is the retained tail.
        """
        return list(self._output.transitions)

    @property
    def n_transitions(self) -> int:
        """Total transitions ever recorded (O(1), compaction-proof)."""
        return self._output.n_transitions

    @property
    def n_suspicions(self) -> int:
        """Total S-transitions ever recorded (O(1), compaction-proof)."""
        return self._output.n_suspicions

    def drain_transitions(
        self, cursor: int
    ) -> Tuple[List[Tuple[float, bool]], int]:
        """Return ``(new transitions, new cursor)`` past absolute ``cursor``.

        The incremental-consumer API (used by the live monitor): each call
        costs O(new transitions), never a copy of the whole log.
        """
        return self._output.transitions_since(cursor)

    def set_transition_retention(self, max_retained: int | None) -> None:
        """Bound the retained transition log (``None`` = keep everything).

        With retention on, :meth:`finalize`/:attr:`transitions` cover only
        the retained window; the running counters stay exact.
        """
        self._output.set_retention(max_retained)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _update(self, seq: int, arrival: float) -> None:
        """Fold the accepted heartbeat into the estimator state."""

    @abstractmethod
    def _deadline(self, seq: int, arrival: float) -> float:
        """Suspicion deadline established by the accepted heartbeat."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(interval={self._interval})"
