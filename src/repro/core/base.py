"""Abstract base class for online heartbeat failure detectors.

The QoS model (§II-A) is a two-process system: the monitor q runs the
detector; the monitored process p sends heartbeats ``m_1, m_2, ...`` every
``Δi`` on its own clock.  Every concrete detector (Chen, Bertier, φ, ED,
2W-FD, fixed-timeout) shares this per-message skeleton:

1. ignore messages that do not carry the largest sequence number seen so
   far (Alg. 1 line 13);
2. update its estimator state from the accepted message;
3. compute the *suspicion deadline* — the freshness point after which,
   absent fresher heartbeats, the output becomes S;
4. hand ``(arrival, deadline)`` to a :class:`FreshnessOutput` that maintains
   the T/S output and the transition log.

Subclasses implement :meth:`_update` (step 2) and :meth:`_deadline`
(step 3) only.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Tuple

from repro._validation import ensure_positive
from repro.core.freshness import FreshnessOutput

__all__ = ["HeartbeatFailureDetector"]


class HeartbeatFailureDetector(ABC):
    """Online failure detector at monitor q observing one process p.

    Parameters
    ----------
    interval:
        The sender's heartbeat interval Δi in seconds (a protocol parameter
        known to both sides, per the paper's model).
    """

    #: Human-readable algorithm name, overridden by subclasses.
    name: str = "abstract"

    def __init__(self, interval: float):
        self._interval = ensure_positive(interval, "interval")
        self._largest_seq = 0  # paper's l (with l = -1 represented as 0: seqs start at 1)
        self._last_arrival: float | None = None
        self._current_deadline: float | None = None
        self._output = FreshnessOutput()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def interval(self) -> float:
        """Heartbeat interval Δi (seconds)."""
        return self._interval

    @property
    def largest_seq(self) -> int:
        """Largest sequence number accepted so far (0 before any)."""
        return self._largest_seq

    @property
    def last_arrival(self) -> float | None:
        """Arrival time of the last accepted heartbeat."""
        return self._last_arrival

    @property
    def suspicion_deadline(self) -> float | None:
        """Current freshness point: the output turns S at this instant."""
        return self._current_deadline

    def receive(self, seq: int, arrival: float) -> bool:
        """Deliver heartbeat ``m_seq`` received at time ``arrival``.

        Returns ``True`` if the message was accepted (sequence-fresh),
        ``False`` if it was discarded as stale/duplicate.
        """
        seq = int(seq)
        if seq <= self._largest_seq:
            return False
        self._largest_seq = seq
        self._update(seq, arrival)
        deadline = self._deadline(seq, arrival)
        self._last_arrival = arrival
        self._current_deadline = deadline
        self._output.on_heartbeat(arrival, deadline)
        return True

    def is_trusting(self, now: float) -> bool:
        """Detector output at time ``now``: ``True`` = trust, ``False`` = suspect.

        Before the first heartbeat the output is suspect (Alg. 1 sets the
        initial freshness point to 0).
        """
        if self._current_deadline is None:
            return False
        return now < self._current_deadline

    def advance_to(self, now: float) -> None:
        """Materialize any deadline expiry up to ``now`` in the transition log."""
        self._output.advance_to(now)

    def finalize(self, end_time: float) -> List[Tuple[float, bool]]:
        """Close the run at ``end_time``; return the ``(time, trust)`` transitions."""
        return self._output.finalize(end_time)

    @property
    def transitions(self) -> List[Tuple[float, bool]]:
        """Retained transition log (time, new output; ``True`` = T-transition).

        The full history unless :meth:`set_transition_retention` enabled
        compaction, in which case this is the retained tail.
        """
        return list(self._output.transitions)

    @property
    def n_transitions(self) -> int:
        """Total transitions ever recorded (O(1), compaction-proof)."""
        return self._output.n_transitions

    @property
    def n_suspicions(self) -> int:
        """Total S-transitions ever recorded (O(1), compaction-proof)."""
        return self._output.n_suspicions

    def drain_transitions(
        self, cursor: int
    ) -> Tuple[List[Tuple[float, bool]], int]:
        """Return ``(new transitions, new cursor)`` past absolute ``cursor``.

        The incremental-consumer API (used by the live monitor): each call
        costs O(new transitions), never a copy of the whole log.
        """
        return self._output.transitions_since(cursor)

    def set_transition_retention(self, max_retained: int | None) -> None:
        """Bound the retained transition log (``None`` = keep everything).

        With retention on, :meth:`finalize`/:attr:`transitions` cover only
        the retained window; the running counters stay exact.
        """
        self._output.set_retention(max_retained)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _update(self, seq: int, arrival: float) -> None:
        """Fold the accepted heartbeat into the estimator state."""

    @abstractmethod
    def _deadline(self, seq: int, arrival: float) -> float:
        """Suspicion deadline established by the accepted heartbeat."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(interval={self._interval})"
