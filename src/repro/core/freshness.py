"""Freshness-point output semantics (paper §II-B1, Alg. 1 lines 10-22).

Every detector in this package reduces to the same output rule: after each
accepted heartbeat the detector holds a *suspicion deadline* (the freshness
point for the next expected heartbeat); it **trusts** p at time t iff the
deadline computed at the latest accepted heartbeat lies strictly in the
future (``t < τ``), and **suspects** otherwise.  :class:`FreshnessOutput`
turns the stream of ``(arrival, deadline)`` pairs into the detector's output
timeline — the alternating T/S transitions on which every QoS metric in
§II-A is defined.

Three cases per heartbeat (mirroring Fig. 3):

a. the previous deadline had not expired and the new one is in the future —
   output stays T, no transition;
b. the previous deadline expired before this arrival — an S-transition is
   recorded at the expiry instant, and a T-transition at this arrival
   (provided the new deadline is in the future);
c. the new deadline is already in the past (a very stale message) — output
   is (or becomes) S.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["FreshnessOutput"]


@dataclass
class FreshnessOutput:
    """Incremental T/S output tracker for deadline-based detectors.

    Per the QoS model (§II-A) the output before the first heartbeat is
    *suspect* (Alg. 1 initializes the first freshness point to 0); metric
    computation conventionally starts the observation window at the first
    heartbeat, which :mod:`repro.qos.metrics` handles.
    """

    trusting: bool = False
    deadline: float | None = None
    start_time: float | None = None
    last_event_time: float | None = None
    transitions: List[Tuple[float, bool]] = None  # (time, new-output-is-trust)

    def __post_init__(self) -> None:
        if self.transitions is None:
            self.transitions = []

    def _transition(self, time: float, trust: bool) -> None:
        self.transitions.append((time, trust))
        self.trusting = trust

    def on_heartbeat(self, arrival: float, deadline: float) -> None:
        """Record an accepted heartbeat and the deadline it establishes.

        Calls must be in non-decreasing ``arrival`` order.
        """
        if self.last_event_time is not None and arrival < self.last_event_time:
            raise ValueError(
                f"heartbeats must be fed in time order "
                f"({arrival} < {self.last_event_time})"
            )
        if self.start_time is None:
            self.start_time = arrival
        # Did the previous deadline expire strictly before this arrival?
        # (A message arriving exactly at the freshness point renews trust
        # without a measurable suspicion period.)
        if self.trusting and self.deadline is not None and self.deadline < arrival:
            self._transition(self.deadline, False)
        # Apply the new deadline (Alg. 1 line 20: trust iff t < τ_{l+1}).
        if arrival < deadline:
            if not self.trusting:
                self._transition(arrival, True)
        else:
            if self.trusting:
                self._transition(arrival, False)
        self.deadline = deadline
        self.last_event_time = arrival

    def advance_to(self, now: float) -> None:
        """Apply any deadline expiry that happened up to time ``now``.

        Online users (the simulator, the service) call this before querying
        the output so an expiry between heartbeats is materialized as an
        S-transition at the expiry instant, exactly as Alg. 1 line 10 does.
        """
        if self.last_event_time is not None and now < self.last_event_time:
            raise ValueError(f"cannot advance backwards ({now} < {self.last_event_time})")
        # Strict: a deadline landing exactly on ``now`` opens a zero-length
        # suspicion interval, which contributes no transition (matching the
        # vectorized metrics kernel and the measure-zero convention).
        if self.trusting and self.deadline is not None and self.deadline < now:
            self._transition(self.deadline, False)
        if self.start_time is not None:
            self.last_event_time = max(self.last_event_time or now, now)

    def output_at(self, now: float) -> bool:
        """Current output: ``True`` = trust.  Does not mutate state."""
        if self.deadline is None:
            return False
        return now < self.deadline

    def finalize(self, end_time: float) -> List[Tuple[float, bool]]:
        """Close the observation window at ``end_time`` and return transitions."""
        self.advance_to(end_time)
        return list(self.transitions)
