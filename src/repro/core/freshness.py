"""Freshness-point output semantics (paper §II-B1, Alg. 1 lines 10-22).

Every detector in this package reduces to the same output rule: after each
accepted heartbeat the detector holds a *suspicion deadline* (the freshness
point for the next expected heartbeat); it **trusts** p at time t iff the
deadline computed at the latest accepted heartbeat lies strictly in the
future (``t < τ``), and **suspects** otherwise.  :class:`FreshnessOutput`
turns the stream of ``(arrival, deadline)`` pairs into the detector's output
timeline — the alternating T/S transitions on which every QoS metric in
§II-A is defined.

Three cases per heartbeat (mirroring Fig. 3):

a. the previous deadline had not expired and the new one is in the future —
   output stays T, no transition;
b. the previous deadline expired before this arrival — an S-transition is
   recorded at the expiry instant, and a T-transition at this arrival
   (provided the new deadline is in the future);
c. the new deadline is already in the past (a very stale message) — output
   is (or becomes) S.

Long-lived online users (the live monitor) additionally need the log to
cost O(1) per query and bounded memory per detector, so the tracker keeps
*running* counters (``n_transitions``, ``n_suspicions``), supports draining
new transitions by absolute cursor (:meth:`transitions_since`) without
copying the whole log, and can compact the log to a bounded tail
(:meth:`set_retention`) while the counters stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["FreshnessOutput"]


@dataclass(slots=True)
class FreshnessOutput:
    """Incremental T/S output tracker for deadline-based detectors.

    Per the QoS model (§II-A) the output before the first heartbeat is
    *suspect* (Alg. 1 initializes the first freshness point to 0); metric
    computation conventionally starts the observation window at the first
    heartbeat, which :mod:`repro.qos.metrics` handles.

    ``transitions`` holds the *retained* tail of the log: the full history
    unless :meth:`set_retention` enabled compaction, in which case entries
    with absolute index below :attr:`retained_from` have been dropped.
    ``n_transitions`` / ``n_suspicions`` always count the full history.
    """

    trusting: bool = False
    deadline: float | None = None
    start_time: float | None = None
    last_event_time: float | None = None
    transitions: List[Tuple[float, bool]] = None  # (time, new-output-is-trust)
    n_transitions: int = 0  # total ever recorded (compaction-proof)
    n_suspicions: int = 0  # total S-transitions ever recorded
    retained_from: int = 0  # absolute index of transitions[0]
    max_retained: int | None = None  # None = keep the full log

    def __post_init__(self) -> None:
        if self.transitions is None:
            self.transitions = []

    def _transition(self, time: float, trust: bool) -> None:
        self.transitions.append((time, trust))
        self.trusting = trust
        self.n_transitions += 1
        if not trust:
            self.n_suspicions += 1
        # Amortized compaction: let the tail grow to 2x the retention
        # bound, then cut it back in one O(max_retained) slice.
        if (
            self.max_retained is not None
            and len(self.transitions) > 2 * self.max_retained
        ):
            del self.transitions[: len(self.transitions) - self.max_retained]
            self.retained_from = self.n_transitions - len(self.transitions)

    # ------------------------------------------------------------------
    # O(1) accounting / bounded-memory API (live-monitor hot path)
    # ------------------------------------------------------------------
    def set_retention(self, max_retained: int | None) -> None:
        """Bound the retained transition log to ``max_retained`` entries.

        ``None`` disables compaction (the default: full history kept).
        Counters and :meth:`transitions_since` cursors are absolute, so
        enabling retention never corrupts accounting — only entries older
        than the retained tail become unavailable to re-reads.
        """
        if max_retained is not None and max_retained < 1:
            raise ValueError(f"max_retained must be positive, got {max_retained}")
        self.max_retained = max_retained

    def transitions_since(self, cursor: int) -> Tuple[List[Tuple[float, bool]], int]:
        """Return ``(new transitions, new cursor)`` past absolute ``cursor``.

        The cursor counts transitions ever recorded (start at 0); feeding
        the returned cursor back yields only entries recorded in between —
        an O(new) drain that never copies the full log.  Entries compacted
        away before being drained are skipped (eager drainers never lose
        any: compaction only ever drops the oldest half of the tail).
        """
        start = max(cursor - self.retained_from, 0)
        return self.transitions[start:], self.n_transitions

    def on_heartbeat(self, arrival: float, deadline: float) -> None:
        """Record an accepted heartbeat and the deadline it establishes.

        Calls must be in non-decreasing ``arrival`` order.
        """
        if self.last_event_time is not None and arrival < self.last_event_time:
            raise ValueError(
                f"heartbeats must be fed in time order "
                f"({arrival} < {self.last_event_time})"
            )
        if self.start_time is None:
            self.start_time = arrival
        # Did the previous deadline expire strictly before this arrival?
        # (A message arriving exactly at the freshness point renews trust
        # without a measurable suspicion period.)
        if self.trusting and self.deadline is not None and self.deadline < arrival:
            self._transition(self.deadline, False)
        # Apply the new deadline (Alg. 1 line 20: trust iff t < τ_{l+1}).
        if arrival < deadline:
            if not self.trusting:
                self._transition(arrival, True)
        else:
            if self.trusting:
                self._transition(arrival, False)
        self.deadline = deadline
        self.last_event_time = arrival

    def advance_to(self, now: float) -> None:
        """Apply any deadline expiry that happened up to time ``now``.

        Online users (the simulator, the service) call this before querying
        the output so an expiry between heartbeats is materialized as an
        S-transition at the expiry instant, exactly as Alg. 1 line 10 does.
        """
        if self.last_event_time is not None and now < self.last_event_time:
            raise ValueError(f"cannot advance backwards ({now} < {self.last_event_time})")
        # Strict: a deadline landing exactly on ``now`` opens a zero-length
        # suspicion interval, which contributes no transition (matching the
        # vectorized metrics kernel and the measure-zero convention).
        if self.trusting and self.deadline is not None and self.deadline < now:
            self._transition(self.deadline, False)
        if self.start_time is not None:
            self.last_event_time = max(self.last_event_time or now, now)

    def output_at(self, now: float) -> bool:
        """Current output: ``True`` = trust.  Does not mutate state."""
        if self.deadline is None:
            return False
        return now < self.deadline

    def finalize(self, end_time: float) -> List[Tuple[float, bool]]:
        """Close the observation window at ``end_time`` and return transitions."""
        self.advance_to(end_time)
        return list(self.transitions)
