"""The paper's contribution: the Two-Window / Multiple-Windows FD.

- :mod:`repro.core.windows` — O(1) sliding-window accumulators,
- :mod:`repro.core.estimation` — Chen's expected-arrival estimator (Eq. 2),
  online and vectorized,
- :mod:`repro.core.arrivalstats` — shared per-peer arrival statistics:
  one set of windows pushed once per accepted heartbeat, consumed by every
  detector whose window configuration matches (§V estimate-once semantics),
- :mod:`repro.core.freshness` — freshness-point output semantics shared by
  every detector (trust iff a fresh message exists),
- :mod:`repro.core.twofd` — :class:`TwoWindowFailureDetector` (2W-FD,
  Alg. 1 with two windows, Eq. 12) and the generalized
  :class:`MultiWindowFailureDetector`.
"""

from repro.core.arrivalstats import SharedArrivalState
from repro.core.base import HeartbeatFailureDetector
from repro.core.estimation import ArrivalEstimator, expected_arrivals, windowed_means
from repro.core.freshness import FreshnessOutput
from repro.core.twofd import MultiWindowFailureDetector, TwoWindowFailureDetector
from repro.core.windows import SlidingWindow

__all__ = [
    "ArrivalEstimator",
    "FreshnessOutput",
    "HeartbeatFailureDetector",
    "MultiWindowFailureDetector",
    "SharedArrivalState",
    "SlidingWindow",
    "TwoWindowFailureDetector",
    "expected_arrivals",
    "windowed_means",
]
