"""The Two-Window Failure Detector (2W-FD) — the paper's contribution.

The 2W-FD (Alg. 1; published as 2W-FD, described in the dissertation as the
Multiple Windows FD) is a variation of Chen's detector that keeps **two**
arrays of recent heartbeat arrival times instead of one:

- a *short-term* window (size n1, best at 1) that reacts instantly to a
  sudden slowdown — after one late heartbeat its expected-arrival estimate
  jumps, stretching subsequent freshness points through the burst; and
- a *long-term* window (size n2, best at ≥ 1000) that is insensitive to
  momentary fluctuations and keeps estimates conservative when the most
  recent heartbeats happen to be fast.

On each accepted heartbeat both windows produce an Eq. 2 estimate of the
next arrival, and the freshness point uses the **maximum** (Eq. 12):

    τ_{l+1} = max(EA_{l+1}(n1), EA_{l+1}(n2)) + Δto

Because the max can only postpone each freshness point relative to either
single-window Chen detector, the 2W-FD's mistakes are exactly the
*intersection* of the mistakes Chen's FD would make with each window
(Eq. 13) — a property the test suite asserts verbatim.

:class:`MultiWindowFailureDetector` generalizes to any number of windows
(the dissertation's framing; every statement above holds per window).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro._validation import ensure_int_at_least, ensure_non_negative
from repro.core.base import HeartbeatFailureDetector
from repro.core.estimation import ArrivalEstimator

__all__ = ["MultiWindowFailureDetector", "TwoWindowFailureDetector"]


class MultiWindowFailureDetector(HeartbeatFailureDetector):
    """Chen-style detector taking the max EA estimate over k windows.

    Parameters
    ----------
    interval:
        Heartbeat interval Δi (seconds).
    window_sizes:
        Sizes of the arrival-time windows (Alg. 1 keeps ``A(n_1)``,
        ``A(n_2)``; any positive count of windows is accepted).
    safety_margin:
        The constant Δto added to the max expected arrival (Eq. 12),
        chosen from the application's detection-time requirement
        (``T_D = Δi + Δto``; see §V-A).
    """

    name = "mw-fd"

    #: All estimation state is the shared windows themselves: once bound,
    #: _update has nothing left to do (the batched fast path relies on it).
    shared_update_noop = True

    def __init__(
        self,
        interval: float,
        window_sizes: Sequence[int],
        safety_margin: float,
    ):
        super().__init__(interval)
        sizes = tuple(ensure_int_at_least(w, 1, "window size") for w in window_sizes)
        if not sizes:
            raise ValueError("at least one window size is required")
        self._window_sizes = sizes
        self._safety_margin = ensure_non_negative(safety_margin, "safety_margin")
        self._estimators = tuple(ArrivalEstimator(w, interval) for w in sizes)

    @property
    def window_sizes(self) -> Tuple[int, ...]:
        """The configured window sizes."""
        return self._window_sizes

    @property
    def safety_margin(self) -> float:
        """The constant safety margin Δto (seconds)."""
        return self._safety_margin

    def bind_shared_arrivals(self, stats) -> bool:
        """Consume shared Eq. 2 windows (one per configured size)."""
        if stats.interval != self.interval or self.largest_seq:
            return False
        self._estimators = tuple(
            stats.estimator(w) for w in self._window_sizes
        )
        self.shared_arrivals = True
        return True

    def _update(self, seq: int, arrival: float) -> None:
        if self.shared_arrivals:
            return  # the shared state is pushed once, upstream
        for estimator in self._estimators:
            estimator.observe(seq, arrival)

    def _deadline(self, seq: int, arrival: float) -> float:
        # Eq. 12: the freshness point for m_{l+1} uses the max estimate.
        # The per-window shift Δi·(l+1) is common to every estimate, so
        # max over the window means then one shift — bitwise identical
        # (x ↦ x + shift is monotone and each estimate is mean + shift)
        # and k−1 fewer multiply-adds than maxing the full estimates.
        # The window means are read inline (SlidingWindow.mean() verbatim;
        # never empty here — _deadline only runs on accepted heartbeats).
        best = None
        for est in self._estimators:
            w = est._window
            m = w._baseline + w._sum / w._count
            if best is None or m > best:
                best = m
        return best + self._interval * (seq + 1) + self._safety_margin

    def expected_arrivals(self, seq: int) -> Tuple[float, ...]:
        """Per-window EA estimates for heartbeat ``m_seq`` (diagnostics)."""
        return tuple(est.expected_arrival(seq) for est in self._estimators)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(interval={self.interval}, "
            f"window_sizes={self._window_sizes}, "
            f"safety_margin={self._safety_margin})"
        )


class TwoWindowFailureDetector(MultiWindowFailureDetector):
    """The published 2W-FD: one short-term and one long-term window.

    Defaults follow the paper's evaluation (§IV-C1/C2): the best observed
    configuration is a short window of 1 sample and a long window of 1000
    samples, beyond which further accuracy gains are negligible.
    """

    name = "2w-fd"

    def __init__(
        self,
        interval: float,
        safety_margin: float,
        short_window: int = 1,
        long_window: int = 1000,
    ):
        short_window = ensure_int_at_least(short_window, 1, "short_window")
        long_window = ensure_int_at_least(long_window, 1, "long_window")
        if short_window > long_window:
            raise ValueError(
                f"short_window ({short_window}) must not exceed "
                f"long_window ({long_window})"
            )
        super().__init__(interval, (short_window, long_window), safety_margin)

    @property
    def short_window(self) -> int:
        return self.window_sizes[0]

    @property
    def long_window(self) -> int:
        return self.window_sizes[1]
