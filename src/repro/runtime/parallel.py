"""Process-parallel ``map`` with deterministic ordering and serial fallback.

The evaluation pipeline's outer loops — seeds, registry entries, detector
sweeps — are embarrassingly parallel but CPU-bound in NumPy, so threads
don't help; :func:`pmap` runs them through a :class:`ProcessPoolExecutor`.

Job-count resolution (:func:`resolve_jobs`):

1. an explicit ``jobs`` argument wins (CLI ``--jobs`` routes here);
2. else the ``REPRO_JOBS`` environment variable;
3. else 1 (serial — no surprise process pools inside user code or tests).

``jobs <= 0`` means "all cores".  :func:`pmap` degrades to the plain serial
loop whenever parallelism cannot help or cannot work: one job, one item, an
unpicklable function/item (e.g. a closure), or a broken pool.  Results are
always in input order, and serial vs parallel execution returns identical
values — property-tested in ``tests/runtime/test_parallel.py``.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Sequence, TypeVar

__all__ = ["pmap", "resolve_jobs"]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve the effective worker count (see module docstring)."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def _picklable(*objects: object) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
        return True
    except Exception:
        return False


def pmap(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    *,
    chunksize: int = 1,
) -> List[R]:
    """``[fn(x) for x in items]``, optionally across worker processes.

    Results are returned in input order regardless of completion order.
    Falls back to the serial loop when ``jobs`` resolves to 1, there is at
    most one item, ``fn``/items don't pickle, or the pool breaks — so
    callers never need a serial code path of their own.
    """
    work: Sequence[T] = list(items)
    n_jobs = min(resolve_jobs(jobs), len(work))
    if n_jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    if not _picklable(fn, work):
        return [fn(item) for item in work]
    try:
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            return list(pool.map(fn, work, chunksize=max(1, chunksize)))
    except (BrokenProcessPool, pickle.PicklingError, OSError):
        return [fn(item) for item in work]
