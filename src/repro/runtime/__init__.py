"""Execution runtime: process-parallel mapping and the on-disk result cache.

This package holds the machinery that scales the evaluation pipeline
(`docs/performance.md`): :mod:`repro.runtime.parallel` fans independent
replay jobs out over worker processes, :mod:`repro.runtime.cache` skips
regenerating synthetic traces and kernel statistics across runs.
"""

from repro.runtime.parallel import pmap, resolve_jobs
from repro.runtime.cache import (
    cache_dir,
    cache_enabled,
    cache_info,
    cached_pickle,
    cached_trace,
    clear_cache,
    trace_digest,
)

__all__ = [
    "pmap",
    "resolve_jobs",
    "cache_dir",
    "cache_enabled",
    "cache_info",
    "cached_pickle",
    "cached_trace",
    "clear_cache",
    "trace_digest",
]
