"""Content-addressed on-disk cache for traces and kernel statistics.

Synthetic traces are deterministic functions of (generator, params, seed),
and kernel statistics are deterministic functions of (trace bytes, kernel
class, structural kwargs) — so both can be cached by the SHA-256 of a
canonical key and reloaded instead of regenerated.  Generating the full
WAN trace costs tens of seconds; loading its ``.npz`` costs tens of
milliseconds.

Layout (under :func:`cache_dir`)::

    traces/<generator>-<digest16>.npz     serialized HeartbeatTrace
    kernels/<class>-<digest16>.pkl        pickled DeadlineKernel

The cache is **opt-in**: it activates when ``REPRO_CACHE`` is truthy or
``REPRO_CACHE_DIR`` is set (the latter also picks the location; default is
``$XDG_CACHE_HOME/repro-fd`` or ``~/.cache/repro-fd``).  Writes go through
a temp file + :func:`os.replace`, so concurrent runs never observe a
partial entry.  ``repro-fd cache {info,clear}`` inspects and empties it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from pathlib import Path
from typing import Any, Callable, Dict, Mapping

from repro.traces.trace import HeartbeatTrace

__all__ = [
    "cache_dir",
    "cache_enabled",
    "cache_info",
    "cached_pickle",
    "cached_trace",
    "clear_cache",
    "trace_digest",
]

CACHE_ENV = "REPRO_CACHE"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_FALSY = {"", "0", "false", "no", "off"}


def cache_enabled() -> bool:
    """True when the on-disk cache should be used (opt-in via environment)."""
    flag = os.environ.get(CACHE_ENV, "").strip().lower()
    if flag and flag not in _FALSY:
        return True
    if flag in _FALSY and flag:
        return False
    return bool(os.environ.get(CACHE_DIR_ENV, "").strip())


def cache_dir() -> Path:
    """Cache root (not created until something is stored)."""
    explicit = os.environ.get(CACHE_DIR_ENV, "").strip()
    if explicit:
        return Path(explicit)
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    root = Path(xdg) if xdg else Path.home() / ".cache"
    return root / "repro-fd"


def _canonical_key(params: Mapping[str, Any]) -> str:
    return json.dumps(params, sort_keys=True, separators=(",", ":"), default=repr)


def _digest(params: Mapping[str, Any]) -> str:
    return hashlib.sha256(_canonical_key(params).encode()).hexdigest()[:16]


def trace_digest(trace: HeartbeatTrace) -> str:
    """Content digest of a trace's replay-relevant data (not its meta)."""
    h = hashlib.sha256()
    h.update(np_bytes(trace.seq))
    h.update(np_bytes(trace.arrival))
    h.update(
        _canonical_key(
            {
                "interval": trace.interval,
                "n_sent": trace.n_sent,
                "end_time": trace.end_time,
            }
        ).encode()
    )
    return h.hexdigest()[:16]


def np_bytes(arr) -> bytes:
    import numpy as np

    return np.ascontiguousarray(arr).tobytes()


def _atomic_replace(tmp: Path, final: Path) -> None:
    final.parent.mkdir(parents=True, exist_ok=True)
    os.replace(tmp, final)


def cached_trace(
    generator: str,
    params: Mapping[str, Any],
    builder: Callable[[], HeartbeatTrace],
) -> HeartbeatTrace:
    """Build-or-load a synthetic trace keyed on (generator, params).

    ``params`` must include everything that determines the trace (scale,
    seed, ...); the builder runs only on a cache miss (or when caching is
    disabled).
    """
    if not cache_enabled():
        return builder()
    from repro.traces.io import load_trace, save_trace

    digest = _digest({"generator": generator, **dict(params)})
    path = cache_dir() / "traces" / f"{generator}-{digest}.npz"
    if path.exists():
        try:
            return load_trace(path)
        except Exception:
            path.unlink(missing_ok=True)  # corrupt entry: rebuild below
    trace = builder()
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
    save_trace(trace, tmp)
    _atomic_replace(tmp, path)
    return trace


def cached_pickle(
    category: str,
    name: str,
    key: Mapping[str, Any],
    builder: Callable[[], Any],
) -> Any:
    """Generic build-or-load of a picklable object under ``category/``.

    Used for kernel statistics keyed on (trace digest, kernel class,
    structural kwargs); anything deterministic and picklable qualifies.
    """
    if not cache_enabled():
        return builder()
    digest = _digest(dict(key))
    path = cache_dir() / category / f"{name}-{digest}.pkl"
    if path.exists():
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except Exception:
            path.unlink(missing_ok=True)
    obj = builder()
    try:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return obj  # unpicklable results are simply not cached
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp")
    tmp.write_bytes(payload)
    _atomic_replace(tmp, path)
    return obj


def cache_info() -> Dict[str, Any]:
    """Per-category entry counts and byte totals (for ``repro-fd cache info``)."""
    root = cache_dir()
    categories: Dict[str, Dict[str, int]] = {}
    total_bytes = 0
    if root.is_dir():
        for sub in sorted(p for p in root.iterdir() if p.is_dir()):
            files = [p for p in sub.iterdir() if p.is_file() and not p.name.startswith(".")]
            size = sum(p.stat().st_size for p in files)
            categories[sub.name] = {"entries": len(files), "bytes": size}
            total_bytes += size
    return {
        "dir": str(root),
        "enabled": cache_enabled(),
        "categories": categories,
        "total_bytes": total_bytes,
    }


def clear_cache() -> int:
    """Delete the cache directory; returns the number of bytes freed."""
    info = cache_info()
    root = cache_dir()
    if root.is_dir():
        shutil.rmtree(root)
    return int(info["total_bytes"])
