"""A minimal, deterministic discrete-event scheduler.

Virtual time only — no wall-clock sleeps.  Events at equal times fire in
schedule order (a monotone tie-break counter guarantees stability, so
seeded simulations are exactly reproducible).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Tuple

__all__ = ["EventScheduler"]


class EventScheduler:
    """Priority-queue event loop over virtual time."""

    __slots__ = ("_queue", "_counter", "_now", "_cancelled")

    def __init__(self, start_time: float = 0.0):
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = float(start_time)
        self._cancelled: set[int] = set()

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule(self, time: float, action: Callable[[], None]) -> int:
        """Schedule ``action()`` at virtual ``time``; returns a handle.

        Scheduling in the past is an error — it would silently reorder
        causality.
        """
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now ({self._now})")
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time}")
        handle = next(self._counter)
        heapq.heappush(self._queue, (float(time), handle, action))
        return handle

    def schedule_after(self, delay: float, action: Callable[[], None]) -> int:
        """Schedule ``action()`` ``delay`` seconds from now."""
        return self.schedule(self._now + delay, action)

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled event (lazy removal)."""
        self._cancelled.add(handle)

    def peek_time(self) -> float | None:
        """Time of the next pending event, or None when empty."""
        while self._queue and self._queue[0][1] in self._cancelled:
            _, handle, _ = heapq.heappop(self._queue)
            self._cancelled.discard(handle)
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._queue:
            time, handle, action = heapq.heappop(self._queue)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self._now = time
            action()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run all events with time ≤ ``end_time``; advance now to it."""
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > end_time:
                break
            self.step()
        self._now = max(self._now, float(end_time))

    def run(self, max_events: int = 100_000_000) -> None:
        """Drain the queue (bounded by ``max_events`` as a runaway guard)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError(f"exceeded {max_events} events; runaway simulation?")
