"""Simulated processes: heartbeat sender, channel, and monitor.

Mirrors the paper's model exactly: process p sends heartbeat ``m_i`` at time
``i·Δi`` on its own (possibly skewed/drifting) clock (Alg. 1 lines 1-3);
the channel applies per-message loss and delay; the monitor q timestamps
arrivals with *its* clock and forwards them to its online detectors.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple

import numpy as np

from repro._validation import ensure_positive
from repro.core.base import HeartbeatFailureDetector
from repro.net.clock import ClockModel, PerfectClock
from repro.net.delays import DelayModel
from repro.net.loss import LossModel, NoLoss
from repro.sim.scheduler import EventScheduler

__all__ = ["Channel", "HeartbeatSender", "Monitor"]


class Channel:
    """A unidirectional lossy/delaying channel inside the event loop.

    ``send`` decides the message's fate immediately (one loss-stream step,
    one delay draw) and schedules delivery; messages may overtake each other
    (UDP reordering) since each draws an independent delay.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        delay_model: DelayModel,
        rng: np.random.Generator,
        loss_model: LossModel | None = None,
    ):
        self._scheduler = scheduler
        self._delay_model = delay_model
        self._loss_stream: Iterator[bool] = (loss_model or NoLoss()).stream(rng)
        self._rng = rng
        self.n_sent = 0
        self.n_lost = 0

    @property
    def delay_model(self) -> DelayModel:
        return self._delay_model

    def send(self, send_time: float, deliver: Callable[[float], None]) -> None:
        """Push one message; ``deliver(arrival_time)`` fires if not lost."""
        self.n_sent += 1
        if not next(self._loss_stream):
            self.n_lost += 1
            return
        delay = float(self._delay_model.sample(self._rng, 1)[0])
        if delay < 0:
            raise ValueError("delay model produced a negative delay")
        arrival = send_time + delay
        self._scheduler.schedule(arrival, lambda: deliver(arrival))


class HeartbeatSender:
    """Process p: sends ``m_i`` at ``i·Δi`` (its clock) until it crashes.

    The channel sees *receiver-clock* send instants via ``clock`` so that
    delays compose with skew exactly as in :class:`repro.net.link.Link`.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        channel: Channel,
        interval: float,
        receive: Callable[[int, float], None],
        clock: ClockModel | None = None,
        crash_time: float | None = None,
    ):
        self._scheduler = scheduler
        self._channel = channel
        self._interval = ensure_positive(interval, "interval")
        self._receive = receive
        self._clock = clock or PerfectClock()
        self.crash_time = crash_time
        self.crashed = False
        self.n_heartbeats = 0
        self._next_seq = 1

    @property
    def interval(self) -> float:
        return self._interval

    def start(self) -> None:
        """Schedule the first heartbeat (at Δi, per Alg. 1 line 2)."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        send_local = self._next_seq * self._interval  # p's clock
        if self.crash_time is not None and send_local > self.crash_time:
            self.crashed = True
            return
        send_global = float(self._clock.to_local(send_local))
        self._scheduler.schedule(send_global, self._emit)

    def _emit(self) -> None:
        seq = self._next_seq
        self.n_heartbeats += 1
        send_global = self._scheduler.now
        self._channel.send(
            send_global, lambda arrival, s=seq: self._receive(s, arrival)
        )
        self._next_seq += 1
        self._schedule_next()


class Monitor:
    """Process q: fans received heartbeats out to named online detectors.

    Also logs the raw ``(seq, arrival)`` stream so a simulation can be
    re-analysed offline with :mod:`repro.replay` (the paper's methodology:
    log once, replay every algorithm over identical conditions).
    """

    def __init__(self, detectors: Dict[str, HeartbeatFailureDetector]):
        if not detectors:
            raise ValueError("a monitor needs at least one detector")
        self._detectors = dict(detectors)
        self.log: List[Tuple[int, float]] = []

    @property
    def detectors(self) -> Dict[str, HeartbeatFailureDetector]:
        return dict(self._detectors)

    def receive(self, seq: int, arrival: float) -> None:
        """Deliver one heartbeat to every detector and the log."""
        self.log.append((seq, arrival))
        for det in self._detectors.values():
            det.receive(seq, arrival)

    def outputs_at(self, now: float) -> Dict[str, bool]:
        """Each detector's current output (True = trust)."""
        return {name: det.is_trusting(now) for name, det in self._detectors.items()}

    def finalize(self, end_time: float) -> Dict[str, list]:
        """Close all detectors' observation windows; return transitions."""
        return {
            name: det.finalize(end_time) for name, det in self._detectors.items()
        }
