"""One-call simulation driver.

:func:`simulate` wires a :class:`HeartbeatSender`, :class:`Channel` and
:class:`Monitor` into an :class:`EventScheduler`, runs for ``duration``
(virtual) seconds, optionally crashes p at ``crash_time``, and returns:

- the recorded heartbeat trace (replayable with :mod:`repro.replay`),
- each detector's output timeline and accuracy metrics over the pre-crash
  period (where every suspicion is a mistake, per the §II-A model), and
- for crashed runs, each detector's *real* detection time — the interval
  from the crash to its final S-transition (Fig. 1's T_D, measured on an
  actual crash rather than a virtual one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

import numpy as np

from repro._validation import ensure_positive
from repro.core.base import HeartbeatFailureDetector
from repro.net.clock import ClockModel
from repro.net.delays import DelayModel
from repro.net.loss import LossModel
from repro.qos.metrics import QoSMetrics, compute_metrics
from repro.qos.timeline import OutputTimeline
from repro.sim.processes import Channel, HeartbeatSender, Monitor
from repro.sim.scheduler import EventScheduler
from repro.traces.trace import HeartbeatTrace

__all__ = ["CrashReport", "SimulationResult", "simulate"]

DetectorFactory = Callable[[float], HeartbeatFailureDetector]


@dataclass(frozen=True)
class CrashReport:
    """One detector's view of the injected crash."""

    crash_time: float
    suspected_at: float
    detection_time: float
    permanently_suspecting: bool


@dataclass(frozen=True)
class SimulationResult:
    """Everything one simulation run produced."""

    trace: HeartbeatTrace
    duration: float
    crash_time: float | None
    n_sent: int
    n_lost: int
    timelines: Dict[str, OutputTimeline]
    metrics: Dict[str, QoSMetrics]
    crash_reports: Dict[str, CrashReport]

    @property
    def detector_names(self) -> tuple:
        return tuple(self.timelines)


def simulate(
    detector_factories: Mapping[str, DetectorFactory],
    *,
    interval: float,
    duration: float,
    delay_model: DelayModel,
    loss_model: LossModel | None = None,
    sender_clock: ClockModel | None = None,
    crash_time: float | None = None,
    seed: int | np.random.Generator | None = None,
) -> SimulationResult:
    """Run one live monitoring simulation.

    Parameters
    ----------
    detector_factories:
        ``name -> factory(interval)`` for the online detectors q runs (all
        observe the identical message stream, the paper's §IV-A setup).
    interval:
        Heartbeat interval Δi (p's clock).
    duration:
        Virtual observation length in seconds.
    delay_model, loss_model:
        Channel behaviour.
    sender_clock:
        p's clock relative to q's (skew/drift); default perfect.
    crash_time:
        If given, p sends no heartbeat after this instant (p's clock).
    seed:
        RNG seed for full determinism.
    """
    ensure_positive(interval, "interval")
    ensure_positive(duration, "duration")
    if crash_time is not None and crash_time <= 0:
        raise ValueError(f"crash_time must be positive, got {crash_time}")
    rng = np.random.default_rng(seed)
    scheduler = EventScheduler()
    detectors = {
        name: factory(interval) for name, factory in detector_factories.items()
    }
    monitor = Monitor(detectors)
    channel = Channel(scheduler, delay_model, rng, loss_model)
    sender = HeartbeatSender(
        scheduler,
        channel,
        interval,
        monitor.receive,
        clock=sender_clock,
        crash_time=crash_time,
    )
    sender.start()
    scheduler.run_until(duration)

    if not monitor.log:
        raise RuntimeError(
            "no heartbeat reached the monitor; lossier than simulable"
        )
    seqs = np.array([s for s, _ in monitor.log], dtype=np.int64)
    arrivals = np.array([a for _, a in monitor.log])
    order = np.argsort(arrivals, kind="stable")
    trace = HeartbeatTrace(
        seq=seqs[order],
        arrival=arrivals[order],
        interval=interval,
        n_sent=sender.n_heartbeats,
        end_time=duration,
        meta={"generator": "simulate", "crash_time": crash_time},
    )

    transitions = monitor.finalize(duration)
    first_arrival = float(arrivals.min())
    # Accuracy metrics only make sense while p is alive: truncate at the
    # crash when one is injected.
    metrics_end = duration if crash_time is None else min(duration, crash_time)
    timelines: Dict[str, OutputTimeline] = {}
    metrics: Dict[str, QoSMetrics] = {}
    crash_reports: Dict[str, CrashReport] = {}
    for name, trans in transitions.items():
        full = OutputTimeline.from_transitions(trans, start=first_arrival, end=duration)
        timelines[name] = full
        if metrics_end > first_arrival:
            metrics[name] = compute_metrics(full.restricted(first_arrival, metrics_end))
        if crash_time is not None:
            crash_reports[name] = _crash_report(full, crash_time, duration)
    return SimulationResult(
        trace=trace,
        duration=duration,
        crash_time=crash_time,
        n_sent=sender.n_heartbeats,
        n_lost=channel.n_lost,
        timelines=timelines,
        metrics=metrics,
        crash_reports=crash_reports,
    )


def _crash_report(
    timeline: OutputTimeline, crash_time: float, duration: float
) -> CrashReport:
    """Locate the final S-transition after the crash (Fig. 1's T_D)."""
    s_times = timeline.s_transition_times()
    t_times = timeline.times[timeline.states]
    after_t = t_times[t_times > crash_time]
    after_s = s_times[s_times >= crash_time]
    if after_s.size:
        final_s = float(after_s[-1])
        # Permanent iff no T-transition follows the last S-transition.
        permanent = not np.any(t_times > final_s)
        suspected_at = final_s if permanent else float("inf")
    else:
        # Already suspecting at the crash and never trusted again?
        already_suspecting = not timeline.state_at(min(crash_time, timeline.end))
        if already_suspecting and after_t.size == 0:
            suspected_at = crash_time  # T_D = 0: it was (wrongly, then rightly) suspecting
            permanent = True
        else:
            suspected_at = float("inf")
            permanent = False
    return CrashReport(
        crash_time=crash_time,
        suspected_at=suspected_at,
        detection_time=suspected_at - crash_time,
        permanently_suspecting=permanent,
    )
