"""Discrete-event simulation of the two-process monitoring system.

The paper's QoS model (§II-A1) is a monitored process p and a monitor q
joined by a lossy, delaying channel.  This subpackage simulates that system
*live* (virtual time, seeded randomness): p emits heartbeats until an
optional crash; the channel delays/drops them; q runs any number of online
detectors and logs their outputs.  Unlike :mod:`repro.replay`, which recombs
recorded arrival times, the simulator exercises the detectors' online code
paths — including real crash detection, which trace replay can only
approximate with virtual crashes.

- :mod:`repro.sim.scheduler` — the event loop (virtual time, heapq),
- :mod:`repro.sim.processes` — heartbeat sender, channel, monitor,
- :mod:`repro.sim.runner` — one-call experiment driver returning the
  recorded trace, per-detector QoS metrics, and crash-detection outcomes.
"""

from repro.sim.processes import Channel, HeartbeatSender, Monitor
from repro.sim.runner import CrashReport, SimulationResult, simulate
from repro.sim.scheduler import EventScheduler

__all__ = [
    "Channel",
    "CrashReport",
    "EventScheduler",
    "HeartbeatSender",
    "Monitor",
    "SimulationResult",
    "simulate",
]
