"""Unsynchronized clock models.

The paper's estimation machinery (Eq. 2 and §V-A1) is explicitly designed to
work when the clocks of the monitored process *p* and the monitor *q* are not
synchronized: a constant skew shifts every normalized arrival by the same
amount and cancels out of freshness-point *differences*, and the variance of
``A - S`` equals the delay variance regardless of skew.

These models let trace generators and the discrete-event simulator express
"time at q" as a function of "time at p", so tests can assert the
skew-invariance properties (DESIGN.md invariant 4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["ClockModel", "PerfectClock", "DriftingClock"]


class ClockModel(ABC):
    """Maps an instant on the reference (p's) clock to q's clock."""

    @abstractmethod
    def to_local(self, t: np.ndarray | float) -> np.ndarray | float:
        """Convert reference time(s) to local (q) time(s)."""


@dataclass(frozen=True)
class PerfectClock(ClockModel):
    """Identity clock: q's clock equals p's clock."""

    def to_local(self, t: np.ndarray | float) -> np.ndarray | float:
        return t


@dataclass(frozen=True)
class DriftingClock(ClockModel):
    """Affine clock: ``local = offset + (1 + drift) * t``.

    ``offset`` is the skew in seconds; ``drift`` the frequency error (e.g.
    50e-6 for a 50 ppm crystal).  A pure offset leaves every QoS metric
    unchanged; a drift changes the *effective* heartbeat interval seen by q
    by a factor ``1 + drift``, which the windowed estimators absorb.
    """

    offset: float = 0.0
    drift: float = 0.0

    def __post_init__(self) -> None:
        if not np.isfinite(self.offset):
            raise ValueError("offset must be finite")
        if not np.isfinite(self.drift) or self.drift <= -1.0:
            raise ValueError("drift must be finite and > -1")

    def to_local(self, t: np.ndarray | float) -> np.ndarray | float:
        return self.offset + (1.0 + self.drift) * np.asarray(t, dtype=np.float64)
