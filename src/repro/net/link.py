"""A composable unidirectional link.

:class:`Link` bundles a delay model, a loss model, and the receiver's clock
model into the single object trace generators and the simulator need: given
the send times of a batch of messages (on the sender's clock), it decides
which are delivered and when they arrive (on the receiver's clock).

UDP semantics are modelled faithfully: messages may be lost and may be
*reordered* (a message sent later can arrive earlier if its delay is smaller
by more than the sending gap).  The failure-detector algorithms in the paper
all discard non-sequence-increasing messages (Alg. 1 line 13), so reordering
matters and must be representable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro._validation import ensure_1d_float_array
from repro.net.clock import ClockModel, PerfectClock
from repro.net.delays import ConstantDelay, DelayModel
from repro.net.loss import LossModel, NoLoss

__all__ = ["Link", "LinkTransmission"]


class LinkTransmission(NamedTuple):
    """The outcome of pushing a batch of messages through a link.

    Attributes
    ----------
    delivered:
        Boolean mask over the input batch; ``True`` where the message arrived.
    arrival:
        Arrival times (receiver clock) for delivered messages only, in
        *send order* (not arrival order — callers sort when building traces).
    delay:
        One-way delays experienced by delivered messages (same order).
    """

    delivered: np.ndarray
    arrival: np.ndarray
    delay: np.ndarray


@dataclass(frozen=True)
class Link:
    """A lossy, delaying, clock-skewed unidirectional channel."""

    delay_model: DelayModel = field(default_factory=ConstantDelay)
    loss_model: LossModel = field(default_factory=NoLoss)
    receiver_clock: ClockModel = field(default_factory=PerfectClock)

    def transmit(self, send_times: np.ndarray, rng: np.random.Generator) -> LinkTransmission:
        """Send a batch of messages at ``send_times`` (sender clock).

        Loss is sampled for *every* message (the loss process is positional,
        so bursty models drop consecutive messages); delays are sampled only
        for delivered ones.
        """
        send_times = ensure_1d_float_array(send_times, "send_times")
        n = len(send_times)
        delivered = self.loss_model.sample(rng, n)
        n_delivered = int(delivered.sum())
        delays = self.delay_model.sample(rng, n_delivered)
        if np.any(delays < 0):
            raise ValueError(
                f"delay model {self.delay_model!r} produced negative delays"
            )
        arrival = np.asarray(
            self.receiver_clock.to_local(send_times[delivered]), dtype=np.float64
        ) + delays
        return LinkTransmission(delivered=delivered, arrival=arrival, delay=delays)

    def mean_delay(self) -> float:
        """Expected one-way delay of a delivered message."""
        return self.delay_model.mean()

    def loss_rate(self) -> float:
        """Stationary message-loss probability."""
        return self.loss_model.loss_rate()
