"""A single-server queueing path: congestion that *emerges* from load.

:class:`SpikeDelay` injects correlated delay episodes by fiat.  This model
produces them mechanistically: messages traverse a propagation delay and
then a FIFO single-server queue (a bottleneck router).  Message *i*'s
departure obeys the Lindley/max-plus recursion

    depart_i = max(send_i + prop_i, depart_{i-1}) + service_i

so a burst of slow services backs the queue up and every following message
waits — exactly the queue-build-up-and-drain shape the paper's §III-A
bursts have, with the drain rate set by the service distribution rather
than hand-tuned profiles.

The recursion vectorizes: with ``S_i = cumsum(service)``,

    depart_i = S_i + max_{j ≤ i} (send_j + prop_j − S_{j−1})

i.e. a cumulative sum plus a running maximum (`numpy.maximum.accumulate`),
so generating millions of correlated delays costs three passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import ensure_1d_float_array
from repro.net.clock import ClockModel, PerfectClock
from repro.net.delays import ConstantDelay, DelayModel
from repro.net.link import LinkTransmission
from repro.net.loss import LossModel, NoLoss

__all__ = ["QueueingLink"]


@dataclass(frozen=True)
class QueueingLink:
    """A lossy path with propagation delay plus a FIFO bottleneck queue.

    Parameters
    ----------
    service_model:
        Per-message service-time distribution at the bottleneck.  The
        offered load is ``E[service]/Δi``; pushing it toward 1 produces
        long, realistic congestion episodes (and beyond 1, collapse).
    propagation_model:
        Delay before the queue (speed-of-light plus uncongested hops).
    loss_model:
        Messages lost *before* the queue (they consume no service).
    receiver_clock:
        q's clock, as in :class:`repro.net.link.Link`.

    Drop-in compatible with :class:`Link` for trace generation: exposes the
    same ``transmit`` signature.  FIFO order means this path never reorders.
    """

    service_model: DelayModel
    propagation_model: DelayModel = field(default_factory=ConstantDelay)
    loss_model: LossModel = field(default_factory=NoLoss)
    receiver_clock: ClockModel = field(default_factory=PerfectClock)

    def transmit(self, send_times: np.ndarray, rng: np.random.Generator) -> LinkTransmission:
        send_times = ensure_1d_float_array(send_times, "send_times")
        n = len(send_times)
        delivered = self.loss_model.sample(rng, n)
        m = int(delivered.sum())
        sends = send_times[delivered]
        prop = self.propagation_model.sample(rng, m)
        service = self.service_model.sample(rng, m)
        if np.any(prop < 0) or np.any(service < 0):
            raise ValueError("delay models produced negative delays")
        # Lindley recursion, vectorized: depart = S + runmax(enter - S_prev).
        cum_service = np.cumsum(service)
        prev_cum = np.concatenate([[0.0], cum_service[:-1]])
        enter = sends + prop
        depart = cum_service + np.maximum.accumulate(enter - prev_cum)
        # Departures are instants on the shared physical timeline; the
        # receiver's clock maps them to its local scale.
        arrival = np.asarray(self.receiver_clock.to_local(depart), dtype=np.float64)
        return LinkTransmission(
            delivered=delivered, arrival=arrival, delay=arrival - sends
        )

    def mean_delay(self) -> float:
        """Uncongested (load → 0) mean delay: propagation plus one service."""
        return self.propagation_model.mean() + self.service_model.mean()

    def loss_rate(self) -> float:
        return self.loss_model.loss_rate()
