"""One-way message-delay models.

Each model draws vectors of independent (or, for :class:`SpikeDelay`,
positively correlated) one-way delays in seconds.  Models are small frozen
dataclasses so they can be embedded in trace-generation specs, compared in
tests, and repr-ed into experiment reports.

All sampling is vectorized: ``sample(rng, n)`` returns an ``(n,)`` float64
array and never loops in Python, following the HPC guide's
"vectorize the hot path" rule (trace synthesis touches millions of samples).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro._validation import ensure_non_negative, ensure_positive, ensure_probability

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "NormalDelay",
    "LogNormalDelay",
    "EmpiricalDelay",
    "ExponentialDelay",
    "GammaDelay",
    "ParetoDelay",
    "MixtureDelay",
    "SpikeDelay",
    "ShiftedDelay",
]


class DelayModel(ABC):
    """A distribution of one-way message delays (seconds, always >= 0)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` delays as a float64 array."""

    @abstractmethod
    def mean(self) -> float:
        """Expected delay in seconds."""

    def __call__(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.sample(rng, n)


@dataclass(frozen=True)
class ConstantDelay(DelayModel):
    """Every message takes exactly ``delay`` seconds."""

    delay: float = 0.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.delay, "delay")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, float(self.delay))

    def mean(self) -> float:
        return float(self.delay)


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    """Delays uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        ensure_non_negative(self.low, "low")
        if self.high < self.low:
            raise ValueError(f"high ({self.high}) must be >= low ({self.low})")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class NormalDelay(DelayModel):
    """Normal delays truncated below at ``minimum`` (rejection-free clip)."""

    mu: float
    sigma: float
    minimum: float = 0.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.mu, "mu")
        ensure_non_negative(self.sigma, "sigma")
        ensure_non_negative(self.minimum, "minimum")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        out = rng.normal(self.mu, self.sigma, size=n)
        np.maximum(out, self.minimum, out=out)
        return out

    def mean(self) -> float:
        # The clip bias is negligible for mu >> sigma, which is how this model
        # is used (LAN-style tightly concentrated delays).
        return float(self.mu)


@dataclass(frozen=True)
class LogNormalDelay(DelayModel):
    """Log-normal delays: ``exp(N(log_mu, log_sigma))`` — heavy right tail.

    ``log_mu``/``log_sigma`` are the parameters of the underlying normal.
    This is the base model for WAN one-way delays, whose empirical
    distributions are right-skewed.
    """

    log_mu: float
    log_sigma: float

    def __post_init__(self) -> None:
        ensure_positive(self.log_sigma, "log_sigma")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.log_mu, self.log_sigma, size=n)

    def mean(self) -> float:
        return float(np.exp(self.log_mu + 0.5 * self.log_sigma**2))


@dataclass(frozen=True)
class ExponentialDelay(DelayModel):
    """Exponential delays with mean ``scale`` (the ED FD's assumed model)."""

    scale: float

    def __post_init__(self) -> None:
        ensure_positive(self.scale, "scale")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self.scale, size=n)

    def mean(self) -> float:
        return float(self.scale)


@dataclass(frozen=True)
class GammaDelay(DelayModel):
    """Gamma delays with given ``shape`` and ``scale`` (mean = shape*scale)."""

    shape: float
    scale: float

    def __post_init__(self) -> None:
        ensure_positive(self.shape, "shape")
        ensure_positive(self.scale, "scale")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self.shape, self.scale, size=n)

    def mean(self) -> float:
        return float(self.shape * self.scale)


@dataclass(frozen=True)
class ParetoDelay(DelayModel):
    """Pareto (power-law tail) delays: ``minimum * (1 + Pareto(alpha))``.

    Used to inject the rare multi-second delay spikes the WAN trace exhibits.
    """

    alpha: float
    minimum: float

    def __post_init__(self) -> None:
        ensure_positive(self.alpha, "alpha")
        ensure_positive(self.minimum, "minimum")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.minimum * (1.0 + rng.pareto(self.alpha, size=n))

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return float("inf")
        return float(self.minimum * self.alpha / (self.alpha - 1.0))


@dataclass(frozen=True)
class MixtureDelay(DelayModel):
    """Finite mixture of delay models with given selection probabilities.

    The canonical WAN regime is ``MixtureDelay([(0.999, base), (0.001,
    spike)])``: almost all messages see the base log-normal delay, a small
    fraction see a heavy-tailed spike.
    """

    components: Tuple[Tuple[float, DelayModel], ...]

    def __init__(self, components: Sequence[Tuple[float, DelayModel]]):
        comps = tuple((float(w), m) for w, m in components)
        if not comps:
            raise ValueError("MixtureDelay requires at least one component")
        total = sum(w for w, _ in comps)
        if not np.isclose(total, 1.0):
            raise ValueError(f"mixture weights must sum to 1, got {total}")
        for w, _ in comps:
            ensure_probability(w, "mixture weight")
        object.__setattr__(self, "components", comps)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        weights = np.array([w for w, _ in self.components])
        choice = rng.choice(len(self.components), size=n, p=weights)
        out = np.empty(n, dtype=np.float64)
        for idx, (_, model) in enumerate(self.components):
            mask = choice == idx
            count = int(mask.sum())
            if count:
                out[mask] = model.sample(rng, count)
        return out

    def mean(self) -> float:
        return float(sum(w * m.mean() for w, m in self.components))


@dataclass(frozen=True)
class SpikeDelay(DelayModel):
    """Base delays plus *clustered* spikes (positively correlated congestion).

    With probability ``spike_rate`` a message *starts* a congestion episode;
    the episode then affects a geometric number of consecutive messages
    (mean ``spike_run``), each receiving an extra delay drawn from
    ``spike_model`` and decaying linearly over the episode.  This models
    queue build-up and drain, which independent mixtures cannot: bursty
    traffic delays *runs* of heartbeats, which is precisely the behaviour
    the two-window detector is designed to survive (paper §III-A).
    """

    base: DelayModel
    spike_model: DelayModel
    spike_rate: float
    spike_run: float = 5.0

    def __post_init__(self) -> None:
        ensure_probability(self.spike_rate, "spike_rate")
        ensure_positive(self.spike_run, "spike_run")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        out = self.base.sample(rng, n)
        if self.spike_rate == 0.0 or n == 0:
            return out
        starts = np.flatnonzero(rng.random(n) < self.spike_rate)
        if starts.size == 0:
            return out
        runs = rng.geometric(1.0 / self.spike_run, size=starts.size)
        peaks = self.spike_model.sample(rng, starts.size)
        extra = np.zeros(n, dtype=np.float64)
        for start, run, peak in zip(starts, runs, peaks):
            stop = min(start + int(run), n)
            length = stop - start
            # Linear drain of the congestion queue over the episode.
            profile = peak * (1.0 - np.arange(length) / max(length, 1))
            np.maximum(extra[start:stop], profile, out=extra[start:stop])
        return out + extra

    def mean(self) -> float:
        # Expected extra delay per message: each episode contributes roughly
        # spike_run * peak/2 spread over spike_run messages.
        return float(self.base.mean() + 0.5 * self.spike_rate * self.spike_run * self.spike_model.mean())


class EmpiricalDelay(DelayModel):
    """Bootstrap delays: i.i.d. resampling from an observed sample.

    Closes the loop between measurement and synthesis: extract relative
    delays from any recorded trace (``trace.normalized_arrivals() - min``)
    and generate new traffic with exactly that marginal distribution —
    useful when the paper's probabilistic models are too clean for a
    network you actually care about.  Correlations are *not* preserved
    (resampling is i.i.d.); wrap in :class:`SpikeDelay` to reintroduce
    clustered episodes.
    """

    __slots__ = ("_sample",)

    def __init__(self, sample):
        arr = np.asarray(sample, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("EmpiricalDelay needs a non-empty 1-D sample")
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise ValueError("sample delays must be finite and non-negative")
        self._sample = arr.copy()
        self._sample.setflags(write=False)

    @classmethod
    def from_trace(cls, trace) -> "EmpiricalDelay":
        """Build from a recorded trace's relative one-way delays."""
        normalized = trace.normalized_arrivals()
        return cls(normalized - normalized.min())

    @property
    def observations(self) -> np.ndarray:
        """The (read-only) observed sample being resampled."""
        return self._sample

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(self._sample, size=n, replace=True)

    def mean(self) -> float:
        return float(self._sample.mean())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EmpiricalDelay(n={self._sample.size}, mean={self.mean():.4g})"


@dataclass(frozen=True)
class ShiftedDelay(DelayModel):
    """A delay model shifted right by a constant propagation latency."""

    base: DelayModel
    shift: float = 0.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.shift, "shift")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.base.sample(rng, n) + self.shift

    def mean(self) -> float:
        return float(self.base.mean() + self.shift)
