"""Simulated network substrate.

The paper's experiments run failure detectors over logged heartbeat arrival
times collected on real WAN/LAN links.  Those trace files are not available
offline, so this subpackage provides the network models used to synthesize
statistically equivalent traces (see ``DESIGN.md``, Substitutions):

- :mod:`repro.net.delays` — one-way message-delay distributions,
- :mod:`repro.net.loss` — message-loss processes (Bernoulli and bursty
  Gilbert–Elliott),
- :mod:`repro.net.clock` — unsynchronized clocks with offset and drift,
- :mod:`repro.net.link` — a composable unidirectional link combining the
  three, which maps send times to (delivered?, arrival-time) pairs,
- :mod:`repro.net.queue` — a FIFO bottleneck-queue path whose congestion
  episodes *emerge* from offered load (Lindley recursion, vectorized).
"""

from repro.net.clock import ClockModel, DriftingClock, PerfectClock
from repro.net.delays import (
    ConstantDelay,
    DelayModel,
    EmpiricalDelay,
    ExponentialDelay,
    GammaDelay,
    LogNormalDelay,
    MixtureDelay,
    NormalDelay,
    ParetoDelay,
    ShiftedDelay,
    SpikeDelay,
    UniformDelay,
)
from repro.net.link import Link, LinkTransmission
from repro.net.queue import QueueingLink
from repro.net.loss import (
    BernoulliLoss,
    BurstLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
)

__all__ = [
    "BernoulliLoss",
    "BurstLoss",
    "ClockModel",
    "ConstantDelay",
    "DelayModel",
    "DriftingClock",
    "EmpiricalDelay",
    "ExponentialDelay",
    "GammaDelay",
    "GilbertElliottLoss",
    "Link",
    "LinkTransmission",
    "LogNormalDelay",
    "LossModel",
    "MixtureDelay",
    "NoLoss",
    "NormalDelay",
    "ParetoDelay",
    "PerfectClock",
    "QueueingLink",
    "ShiftedDelay",
    "SpikeDelay",
    "UniformDelay",
]
