"""Message-loss processes.

A loss model decides, for a sequence of sent messages, which ones the network
drops.  ``sample(rng, n)`` returns a boolean "delivered" mask of shape
``(n,)`` (``True`` = the message arrives).

Two families matter for the paper:

- independent :class:`BernoulliLoss`, the classical i.i.d. assumption under
  which Chen-style estimators are analysed (§II), and
- bursty :class:`GilbertElliottLoss`, a two-state Markov process that drops
  *runs* of consecutive messages — the regime the two-window detector is
  built for (§III-A: "when the duration of each burst is [not] short ...
  some mechanism to estimate the current behaviour of the network and adapt
  to it is needed").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro._validation import ensure_positive, ensure_probability

__all__ = [
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "BurstLoss",
]


class LossModel(ABC):
    """A process deciding which of ``n`` consecutive messages are delivered."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Return an ``(n,)`` boolean array, ``True`` where delivered."""

    @abstractmethod
    def loss_rate(self) -> float:
        """Stationary probability that a message is lost."""

    def stream(self, rng: np.random.Generator) -> Iterator[bool]:
        """Yield per-message delivered/lost decisions, one at a time.

        Used by the discrete-event simulator, which decides message fates
        online.  Stateful processes (Gilbert–Elliott) override this to carry
        their state across messages; the default draws batches of one,
        correct for memoryless models.
        """
        while True:
            yield bool(self.sample(rng, 1)[0])

    def __call__(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.sample(rng, n)


@dataclass(frozen=True)
class NoLoss(LossModel):
    """Every message is delivered (the paper's LAN trace lost none)."""

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.ones(n, dtype=bool)

    def loss_rate(self) -> float:
        return 0.0


@dataclass(frozen=True)
class BernoulliLoss(LossModel):
    """Each message is independently lost with probability ``p``."""

    p: float

    def __post_init__(self) -> None:
        ensure_probability(self.p, "p")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.random(n) >= self.p

    def loss_rate(self) -> float:
        return float(self.p)


@dataclass(frozen=True)
class GilbertElliottLoss(LossModel):
    """Two-state Markov (Gilbert–Elliott) loss.

    The channel alternates between a *good* state (loss probability
    ``p_good``) and a *bad* state (loss probability ``p_bad``).  Transitions
    happen per message: good→bad with probability ``p_gb``, bad→good with
    probability ``p_bg``.  Mean bad-run length is ``1/p_bg`` messages, so
    long loss bursts are produced by small ``p_bg``.

    Sampling is vectorized by drawing alternating good/bad sojourn lengths
    (geometric) until ``n`` messages are covered, then drawing per-message
    Bernoulli losses within each state; this avoids a Python-level loop per
    message (the state-run loop executes ~n*(p_gb) times, thousands of times
    fewer iterations).
    """

    p_gb: float
    p_bg: float
    p_good: float = 0.0
    p_bad: float = 1.0
    start_good: bool = True

    def __post_init__(self) -> None:
        ensure_probability(self.p_gb, "p_gb")
        ensure_probability(self.p_bg, "p_bg")
        ensure_probability(self.p_good, "p_good")
        ensure_probability(self.p_bad, "p_bad")
        if self.p_gb > 0 and self.p_bg == 0:
            raise ValueError("p_bg must be > 0 when p_gb > 0 (bad state must be leavable)")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n == 0:
            return np.zeros(0, dtype=bool)
        if self.p_gb == 0.0:
            # Degenerate chain: never leaves the initial state.
            p = self.p_good if self.start_good else self.p_bad
            return rng.random(n) >= p
        in_bad = np.zeros(n, dtype=bool)
        pos = 0
        good = self.start_good
        # Draw sojourn lengths in blocks to keep the Python loop short.
        while pos < n:
            if good:
                run = int(rng.geometric(self.p_gb)) if self.p_gb > 0 else n
            else:
                run = int(rng.geometric(self.p_bg)) if self.p_bg > 0 else n
            stop = min(pos + run, n)
            if not good:
                in_bad[pos:stop] = True
            pos = stop
            good = not good
        loss_prob = np.where(in_bad, self.p_bad, self.p_good)
        return rng.random(n) >= loss_prob

    def loss_rate(self) -> float:
        if self.p_gb == 0.0:
            return float(self.p_good if self.start_good else self.p_bad)
        # Stationary distribution of the two-state chain.
        pi_bad = self.p_gb / (self.p_gb + self.p_bg)
        return float((1.0 - pi_bad) * self.p_good + pi_bad * self.p_bad)

    def stream(self, rng: np.random.Generator) -> "Iterator[bool]":
        good = self.start_good
        while True:
            p = self.p_good if good else self.p_bad
            yield bool(rng.random() >= p)
            if good:
                if self.p_gb > 0 and rng.random() < self.p_gb:
                    good = False
            else:
                if self.p_bg > 0 and rng.random() < self.p_bg:
                    good = True


def BurstLoss(mean_gap: float, mean_burst: float, p_base: float = 0.0) -> GilbertElliottLoss:
    """Convenience constructor for bursty loss.

    Parameters
    ----------
    mean_gap:
        Mean number of messages between loss bursts.
    mean_burst:
        Mean number of consecutive messages lost per burst.
    p_base:
        Independent background loss probability outside bursts.
    """
    ensure_positive(mean_gap, "mean_gap")
    ensure_positive(mean_burst, "mean_burst")
    return GilbertElliottLoss(
        p_gb=1.0 / mean_gap,
        p_bg=1.0 / mean_burst,
        p_good=p_base,
        p_bad=1.0,
    )
