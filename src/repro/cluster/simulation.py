"""Whole-cluster membership simulation.

N member processes heartbeat a coordinator over independent lossy/delaying
links; some crash at scheduled times.  The coordinator runs a
:class:`~repro.cluster.membership.MembershipMonitor` with one detector per
member and the run is summarized as:

- **false removals** — view changes that evicted a member while it was
  alive (the paper's costly interrupts: each is a mistake the whole group
  pays for);
- **crash detections** — when each crashed member was (finally) removed,
  i.e. the workload-level detection time.

Comparing detector factories on the *same* seed quantifies the paper's
claim at the application level: a detector with lower T_MR at equal T_D
produces a quieter membership service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro._validation import ensure_positive
from repro.cluster.membership import MembershipEvent, MembershipMonitor
from repro.core.base import HeartbeatFailureDetector
from repro.net.delays import DelayModel
from repro.net.loss import LossModel
from repro.sim.processes import Channel, HeartbeatSender
from repro.sim.scheduler import EventScheduler

__all__ = ["MemberSpec", "ClusterReport", "simulate_cluster"]


@dataclass(frozen=True)
class MemberSpec:
    """One cluster member: its link behaviour and optional crash time."""

    name: str
    delay_model: DelayModel
    loss_model: LossModel | None = None
    crash_time: float | None = None


@dataclass(frozen=True)
class ClusterReport:
    """Outcome of one cluster simulation."""

    duration: float
    events: Tuple[MembershipEvent, ...]
    false_removals: Dict[str, int]
    crash_detected_at: Dict[str, float]
    crash_times: Dict[str, float]
    final_members: frozenset

    @property
    def n_view_changes(self) -> int:
        return len(self.events)

    @property
    def total_false_removals(self) -> int:
        return sum(self.false_removals.values())

    def detection_time(self, member: str) -> float:
        """Workload-level T_D of a crashed member's removal."""
        return self.crash_detected_at[member] - self.crash_times[member]

    @property
    def all_crashes_detected(self) -> bool:
        return all(np.isfinite(t) for t in self.crash_detected_at.values())


def simulate_cluster(
    members: Sequence[MemberSpec],
    detector_factory: Callable[[float], HeartbeatFailureDetector],
    *,
    interval: float,
    duration: float,
    seed: int | None = None,
) -> ClusterReport:
    """Run a membership simulation over ``members``.

    Parameters
    ----------
    members:
        The cluster members (each gets an independent link and RNG stream).
    detector_factory:
        ``factory(interval) -> detector``, one per member.
    interval:
        Heartbeat interval Δi shared by all members.
    duration:
        Virtual run length (seconds).
    seed:
        Base RNG seed; member i uses stream ``seed + i``.
    """
    if not members:
        raise ValueError("at least one member is required")
    names = [m.name for m in members]
    if len(set(names)) != len(names):
        raise ValueError(f"member names must be unique, got {names}")
    ensure_positive(interval, "interval")
    ensure_positive(duration, "duration")

    scheduler = EventScheduler()
    monitor = MembershipMonitor(lambda: detector_factory(interval))
    base_seed = 0 if seed is None else int(seed)
    for i, spec in enumerate(members):
        monitor.add_member(spec.name)
        rng = np.random.default_rng(base_seed + i)
        channel = Channel(scheduler, spec.delay_model, rng, spec.loss_model)
        sender = HeartbeatSender(
            scheduler,
            channel,
            interval,
            lambda seq, arrival, name=spec.name: monitor.receive(name, seq, arrival),
            crash_time=spec.crash_time,
        )
        sender.start()

    # Poll periodically so expiries of silent members are materialized even
    # when no other heartbeat happens to arrive (e.g. everyone crashed).
    poll_step = max(interval, duration / 1000.0)
    t = poll_step
    while t < duration:
        scheduler.schedule(t, lambda now=t: monitor.advance_to(now))
        t += poll_step
    scheduler.run_until(duration)
    events = tuple(monitor.finalize(duration))

    crash_times = {
        m.name: m.crash_time for m in members if m.crash_time is not None
    }
    false_removals: Dict[str, int] = {m.name: 0 for m in members}
    crash_detected_at: Dict[str, float] = {name: float("inf") for name in crash_times}
    for event in events:
        if event.joined:
            continue
        crash_t = crash_times.get(event.member)
        if crash_t is not None and event.time >= crash_t:
            # The final removal wins (earlier post-crash removals could be
            # undone by in-flight heartbeats).
            crash_detected_at[event.member] = event.time
        else:
            false_removals[event.member] += 1
    return ClusterReport(
        duration=duration,
        events=events,
        false_removals=false_removals,
        crash_detected_at=crash_detected_at,
        crash_times=crash_times,
        final_members=monitor.view().members,
    )
