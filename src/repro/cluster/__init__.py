"""Group membership on top of the failure detectors.

The paper motivates QoS failure detection with "group membership protocols
and cluster management", where every false suspicion "results in a costly
interrupt" (a view change that the whole group must process).  This
subpackage builds that consumer:

- :mod:`repro.cluster.membership` — a coordinator-style membership monitor:
  one failure detector per member, a versioned membership view, and a view-
  change log (the costly interrupts the T_MR metric prices);
- :mod:`repro.cluster.simulation` — a whole-cluster simulation: N member
  processes heartbeat a coordinator over independent lossy links, some
  crash, and the run reports view churn (false removals/rejoins) and the
  detection latency of each real crash per detector type.

This is the workload-level view of the paper's headline claim: a lower
T_MR at equal T_D translates directly into fewer spurious view changes.
"""

from repro.cluster.membership import MembershipEvent, MembershipMonitor, MembershipView
from repro.cluster.simulation import ClusterReport, MemberSpec, simulate_cluster

__all__ = [
    "ClusterReport",
    "MemberSpec",
    "MembershipEvent",
    "MembershipMonitor",
    "MembershipView",
    "simulate_cluster",
]
