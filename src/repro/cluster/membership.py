"""Coordinator-style group membership driven by failure detectors.

A :class:`MembershipMonitor` runs one online failure detector per member.
Whenever a member's detector output flips, the membership *view* changes:
an S-transition removes the member (a suspicion), a T-transition restores
it (a rejoin).  Each view carries a version number — in a real system every
view change is broadcast and processed by all members, which is why the
paper calls mistakes "costly interrupts" for this workload.

The monitor is transport-agnostic: feed it ``(member, seq, arrival)``
heartbeats from any source (the cluster simulator, recorded traces, or a
real receiver loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Tuple

from repro.core.base import HeartbeatFailureDetector

__all__ = ["MembershipEvent", "MembershipView", "MembershipMonitor"]

DetectorFactory = Callable[[], HeartbeatFailureDetector]


@dataclass(frozen=True)
class MembershipEvent:
    """One view change: a member left (suspected) or (re)joined."""

    time: float
    version: int
    member: str
    joined: bool  # True = added to the view, False = removed

    def __str__(self) -> str:
        verb = "JOIN" if self.joined else "REMOVE"
        return f"[v{self.version} @ {self.time:.3f}s] {verb} {self.member}"


@dataclass(frozen=True)
class MembershipView:
    """An immutable versioned snapshot of the live set."""

    version: int
    members: FrozenSet[str]
    since: float

    def __contains__(self, member: str) -> bool:
        return member in self.members


class MembershipMonitor:
    """Tracks a membership view from per-member failure detectors.

    Members start *outside* the view (their detectors suspect vacuously
    until the first heartbeat, per the QoS model) and join on their first
    trusted heartbeat.

    Time discipline: calls to :meth:`receive` and :meth:`advance_to` must
    carry non-decreasing times, as with any online detector.
    """

    def __init__(self, detector_factory: DetectorFactory):
        self._factory = detector_factory
        self._detectors: Dict[str, HeartbeatFailureDetector] = {}
        self._in_view: Dict[str, bool] = {}
        self._consumed: Dict[str, int] = {}
        self._events: List[MembershipEvent] = []
        self._version = 0
        self._now = 0.0

    # ------------------------------------------------------------------
    @property
    def members(self) -> Tuple[str, ...]:
        """All registered members (in or out of the current view)."""
        return tuple(self._detectors)

    @property
    def version(self) -> int:
        return self._version

    @property
    def events(self) -> List[MembershipEvent]:
        """The view-change log (the workload's costly interrupts)."""
        return list(self._events)

    def view(self) -> MembershipView:
        """The current membership view."""
        alive = frozenset(m for m, ok in self._in_view.items() if ok)
        since = self._events[-1].time if self._events else 0.0
        return MembershipView(version=self._version, members=alive, since=since)

    # ------------------------------------------------------------------
    def add_member(self, member: str) -> None:
        """Register a member (starts suspected / outside the view)."""
        if member in self._detectors:
            raise ValueError(f"member {member!r} already registered")
        self._detectors[member] = self._factory()
        self._in_view[member] = False
        self._consumed[member] = 0

    def receive(self, member: str, seq: int, arrival: float) -> None:
        """Deliver one heartbeat from ``member``.

        Every other member's detector is advanced to ``arrival`` too, so
        the view-change log stays globally time-ordered (an expiry of a
        silent member is stamped before a later heartbeat of a chatty one).
        """
        det = self._require(member)
        self._advance_clock(arrival)
        det.receive(seq, arrival)
        self.advance_to(arrival)

    def advance_to(self, now: float) -> None:
        """Materialize deadline expiries up to ``now`` (periodic poll)."""
        self._advance_clock(now)
        for member, det in self._detectors.items():
            det.advance_to(now)
            self._reconcile(member, now)

    def finalize(self, end_time: float) -> List[MembershipEvent]:
        """Close the run and return the full view-change log."""
        self.advance_to(end_time)
        return self.events

    # ------------------------------------------------------------------
    def n_view_changes(self) -> int:
        return len(self._events)

    def removals_of(self, member: str) -> List[MembershipEvent]:
        return [e for e in self._events if e.member == member and not e.joined]

    # ------------------------------------------------------------------
    def _require(self, member: str) -> HeartbeatFailureDetector:
        try:
            return self._detectors[member]
        except KeyError:
            raise KeyError(
                f"unknown member {member!r}; registered: {list(self._detectors)}"
            ) from None

    def _advance_clock(self, now: float) -> None:
        if now < self._now:
            raise ValueError(f"time went backwards ({now} < {self._now})")
        self._now = now

    def _reconcile(self, member: str, now: float) -> None:
        """Fold the member's detector transitions into view changes.

        Uses the detector's transition log rather than point-in-time
        queries so that expiries *between* heartbeats are stamped at their
        true instants.
        """
        det = self._detectors[member]
        trans = det.transitions
        for time, trust in trans[self._consumed[member]:]:
            if trust != self._in_view[member]:
                self._version += 1
                self._in_view[member] = trust
                self._events.append(
                    MembershipEvent(
                        time=time, version=self._version, member=member, joined=trust
                    )
                )
        self._consumed[member] = len(trans)
