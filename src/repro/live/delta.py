"""Client-side state for the incremental status plane.

Two pure (socket-free) pieces sit behind the ``delta`` request line of
:mod:`repro.live.status`:

:class:`SnapshotReplica` reconstructs one monitor's full snapshot from a
stream of delta documents — apply each response and :meth:`document`
always deep-equals what a full ``snapshot()`` fetch would have returned
at the same instant.  It tolerates every fallback the protocol defines:
a plain full snapshot (a server predating the delta protocol), a
``full: true`` delta (stale/foreign cursor), and incremental documents
(changed entries + removed-peer tombstones).

:class:`MergedStatusView` is the shard parent's persistent merged view:
one replica per worker, folded per refresh round, with the winning entry
per peer maintained *incrementally* — instead of re-running
:func:`repro.live.shard.merge_snapshots` over every worker's full
document on every request, only the peers whose entries actually changed
are re-resolved.  The winner rule is exactly ``merge_snapshots``'s: most
accepted heartbeats wins, ties to the later shard.  The view also serves
its *own* downstream deltas (the parent is just another delta server to
its clients), with its own generation, instance id and tombstones — the
building block ROADMAP item 4's shard → region → global hierarchy
stacks.

Per-shard cursors survive worker restarts for free: a restarted worker
mints a new instance id, its next response is a full delta, and only
that shard's replica is rebuilt — the merge keeps folding the others
incrementally.
"""

from __future__ import annotations

import uuid
from typing import Dict, List, Mapping, Set, Tuple

__all__ = ["MergedStatusView", "SnapshotReplica"]

#: Keys of a delta document that are *not* part of the snapshot head.
_NON_HEAD_KEYS = ("peers", "removed", "delta")


class ApplyResult:
    """What one :meth:`SnapshotReplica.apply` changed."""

    __slots__ = ("full", "changed", "removed")

    def __init__(self, full: bool, changed: Set[str], removed: Set[str]):
        self.full = full
        self.changed = changed  # peers inserted or updated
        self.removed = removed  # peers deleted


class SnapshotReplica:
    """Reconstruct one status endpoint's full snapshot from deltas.

    Feed every response document (from :func:`repro.live.status.afetch_delta`,
    or a direct :meth:`LiveMonitor.delta_snapshot` call) to :meth:`apply`;
    :attr:`cursor`/:attr:`instance` are what the next fetch should send,
    and :meth:`document` is the reconstructed full snapshot — deep-equal
    to the server's ``snapshot()`` at the cursor's instant.
    """

    def __init__(self) -> None:
        self.cursor: int | None = None
        self.instance: str | None = None
        self.head: dict = {}
        self.peers: Dict[str, dict] = {}
        self.n_full = 0  # full listings applied (first contact, fallbacks)
        self.n_delta = 0  # incremental documents applied

    @property
    def primed(self) -> bool:
        """Whether at least one document has been applied."""
        return bool(self.head)

    def apply(self, doc: Mapping) -> ApplyResult:
        """Fold one response document in; returns what changed.

        A document without a ``delta`` block came from a server that does
        not speak the protocol (or a plain full-snapshot fetch) — it
        replaces the whole state and clears the cursor, so the next fetch
        asks for a full listing again rather than replaying a cursor the
        server never minted.
        """
        delta = doc.get("delta")
        head = {k: v for k, v in doc.items() if k not in _NON_HEAD_KEYS}
        if delta is None:
            old = self.peers
            self.head = head
            self.peers = dict(doc.get("peers", {}))
            self.cursor = None
            self.instance = None
            self.n_full += 1
            return ApplyResult(
                True, set(self.peers), set(old) - set(self.peers)
            )
        self.cursor = delta["cursor"]
        self.instance = delta["instance"]
        self.head = head
        if delta["full"]:
            old = self.peers
            self.peers = dict(doc.get("peers", {}))
            self.n_full += 1
            return ApplyResult(
                True, set(self.peers), set(old) - set(self.peers)
            )
        self.n_delta += 1
        changed = dict(doc.get("peers", {}))
        removed = set()
        for peer in doc.get("removed", ()):
            if self.peers.pop(peer, None) is not None:
                removed.add(peer)
            # A peer can be both removed and re-discovered within one
            # cursor window; the changed entry below then reinstates it.
        self.peers.update(changed)
        return ApplyResult(False, set(changed), removed - set(changed))

    def document(self) -> dict:
        """The reconstructed full snapshot (head + complete peer map)."""
        doc = dict(self.head)
        doc["peers"] = dict(self.peers)
        return doc


def _wins(entry: dict, held: dict | None) -> bool:
    return held is None or entry.get("n_accepted", 0) >= held.get(
        "n_accepted", 0
    )


class MergedStatusView:
    """Persistent merged view over per-shard :class:`SnapshotReplica`\\ s.

    Call :meth:`cursor` per shard to know what to fetch, then
    :meth:`fold` with the round's results (documents or exceptions).
    :meth:`document` returns the merged snapshot —
    ``merge_snapshots``-equivalent over the reconstructed full documents
    of the shards that responded — and :meth:`delta_document` serves the
    parent's own downstream delta protocol.
    """

    #: Same bound/compaction discipline as ``LiveMonitor._TOMBSTONE_CAP``.
    _TOMBSTONE_CAP = 4096

    def __init__(self, n_shards: int | None = None):
        self.n_shards = n_shards
        self.instance = uuid.uuid4().hex
        self.generation = 0
        self._replicas: Dict[int, SnapshotReplica] = {}
        self._available: Set[int] = set()
        self._errors: Dict[int, str] = {}
        # peer -> winning shard id / merged entry / stamp generation.
        self._winner: Dict[str, int] = {}
        self._peers: Dict[str, dict] = {}
        self._peer_gen: Dict[str, int] = {}
        self._tombstones: Dict[str, int] = {}
        self._tombstone_floor = 0

    # -- fetch-side helpers --------------------------------------------
    def cursor(self, shard_id: int) -> Tuple[int | None, str | None]:
        """``(since, instance)`` the next fetch for this shard should send."""
        replica = self._replicas.get(shard_id)
        if replica is None:
            return None, None
        return replica.cursor, replica.instance

    @property
    def shard_errors(self) -> List[dict]:
        return [
            {"shard": sid, "error": err}
            for sid, err in sorted(self._errors.items())
        ]

    # -- folding --------------------------------------------------------
    def fold(self, results: Mapping[int, object]) -> None:
        """One refresh round: per shard either a response document or an
        exception.  Bumps the merged generation once, re-resolves the
        winning entry for every peer a delta touched, and rebuilds the
        winner map outright when the responding-shard set changed or any
        shard sent a full listing (cross-shard winners can shift then).
        """
        self.generation += 1
        prev_available = set(self._available)
        touched: Set[str] = set()
        rebuild = False
        for shard_id, result in results.items():
            if isinstance(result, BaseException):
                self._errors[shard_id] = str(result)
                self._available.discard(shard_id)
                continue
            if not isinstance(result, Mapping) or "schema" not in result:
                # The status server's error envelope ({"error": ...}) or
                # any other non-snapshot answer: treat as a failed shard.
                err = (
                    result.get("error", "unrecognized response")
                    if isinstance(result, Mapping)
                    else "unrecognized response"
                )
                self._errors[shard_id] = str(err)
                self._available.discard(shard_id)
                continue
            self._errors.pop(shard_id, None)
            replica = self._replicas.setdefault(shard_id, SnapshotReplica())
            outcome = replica.apply(result)
            self._available.add(shard_id)
            if outcome.full:
                rebuild = True
            else:
                touched |= outcome.changed
                touched |= outcome.removed
        if self._available != prev_available:
            rebuild = True
        if rebuild:
            self._rebuild()
        else:
            for peer in touched:
                self._resolve(peer)

    def _resolve(self, peer: str) -> None:
        """Re-pick the winning entry for one peer across the available
        shards (``merge_snapshots`` rule: max accepted, ties to the later
        shard); stamp the generation only when the entry actually moved."""
        best = None
        best_sid = None
        for sid in sorted(self._available):
            entry = self._replicas[sid].peers.get(peer)
            if entry is not None and _wins(entry, best):
                best = entry
                best_sid = sid
        if best is None:
            if self._peers.pop(peer, None) is not None:
                self._winner.pop(peer, None)
                self._peer_gen.pop(peer, None)
                self._tombstone(peer)
            return
        if self._peers.get(peer) != best:
            self._peers[peer] = best
            self._peer_gen[peer] = self.generation
            self._tombstones.pop(peer, None)
        self._winner[peer] = best_sid

    def _rebuild(self) -> None:
        """Full winner-map recomputation (shard set changed / full apply),
        diffed against the previous merged map so downstream delta stamps
        stay minimal."""
        new_peers: Dict[str, dict] = {}
        new_winner: Dict[str, int] = {}
        for sid in sorted(self._available):
            for peer, entry in self._replicas[sid].peers.items():
                if _wins(entry, new_peers.get(peer)):
                    new_peers[peer] = entry
                    new_winner[peer] = sid
        gen = self.generation
        for peer, entry in new_peers.items():
            if self._peers.get(peer) != entry:
                self._peer_gen[peer] = gen
                self._tombstones.pop(peer, None)
        for peer in self._peers:
            if peer not in new_peers:
                self._peer_gen.pop(peer, None)
                self._tombstone(peer)
        self._peers = new_peers
        self._winner = new_winner

    def _tombstone(self, peer: str) -> None:
        self._tombstones[peer] = self.generation
        if len(self._tombstones) > self._TOMBSTONE_CAP:
            ordered = sorted(self._tombstones.items(), key=lambda kv: kv[1])
            cut = len(ordered) // 2
            self._tombstone_floor = ordered[cut - 1][1]
            self._tombstones = dict(ordered[cut:])

    # -- serving --------------------------------------------------------
    def _no_shard_doc(self) -> dict:
        from repro.live.status import SNAPSHOT_SCHEMA_VERSION

        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "mode": "sharded",
            "n_shards": self.n_shards or 0,
            "error": "no shard responded",
            "shard_errors": self.shard_errors,
        }

    def document(self) -> dict:
        """The merged snapshot: ``merge_snapshots`` over the constant-size
        heads (counters summed, worst-case poll latency, admission blocks
        merged) with the incrementally maintained peer union attached."""
        # Imported here, not at module top: shard.py imports this module,
        # and merge_snapshots lives past that import in shard.py's body.
        from repro.live.shard import merge_snapshots

        if not self._available:
            return self._no_shard_doc()
        heads = [self._replicas[sid].head for sid in sorted(self._available)]
        merged = merge_snapshots(heads)
        merged["peers"] = dict(self._peers)
        # The union is authoritative exactly as in merge_snapshots' own
        # peers-present branch (the heads carry no listings, so its
        # summed n_peers must be overridden here).
        merged["monitor"]["n_peers"] = len(self._peers)
        if self.n_shards is not None:
            merged["n_shards"] = self.n_shards
        if self._errors:
            merged["shard_errors"] = self.shard_errors
        return merged

    def delta_document(
        self, since: int | None = None, instance: str | None = None
    ) -> dict:
        """The parent's own delta response (same protocol it consumes)."""
        doc = self.document()
        if "error" in doc:
            return doc
        gen = self.generation
        full = (
            since is None
            or instance != self.instance
            or since > gen
            or since < self._tombstone_floor
        )
        doc["delta"] = {
            "instance": self.instance,
            "since": None if full else since,
            "cursor": gen,
            "full": full,
        }
        if full:
            doc["removed"] = []
            return doc
        doc["peers"] = {
            peer: entry
            for peer, entry in doc["peers"].items()
            if self._peer_gen.get(peer, 0) > since
        }
        doc["removed"] = sorted(
            peer for peer, g in self._tombstones.items() if g > since
        )
        return doc
