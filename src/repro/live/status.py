"""Observability for the live runtime: JSON status endpoint + structured logs.

:class:`StatusServer` serves one JSON document per TCP connection on a
local port — per-peer detector state, arrival counts, current freshness
points, monitor-load counters (whatever the wrapped ``snapshot`` callable
reports).  The protocol is deliberately trivial: connect, read until EOF,
parse.  ``nc 127.0.0.1 <port>`` works; so does :func:`fetch_status`, the
in-process client the CLI's ``repro-fd live status`` uses.

At large peer counts the full snapshot can run to megabytes, so a client
may optionally send ``summary\\n`` (then half-close) before reading: the
server answers with the constant-size summary document instead (peer
count, heartbeat rate, poll cost, heap size — the ``monitor`` block).  A
client that sends nothing, or anything else, gets the full snapshot, so
plain ``nc`` keeps working unchanged.

:func:`structured` formats JSON-lines log records: every noteworthy runtime
event (peer discovered, suspicion raised, monitor started/stopped) is
logged as a single JSON object on the ``repro.live.*`` loggers, so a log
collector can consume the live runtime without scraping prose.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Callable, Tuple

__all__ = ["StatusServer", "afetch_status", "fetch_status", "structured"]

logger = logging.getLogger("repro.live.status")

#: How long the server waits for an optional request line before falling
#: back to the full snapshot (keeps bare ``nc`` connections working).
REQUEST_TIMEOUT = 0.25


def structured(event: str, **fields: object) -> str:
    """One JSON-lines log record: ``{"event": ..., **fields}``.

    Values must be JSON-serializable; non-serializable ones are stringified
    rather than raised on (logging must never take the runtime down).
    """
    record = {"event": event, **fields}
    try:
        return json.dumps(record, sort_keys=True)
    except (TypeError, ValueError):
        return json.dumps(
            {k: repr(v) if _unserializable(v) else v for k, v in record.items()},
            sort_keys=True,
        )


def _unserializable(value: object) -> bool:
    try:
        json.dumps(value)
        return False
    except (TypeError, ValueError):
        return True


class StatusServer:
    """Serve ``snapshot()`` as one JSON document per TCP connection.

    ``summary`` is an optional second callable serving the constant-size
    variant when the client requests it (see module docstring); without
    it, every request gets the full snapshot.
    """

    def __init__(
        self,
        snapshot: Callable[[], dict],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        summary: Callable[[], dict] | None = None,
    ):
        self._snapshot = snapshot
        self._summary = summary
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self.address: Tuple[str, int] | None = None

    async def start(self) -> Tuple[str, int]:
        """Start listening; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        sock = self._server.sockets[0].getsockname()
        self.address = (sock[0], sock[1])
        logger.info(structured("status-started", host=sock[0], port=sock[1]))
        return self.address

    async def _read_request(self, reader: asyncio.StreamReader) -> bytes:
        """The optional one-line request; empty on timeout / silent client."""
        try:
            return await asyncio.wait_for(reader.readline(), REQUEST_TIMEOUT)
        except asyncio.TimeoutError:
            return b""

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            producer = self._snapshot
            if self._summary is not None and request.strip() == b"summary":
                producer = self._summary
            body = json.dumps(producer(), sort_keys=True) + "\n"
        except Exception as exc:  # snapshot bugs must not kill the server
            logger.exception("status snapshot failed")
            body = json.dumps({"error": str(exc)}) + "\n"
        try:
            writer.write(body.encode("utf-8"))
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            logger.info(structured("status-stopped"))


async def _fetch(host: str, port: int, timeout: float, summary: bool) -> dict:
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        writer.write(b"summary\n" if summary else b"\n")
        if writer.can_write_eof():
            writer.write_eof()  # tell the server no more request is coming
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    return json.loads(raw.decode("utf-8"))


def fetch_status(
    host: str, port: int, *, timeout: float = 5.0, summary: bool = False
) -> dict:
    """Fetch and parse one status document (synchronous client).

    ``summary=True`` requests the constant-size summary head instead of
    the full per-peer listing (servers without summary support still
    answer with the full document).
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(_fetch(host, port, timeout, summary))
    raise RuntimeError(
        "fetch_status() is synchronous; inside an event loop await "
        "status.afetch_status(...) instead"
    )


async def afetch_status(
    host: str, port: int, *, timeout: float = 5.0, summary: bool = False
) -> dict:
    """Async variant of :func:`fetch_status` for use inside an event loop."""
    return await _fetch(host, port, timeout, summary)
