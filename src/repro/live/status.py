"""Observability for the live runtime: JSON status endpoint + structured logs.

:class:`StatusServer` serves one JSON document per TCP connection on a
local port — per-peer detector state, arrival counts, current freshness
points, monitor-load counters (whatever the wrapped ``snapshot`` callable
reports).  The protocol is deliberately trivial: connect, read until EOF,
parse.  ``nc 127.0.0.1 <port>`` works; so does :func:`fetch_status`, the
in-process client the CLI's ``repro-fd live status`` uses.

At large peer counts the full snapshot can run to megabytes, so a client
may optionally send one request line (then half-close) before reading:

- ``summary\\n`` — the constant-size summary document instead (peer
  count, heartbeat rate, poll cost, heap size — the ``monitor`` block);
- ``metrics\\n`` — the Prometheus text exposition of the attached
  metrics registry (plain text, not JSON; see :mod:`repro.obs.metrics`);
- ``trace\\n`` or ``trace <cursor>\\n`` — the retained heartbeat trace
  events past ``cursor`` as a JSON document (see
  :meth:`repro.obs.tracer.HeartbeatTracer.document`) — the transport
  behind ``repro-fd live trace --follow``;
- ``delta\\n`` or ``delta <cursor> [instance]\\n`` — the incremental
  snapshot: the constant-size summary head plus only the peer entries
  changed after generation ``cursor`` (and the peers removed since),
  with a ``delta`` block carrying the next cursor and this monitor's
  instance id.  Without a cursor — or with one minted by another
  instance (a restart), ahead of the current generation, or older than
  a compacted removal tombstone — the listing is full (``delta.full``
  is true), the same fallback discipline as everything else here.  A
  server without a delta producer answers with the plain full snapshot
  (no ``delta`` block), which clients treat as a full refresh;
- ``events\\n`` or ``events <cursor>\\n`` — the retained fdaas events
  (transitions, SLA breaches) past ``cursor`` as one JSON document;
- ``diag\\n`` or ``diag <cursor>\\n`` — the runtime diagnostics document
  (pipeline stage timings, stall-watchdog state, flight-recorder drain
  records past ``cursor``; see :mod:`repro.obs.diag`) — the transport
  behind ``repro-fd live diag [--watch]``;
- ``subscribe\\n`` or ``subscribe <cursor>\\n`` — the only *long-lived*
  command: the connection stays open and every event past ``cursor`` is
  pushed as one JSON line the moment it is published, no polling (see
  :mod:`repro.fdaas.subscribe`, which provides the client side).

A client that sends nothing, or anything else, gets the full snapshot,
so plain ``nc`` keeps working unchanged; commands whose producer was not
attached also fall back to the full snapshot rather than erroring.

:func:`structured` formats JSON-lines log records: every noteworthy runtime
event (peer discovered, suspicion raised, monitor started/stopped) is
logged as a single JSON object on the ``repro.live.*`` loggers, so a log
collector can consume the live runtime without scraping prose.
"""

from __future__ import annotations

import asyncio
import json
import logging
import random
from typing import Callable, Tuple

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "StatusServer",
    "afetch_delta",
    "afetch_diag",
    "afetch_metrics",
    "afetch_status",
    "afetch_trace",
    "fetch_delta",
    "fetch_diag",
    "fetch_metrics",
    "fetch_status",
    "fetch_trace",
    "structured",
]

logger = logging.getLogger("repro.live.status")

#: Version of the snapshot JSON documents served by the status endpoint
#: (the top-level ``"schema"`` field).  Version 1 is the implicit,
#: unversioned pre-sharding shape; version 2 added the field itself plus
#: the shard-merge additions (``mode``/``n_shards``/``shards``), so
#: clients can tell a single-monitor document from a shard-merged one.
SNAPSHOT_SCHEMA_VERSION = 2

#: How long the server waits for an optional request line before falling
#: back to the full snapshot (keeps bare ``nc`` connections working).
REQUEST_TIMEOUT = 0.25


def structured(event: str, **fields: object) -> str:
    """One JSON-lines log record: ``{"event": ..., **fields}``.

    Values must be JSON-serializable; non-serializable ones are stringified
    rather than raised on (logging must never take the runtime down).
    """
    record = {"event": event, **fields}
    try:
        return json.dumps(record, sort_keys=True)
    except (TypeError, ValueError):
        return json.dumps(
            {k: repr(v) if _unserializable(v) else v for k, v in record.items()},
            sort_keys=True,
        )


def _unserializable(value: object) -> bool:
    try:
        json.dumps(value)
        return False
    except (TypeError, ValueError):
        return True


class StatusServer:
    """Serve ``snapshot()`` as one JSON document per TCP connection.

    ``summary`` is an optional second callable serving the constant-size
    variant when the client requests it (see module docstring); without
    it, every request gets the full snapshot.

    Either producer may be a plain callable returning a dict *or* an
    async callable returning one — the shard aggregator's merged snapshot
    awaits the per-shard fetches, so its producer is a coroutine
    function; a plain monitor's is not.
    """

    def __init__(
        self,
        snapshot: Callable[[], dict],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        summary: Callable[[], dict] | None = None,
        delta: Callable[..., dict] | None = None,
        metrics: Callable[[], str] | None = None,
        trace: Callable[[int], dict] | None = None,
        events: Callable[[int], dict] | None = None,
        diag: Callable[[int], dict] | None = None,
        broker=None,
    ):
        self._snapshot = snapshot
        self._summary = summary
        # ``delta(since, instance)`` — the incremental snapshot producer;
        # commands against a server without one fall back to the full
        # snapshot, which delta clients treat as a full refresh.
        self._delta = delta
        self._metrics = metrics
        self._trace = trace
        self._events = events
        # ``diag(since)`` — the runtime diagnostics producer (stage
        # timings, watchdog, flight records past the cursor).
        self._diag = diag
        # An EventBroker-like object (``document(since)`` + ``async
        # wait(since)``) enabling the long-lived ``subscribe`` command.
        self._broker = broker
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._streams: set = set()  # live ``subscribe`` handler tasks
        self.address: Tuple[str, int] | None = None

    async def start(self) -> Tuple[str, int]:
        """Start listening; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        sock = self._server.sockets[0].getsockname()
        self.address = (sock[0], sock[1])
        logger.info(structured("status-started", host=sock[0], port=sock[1]))
        return self.address

    async def _read_request(self, reader: asyncio.StreamReader) -> bytes:
        """The optional one-line request; empty on timeout / silent client."""
        try:
            return await asyncio.wait_for(reader.readline(), REQUEST_TIMEOUT)
        except asyncio.TimeoutError:
            return b""

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = (await self._read_request(reader)).strip()
            if self._broker is not None and request[:9] == b"subscribe":
                since = int(request[9:].strip() or 0)
                await self._stream(writer, since)
                return
            if self._metrics is not None and request == b"metrics":
                # Plain text, not JSON: the Prometheus exposition format
                # is its own framing (curl/nc/scrapers read to EOF).
                text = self._metrics()
                if asyncio.iscoroutine(text):
                    text = await text
                body = text
            elif self._events is not None and request[:6] == b"events":
                since = int(request[6:].strip() or 0)
                doc = self._events(since)
                if asyncio.iscoroutine(doc):
                    doc = await doc
                body = json.dumps(doc, sort_keys=True) + "\n"
            elif self._delta is not None and request[:5] == b"delta":
                parts = request[5:].split()
                since = int(parts[0]) if parts else None
                instance = (
                    parts[1].decode("ascii") if len(parts) > 1 else None
                )
                doc = self._delta(since, instance)
                if asyncio.iscoroutine(doc):
                    doc = await doc
                body = json.dumps(doc, sort_keys=True) + "\n"
            elif self._trace is not None and request[:5] == b"trace":
                since = 0
                argument = request[5:].strip()
                if argument:
                    since = int(argument)
                doc = self._trace(since)
                if asyncio.iscoroutine(doc):
                    doc = await doc
                body = json.dumps(doc, sort_keys=True) + "\n"
            elif self._diag is not None and request[:4] == b"diag":
                since = 0
                argument = request[4:].strip()
                if argument:
                    since = int(argument)
                doc = self._diag(since)
                if asyncio.iscoroutine(doc):
                    doc = await doc
                body = json.dumps(doc, sort_keys=True) + "\n"
            else:
                producer = self._snapshot
                if self._summary is not None and request == b"summary":
                    producer = self._summary
                doc = producer()
                if asyncio.iscoroutine(doc):
                    doc = await doc
                body = json.dumps(doc, sort_keys=True) + "\n"
        except Exception as exc:  # snapshot bugs must not kill the server
            logger.exception("status snapshot failed")
            body = json.dumps({"error": str(exc)}) + "\n"
        try:
            writer.write(body.encode("utf-8"))
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _stream(
        self, writer: asyncio.StreamWriter, since: int
    ) -> None:
        """The ``subscribe`` command: push events as JSON lines until the
        client hangs up (or the server stops and cancels the handler)."""
        cursor = since
        task = asyncio.current_task()
        self._streams.add(task)
        try:
            while True:
                doc = self._broker.document(cursor)
                for event in doc["events"]:
                    writer.write(
                        (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                    )
                cursor = doc["cursor"]
                await writer.drain()
                await self._broker.wait(cursor)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._streams.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # A stop()-issued cancel is re-delivered on this await;
                # swallowing it lets the handler task finish cleanly
                # instead of ending cancelled (which the stream protocol's
                # completion callback would log as an error).
                pass

    async def stop(self) -> None:
        if self._server is not None:
            # Long-lived subscribe handlers would otherwise keep
            # wait_closed() hanging on Pythons that await live handlers.
            for task in tuple(self._streams):
                task.cancel()
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            logger.info(structured("status-stopped"))


#: Cap (seconds) of the first retry delay; the clients use *full jitter*
#: — each attempt sleeps uniform(0, RETRY_BACKOFF * 2**attempt) — so a
#: fleet of clients hammering a just-restarted endpoint spreads out
#: instead of retrying in synchronized waves.
RETRY_BACKOFF = 0.1


def _backoff_delay(attempt: int) -> float:
    """Full-jitter exponential backoff: uniform in [0, cap · 2^attempt]."""
    return random.uniform(0.0, RETRY_BACKOFF * (2**attempt))


async def _fetch_raw(
    host: str, port: int, timeout: float, request: bytes
) -> bytes:
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        writer.write(request)
        if writer.can_write_eof():
            writer.write_eof()  # tell the server no more request is coming
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    return raw


async def _fetch(host: str, port: int, timeout: float, summary: bool) -> dict:
    raw = await _fetch_raw(
        host, port, timeout, b"summary\n" if summary else b"\n"
    )
    return json.loads(raw.decode("utf-8"))


async def _fetch_with_retries(
    host: str, port: int, timeout: float, summary: bool, retries: int
) -> dict:
    if retries < 0:
        raise ValueError(f"retries must be non-negative, got {retries}")
    attempt = 0
    while True:
        try:
            return await _fetch(host, port, timeout, summary)
        except (OSError, asyncio.TimeoutError) as exc:
            if attempt >= retries:
                raise
            delay = _backoff_delay(attempt)
            attempt += 1
            logger.debug(
                "status fetch from %s:%d failed (%s); retry %d/%d in %.2fs",
                host,
                port,
                exc,
                attempt,
                retries,
                delay,
            )
            await asyncio.sleep(delay)


def fetch_status(
    host: str,
    port: int,
    *,
    timeout: float = 5.0,
    summary: bool = False,
    retries: int = 0,
) -> dict:
    """Fetch and parse one status document (synchronous client).

    ``summary=True`` requests the constant-size summary head instead of
    the full per-peer listing (servers without summary support still
    answer with the full document).  ``retries`` re-attempts failed
    connections/reads that many additional times with full-jitter
    exponential backoff (uniform in [0, 0.1 s], [0, 0.2 s], [0, 0.4 s],
    ...) before raising — useful right after launching a monitor, whose
    status port may not be listening yet.
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(
            _fetch_with_retries(host, port, timeout, summary, retries)
        )
    raise RuntimeError(
        "fetch_status() is synchronous; inside an event loop await "
        "status.afetch_status(...) instead"
    )


async def afetch_status(
    host: str,
    port: int,
    *,
    timeout: float = 5.0,
    summary: bool = False,
    retries: int = 0,
) -> dict:
    """Async variant of :func:`fetch_status` for use inside an event loop."""
    return await _fetch_with_retries(host, port, timeout, summary, retries)


async def _retrying(coro_factory, retries: int):
    if retries < 0:
        raise ValueError(f"retries must be non-negative, got {retries}")
    attempt = 0
    while True:
        try:
            return await coro_factory()
        except (OSError, asyncio.TimeoutError):
            if attempt >= retries:
                raise
            await asyncio.sleep(_backoff_delay(attempt))
            attempt += 1


async def afetch_delta(
    host: str,
    port: int,
    since: int | None = None,
    instance: str | None = None,
    *,
    timeout: float = 5.0,
    retries: int = 0,
) -> dict:
    """Fetch an incremental snapshot (``delta <cursor> [instance]``).

    ``since``/``instance`` come from the ``delta`` block of the previous
    response; pass ``None`` (or a cursor from a restarted server) to get
    a full listing.  Servers predating the delta protocol answer with
    the plain full snapshot — callers should treat a response without a
    ``delta`` block as a full refresh
    (:class:`repro.live.delta.SnapshotReplica` does).
    """
    if since is None:
        request = b"delta\n"
    elif instance is None:
        request = f"delta {since}\n".encode("ascii")
    else:
        request = f"delta {since} {instance}\n".encode("ascii")
    raw = await _retrying(
        lambda: _fetch_raw(host, port, timeout, request), retries
    )
    return json.loads(raw.decode("utf-8"))


def fetch_delta(
    host: str,
    port: int,
    since: int | None = None,
    instance: str | None = None,
    *,
    timeout: float = 5.0,
    retries: int = 0,
) -> dict:
    """Synchronous variant of :func:`afetch_delta`."""
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(
            afetch_delta(
                host, port, since, instance, timeout=timeout, retries=retries
            )
        )
    raise RuntimeError(
        "fetch_delta() is synchronous; inside an event loop await "
        "status.afetch_delta(...) instead"
    )


async def afetch_metrics(
    host: str,
    port: int,
    *,
    timeout: float = 5.0,
    retries: int = 0,
) -> str:
    """Fetch the Prometheus text exposition from a status endpoint.

    Sends ``metrics\\n``; the response is the exposition document as-is
    (raises :class:`ValueError` if the endpoint answered with JSON — a
    monitor running without observability serves only snapshots).
    """
    raw = await _retrying(
        lambda: _fetch_raw(host, port, timeout, b"metrics\n"), retries
    )
    text = raw.decode("utf-8")
    if text.lstrip().startswith("{"):
        raise ValueError(
            "endpoint answered with a JSON snapshot, not a metrics "
            "exposition — is the monitor running with observability on?"
        )
    return text


def fetch_metrics(
    host: str,
    port: int,
    *,
    timeout: float = 5.0,
    retries: int = 0,
) -> str:
    """Synchronous variant of :func:`afetch_metrics`."""
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(
            afetch_metrics(host, port, timeout=timeout, retries=retries)
        )
    raise RuntimeError(
        "fetch_metrics() is synchronous; inside an event loop await "
        "status.afetch_metrics(...) instead"
    )


async def afetch_trace(
    host: str,
    port: int,
    since: int = 0,
    *,
    timeout: float = 5.0,
    retries: int = 0,
) -> dict:
    """Fetch retained trace events past cursor ``since`` (JSON document)."""
    request = f"trace {since}\n".encode("ascii")
    raw = await _retrying(
        lambda: _fetch_raw(host, port, timeout, request), retries
    )
    return json.loads(raw.decode("utf-8"))


def fetch_trace(
    host: str,
    port: int,
    since: int = 0,
    *,
    timeout: float = 5.0,
    retries: int = 0,
) -> dict:
    """Synchronous variant of :func:`afetch_trace`."""
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(
            afetch_trace(host, port, since, timeout=timeout, retries=retries)
        )
    raise RuntimeError(
        "fetch_trace() is synchronous; inside an event loop await "
        "status.afetch_trace(...) instead"
    )


async def afetch_diag(
    host: str,
    port: int,
    since: int = 0,
    *,
    timeout: float = 5.0,
    retries: int = 0,
) -> dict:
    """Fetch the runtime diagnostics document (``diag <cursor>``).

    ``since`` is a flight-recorder cursor from a previous response's
    ``recorder.cursor``; records with larger ids are returned along with
    the stage-timing and watchdog summaries (which are not cursored —
    they are constant-size).  A monitor running without diagnostics
    answers ``{"diagnostics": false}``.
    """
    request = f"diag {since}\n".encode("ascii")
    raw = await _retrying(
        lambda: _fetch_raw(host, port, timeout, request), retries
    )
    return json.loads(raw.decode("utf-8"))


def fetch_diag(
    host: str,
    port: int,
    since: int = 0,
    *,
    timeout: float = 5.0,
    retries: int = 0,
) -> dict:
    """Synchronous variant of :func:`afetch_diag`."""
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(
            afetch_diag(host, port, since, timeout=timeout, retries=retries)
        )
    raise RuntimeError(
        "fetch_diag() is synchronous; inside an event loop await "
        "status.afetch_diag(...) instead"
    )
