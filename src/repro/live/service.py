"""Live shared failure-detection service: one stream, many applications.

The §V-C deployment mode over real sockets: one remote process sends a
single heartbeat stream at Δi_min; every registered application gets its
own freshness points (``EA + Δto'_j``) computed from the *same* arrivals by
:class:`repro.service.fdservice.SharedFDMonitor`.  This module bridges live
datagram arrivals into that engine:

- :meth:`LiveSharedMonitor.from_applications` runs the full §V-C
  configuration procedure (via :class:`repro.service.fdservice.FDService`)
  from QoS tuples + estimated network behaviour, and reports the interval
  the remote heartbeater must be asked to use;
- :meth:`LiveSharedMonitor.ingest` decodes wire datagrams and feeds
  ``(seq, arrival)`` to the shared monitor;
- :meth:`LiveSharedMonitor.poll` materializes freshness-point expiries and
  emits per-application :class:`~repro.live.monitor.LiveEvent` streams;
- :meth:`LiveSharedMonitor.timelines` yields per-application
  :class:`~repro.qos.timeline.OutputTimeline` objects scoreable by
  :func:`repro.qos.metrics.compute_metrics`.

The peer-facing surface (snapshot schema, event objects, timeline
conventions) matches :class:`repro.live.monitor.LiveMonitor`, so the status
endpoint and the CLI treat dedicated and shared monitors uniformly.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Dict, List, Sequence

from repro.live.monitor import LiveEvent, _EventLog, _ListenerSet
from repro.live.status import SNAPSHOT_SCHEMA_VERSION, structured
from repro.live.wire import Heartbeat, WireError
from repro.obs.runtime import Observability
from repro.qos.estimators import NetworkBehavior
from repro.qos.timeline import OutputTimeline
from repro.service.application import Application
from repro.service.fdservice import FDService, SharedFDMonitor

__all__ = ["LiveSharedMonitor"]

logger = logging.getLogger("repro.live.service")


class LiveSharedMonitor:
    """Feed one live heartbeat stream into a :class:`SharedFDMonitor`.

    Parameters
    ----------
    monitor:
        The shared monitor-side engine (one estimation state, per-app
        margins).
    peer:
        Id of the monitored process; datagrams from other senders are
        counted and ignored (the shared stream monitors *one* process;
        run one ``LiveSharedMonitor`` per monitored host).
    service:
        The configured :class:`FDService`, when built via
        :meth:`from_applications` (exposes traffic accounting).
    clock:
        Monotonic time source (injectable for tests).
    obs:
        Observability bundle (``None`` = off).  Mirrors the ingest
        counters into the registry at scrape time (same derived-counter
        discipline as :class:`LiveMonitor`), labels per-application
        transition counters, feeds ``obs.qos`` the event stream, and
        traces the heartbeat lifecycle when a tracer is attached.
    """

    def __init__(
        self,
        monitor: SharedFDMonitor,
        *,
        peer: str = "p",
        service: FDService | None = None,
        clock: Callable[[], float] = time.monotonic,
        max_events: int | None = None,
        transition_retention: int | None = None,
        obs: Observability | None = None,
    ):
        self.shared = monitor
        self.service = service
        self.peer = peer
        self._clock = clock
        self._epoch: float | None = None
        self._consumed: Dict[str, int] = {
            name: 0 for name in monitor.application_names
        }
        if transition_retention is not None:
            monitor.set_transition_retention(transition_retention)
        self._events = _EventLog(max_events)
        self._listeners = _ListenerSet()
        self.n_datagrams = 0
        self.n_accepted = 0
        self.n_stale = 0
        self.n_foreign = 0
        self.n_malformed = 0
        self.reject_reasons: Dict[str, int] = {}
        self.first_arrival: float | None = None
        self.last_arrival: float | None = None
        self._obs = obs
        self._tracer = obs.tracer if obs is not None else None
        if obs is not None:
            self._bind_obs(obs)

    def _bind_obs(self, obs: Observability) -> None:
        reg = obs.registry
        m_received = reg.counter(
            "repro_heartbeats_received_total",
            "Datagrams that decoded as heartbeats.",
        )
        m_accepted = reg.counter(
            "repro_heartbeats_accepted_total",
            "Heartbeats accepted as sequence-fresh.",
        )
        m_stale = reg.counter(
            "repro_heartbeats_stale_total",
            "Heartbeats discarded as stale or duplicate.",
        )
        m_foreign = reg.counter(
            "repro_datagrams_foreign_total",
            "Datagrams from senders other than the monitored peer.",
        )
        m_malformed = reg.counter(
            "repro_datagrams_malformed_total",
            "Datagrams dropped by the wire decoder.",
        )
        m_events = reg.counter(
            "repro_events_total",
            "Suspect/trust transitions emitted by the monitor.",
        )
        m_transitions = reg.counter(
            "repro_detector_transitions_total",
            "Output transitions per detector instance.",
            ("peer", "detector"),
        )
        m_suspicions = reg.counter(
            "repro_detector_suspicions_total",
            "S-transitions (mistakes, absent crashes) per detector instance.",
            ("peer", "detector"),
        )
        g_tmr = reg.gauge(
            "repro_qos_t_mr",
            "Rolling mistake rate (S-transitions/second) over the QoS window.",
            ("peer", "detector"),
        )
        g_tm = reg.gauge(
            "repro_qos_t_m",
            "Rolling mean mistake duration over the QoS window.",
            ("peer", "detector"),
        )
        g_pa = reg.gauge(
            "repro_qos_p_a",
            "Rolling query accuracy (fraction of window trusted).",
            ("peer", "detector"),
        )

        def _collect() -> None:
            now = self.now()
            m_received.set_total(self.n_datagrams)
            m_accepted.set_total(self.n_accepted)
            m_stale.set_total(self.n_stale)
            m_foreign.set_total(self.n_foreign)
            m_malformed.set_total(self.n_malformed)
            m_events.set_total(self._events.total)
            for name in self.shared.application_names:
                m_transitions.labels(self.peer, name).set_total(
                    self._consumed[name]
                )
                m_suspicions.labels(self.peer, name).set_total(
                    self.shared.n_suspicions(name)
                )
            if obs.qos is not None:
                for (peer, name), m in obs.qos.all_metrics(now):
                    g_tmr.labels(peer, name).set(m["t_mr"])
                    g_tm.labels(peer, name).set(m["t_m"])
                    g_pa.labels(peer, name).set(m["p_a"])

        if obs.qos is not None:
            self.subscribe(obs.qos.on_event)
        reg.add_collect_hook(_collect)

    # ------------------------------------------------------------------
    @classmethod
    def from_applications(
        cls,
        applications: Sequence[Application],
        behavior: NetworkBehavior,
        *,
        peer: str = "p",
        clock: Callable[[], float] = time.monotonic,
        max_events: int | None = None,
        transition_retention: int | None = None,
        obs: Observability | None = None,
        **service_kwargs: object,
    ) -> "LiveSharedMonitor":
        """Run §V-C Steps 1-4 and wrap the resulting shared monitor.

        The caller must arrange for the monitored process to send at
        :attr:`heartbeat_interval` (Δi_min) — e.g. by configuring its
        :class:`~repro.live.heartbeater.Heartbeater` with it.
        """
        service = FDService(applications, behavior, **service_kwargs)
        return cls(
            service.monitor,
            peer=peer,
            service=service,
            clock=clock,
            max_events=max_events,
            transition_retention=transition_retention,
            obs=obs,
        )

    @property
    def heartbeat_interval(self) -> float:
        """Δi_min: the interval the monitored process must send at."""
        return self.shared.interval

    @property
    def application_names(self) -> tuple:
        return self.shared.application_names

    @property
    def events(self) -> List[LiveEvent]:
        """Retained events (ring-buffered when ``max_events`` is set)."""
        return self._events.as_list()

    @property
    def n_events_total(self) -> int:
        return self._events.total

    @property
    def n_events_dropped(self) -> int:
        return self._events.dropped

    @property
    def n_listener_errors(self) -> int:
        return self._listeners.n_errors

    def subscribe(self, listener: Callable[[LiveEvent], None]) -> None:
        """Register a callback for every new event; exceptions it raises
        are caught, counted, and logged, never propagated into detection."""
        self._listeners.subscribe(listener)

    def unsubscribe(self, listener: Callable[[LiveEvent], None]) -> None:
        """Remove a previously subscribed callback (ValueError if absent)."""
        self._listeners.unsubscribe(listener)

    def now(self) -> float:
        t = self._clock()
        if self._epoch is None:
            self._epoch = t
        return t - self._epoch

    # ------------------------------------------------------------------
    def ingest(self, data: bytes, arrival: float | None = None) -> Heartbeat | None:
        """Feed one raw datagram (same contract as ``LiveMonitor.ingest``)."""
        if arrival is None:
            arrival = self.now()
        try:
            hb = Heartbeat.decode(data)
        except WireError as exc:
            self.n_malformed += 1
            self.reject_reasons[exc.reason] = (
                self.reject_reasons.get(exc.reason, 0) + 1
            )
            logger.debug("dropping malformed datagram: %s", exc)
            return None
        if hb.sender != self.peer:
            self.n_foreign += 1
            return None
        self.n_datagrams += 1
        tracer = self._tracer
        traced = tracer is not None and tracer.wants(hb.seq)
        if traced:
            tracer.record(
                "recv", time=arrival, peer=self.peer, hb_seq=hb.seq,
                sent_at=hb.timestamp,
            )
        if self.shared.receive(hb.seq, arrival):
            self.n_accepted += 1
            self.last_arrival = arrival
            if self.first_arrival is None:
                self.first_arrival = arrival
                obs = self._obs
                if obs is not None and obs.qos is not None:
                    for name in self.shared.application_names:
                        obs.qos.observe_start(self.peer, name, arrival)
            if traced:
                tracer.record(
                    "fresh", time=arrival, peer=self.peer, hb_seq=hb.seq,
                )
        else:
            self.n_stale += 1
            if traced:
                tracer.record(
                    "stale", time=arrival, peer=self.peer, hb_seq=hb.seq,
                )
        self._drain()
        return hb

    def poll(self, now: float | None = None) -> List[LiveEvent]:
        """Materialize freshness-point expiries; return new app events."""
        if now is None:
            now = self.now()
        self.shared.advance_to(now)
        return self._drain()

    def _drain(self) -> List[LiveEvent]:
        fresh: List[LiveEvent] = []
        for name in self.shared.application_names:
            new, self._consumed[name] = self.shared.drain_transitions(
                name, self._consumed[name]
            )
            for t, trusting in new:
                fresh.append(
                    LiveEvent(time=t, peer=self.peer, detector=name, trusting=trusting)
                )
        if fresh:
            log_events = logger.isEnabledFor(logging.INFO)
            tracer = self._tracer
            for event in fresh:
                self._events.append(event)
                if tracer is not None:
                    tracer.record(
                        event.kind,
                        time=event.time,
                        peer=event.peer,
                        detector=event.detector,
                    )
                if log_events:
                    logger.info(
                        structured(
                            event.kind, peer=event.peer, application=event.detector,
                            time=event.time,
                        )
                    )
                self._listeners.emit(event)
        return fresh

    # ------------------------------------------------------------------
    def snapshot(self, now: float | None = None) -> dict:
        """JSON-able state in the same shape the status endpoint serves."""
        if now is None:
            now = self.now()
        applications = {}
        for name in self.shared.application_names:
            applications[name] = {
                "trusting": self.shared.is_trusting(name, now),
                "freshness_point": self.shared.suspicion_deadline(name),
                "margin": self.shared.margin(name),
                "n_suspicions": self.shared.n_suspicions(name),
            }
        snap = {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "now": now,
            "mode": "shared",
            "peer": self.peer,
            "interval": self.shared.interval,
            "n_datagrams": self.n_datagrams,
            "n_accepted": self.n_accepted,
            "n_stale": self.n_stale,
            "n_foreign": self.n_foreign,
            "n_malformed": self.n_malformed,
            "reject_reasons": dict(self.reject_reasons),
            "n_events": self._events.total,
            "n_events_dropped": self._events.dropped,
            "n_listener_errors": self._listeners.n_errors,
            "applications": applications,
        }
        if self.service is not None:
            cfg = self.service.configuration
            snap["traffic"] = {
                "message_rate": cfg.message_rate,
                "dedicated_message_rate": cfg.dedicated_message_rate,
                "traffic_reduction": cfg.traffic_reduction,
            }
        return snap

    def timelines(self, end: float | None = None) -> Dict[str, OutputTimeline]:
        """Close the run; one scoreable timeline per application."""
        if end is None:
            end = self.now()
        if self.first_arrival is None or end <= self.first_arrival:
            return {}
        finalized = self.shared.finalize(end)
        self._drain()
        return {
            name: OutputTimeline.from_transitions(
                trans, start=self.first_arrival, end=end
            )
            for name, trans in finalized.items()
        }
