"""The async heartbeat sender daemon (process p).

Sends heartbeat ``m_k`` at sender-clock ``k·Δi`` (Alg. 1 lines 1-3) over a
real UDP socket.  The schedule is computed from the *start instant* on the
monotonic clock (``start + k·Δi``), never by accumulating sleeps, so pacing
does not drift with scheduler jitter.

All fault injection goes through a :class:`~repro.live.chaos.ChaosSpec`:
drop and delay decisions per packet, a skewed sender clock (pacing and the
embedded timestamps), and a scheduled crash after which the daemon stops
emitting — exactly the decisions :func:`repro.live.chaos.plan_delivery`
unrolls offline, so a seeded live run is reproducible in tests without
sockets.

Shutdown is clean: :meth:`Heartbeater.stop` wakes the run loop immediately,
pending delayed (chaos) sends are cancelled, and the transport is closed.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Callable, Set, Tuple

from repro._validation import ensure_positive
from repro.live.chaos import ChaosSpec
from repro.live.status import structured
from repro.live.wire import Heartbeat
from repro.obs.runtime import Observability

__all__ = ["Heartbeater"]

logger = logging.getLogger("repro.live.heartbeater")


class Heartbeater:
    """Send heartbeats to ``target`` every ``interval`` seconds.

    Parameters
    ----------
    target:
        ``(host, port)`` of the monitor's UDP endpoint.
    sender_id:
        This process's id, carried in every heartbeat.
    interval:
        Δi in seconds (on the sender's — possibly chaos-skewed — clock).
    count:
        Stop after this many heartbeat slots (None = until ``stop()``).
    chaos:
        Fault injection; default no loss, no delay, perfect clock, no crash.
    tenant:
        Optional fdaas tenant id; when given, the wire sender id becomes
        ``tenant/sender_id`` (the namespacing a multi-tenant monitor's
        admission layer requires — see :mod:`repro.fdaas.tenants`).
    auth_key:
        Optional per-tenant HMAC key; when given, heartbeats are emitted
        as wire-v2 datagrams with an HMAC-SHA256 trailer
        (:meth:`~repro.live.wire.Heartbeat.encode_signed`) instead of
        plain v1.
    clock:
        Monotonic time source (injectable for tests).
    obs:
        Observability bundle (``None`` = off).  Exports per-sender
        ``repro_heartbeats_sent_total`` / ``repro_heartbeats_chaos_dropped_total``
        counters (mirrored from the running totals at scrape time) and —
        when a tracer is attached — records a sampled ``send`` trace
        event per emitted heartbeat, correlated with the monitor's
        ``recv``/``fresh`` stages via the ``"<sender>:<seq>"`` span.
    """

    def __init__(
        self,
        target: Tuple[str, int],
        *,
        sender_id: str = "p",
        interval: float,
        count: int | None = None,
        chaos: ChaosSpec | None = None,
        tenant: str | None = None,
        auth_key: bytes | None = None,
        clock: Callable[[], float] = time.monotonic,
        obs: Observability | None = None,
    ):
        ensure_positive(interval, "interval")
        if count is not None and count < 1:
            raise ValueError(f"count must be positive, got {count}")
        if tenant is not None:
            from repro.fdaas.tenants import namespaced

            sender_id = namespaced(tenant, sender_id)
        self._target = target
        self._sender_id = sender_id
        self._auth_key = auth_key
        self._interval = float(interval)
        self._count = count
        self._chaos = chaos or ChaosSpec()
        self._clock = clock
        self._stop = asyncio.Event()
        self._delayed: Set[asyncio.Task] = set()
        self.n_sent = 0  # heartbeats emitted by p (pre-chaos)
        self.n_dropped = 0  # eaten by chaos loss
        self.crashed = False
        self._tracer = obs.tracer if obs is not None else None
        if obs is not None:
            reg = obs.registry
            m_sent = reg.counter(
                "repro_heartbeats_sent_total",
                "Heartbeats emitted by the sender (pre-chaos).",
                ("sender",),
            ).labels(sender_id)
            m_dropped = reg.counter(
                "repro_heartbeats_chaos_dropped_total",
                "Heartbeats eaten by injected chaos loss.",
                ("sender",),
            ).labels(sender_id)
            g_crashed = reg.gauge(
                "repro_heartbeater_crashed",
                "1 after the injected crash point, else 0.",
                ("sender",),
            ).labels(sender_id)

            def _collect() -> None:
                m_sent.set_total(self.n_sent)
                m_dropped.set_total(self.n_dropped)
                g_crashed.set(1.0 if self.crashed else 0.0)

            reg.add_collect_hook(_collect)

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def sender_id(self) -> str:
        return self._sender_id

    def stop(self) -> None:
        """Request a clean shutdown (idempotent, safe from callbacks)."""
        self._stop.set()

    async def run(self) -> int:
        """Send until ``count``, crash, or :meth:`stop`; returns ``n_sent``."""
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            asyncio.DatagramProtocol, remote_addr=self._target
        )
        link = self._chaos.link()
        start_wall = self._clock()
        logger.info(
            structured(
                "heartbeater-started",
                sender=self._sender_id,
                target=list(self._target),
                interval=self._interval,
                crash_at=self._chaos.crash_at,
            )
        )
        try:
            k = 0
            while not self._stop.is_set():
                k += 1
                if self._count is not None and k > self._count:
                    break
                sender_elapsed = k * self._interval  # m_k due at k·Δi (p's clock)
                if link.crashed(sender_elapsed):
                    self.crashed = True
                    logger.info(
                        structured(
                            "heartbeater-crashed",
                            sender=self._sender_id,
                            crash_at=self._chaos.crash_at,
                            n_sent=self.n_sent,
                        )
                    )
                    break
                due_wall = start_wall + link.wall_elapsed(sender_elapsed)
                remaining = due_wall - self._clock()
                if remaining > 0:
                    try:
                        await asyncio.wait_for(self._stop.wait(), remaining)
                        break  # stopped while sleeping
                    except asyncio.TimeoutError:
                        pass
                self.n_sent += 1
                timestamp = link.sender_clock(self._clock())
                beat = Heartbeat(
                    sender=self._sender_id,
                    seq=k,
                    timestamp=timestamp,
                )
                if self._auth_key is not None:
                    payload = beat.encode_signed(self._auth_key)
                else:
                    payload = beat.encode()
                fate = link.fate()
                tracer = self._tracer
                if tracer is not None and tracer.wants(k):
                    tracer.record(
                        "send",
                        time=timestamp,
                        peer=self._sender_id,
                        hb_seq=k,
                        delivered=fate.delivered,
                        delay=fate.delay,
                    )
                if not fate.delivered:
                    self.n_dropped += 1
                elif fate.delay <= 0.0:
                    transport.sendto(payload)
                else:
                    # Chaos delay: hold the datagram back without blocking
                    # the pacing loop.
                    task = asyncio.create_task(
                        self._send_delayed(transport, payload, fate.delay)
                    )
                    self._delayed.add(task)
                    task.add_done_callback(self._delayed.discard)
            return self.n_sent
        finally:
            for task in tuple(self._delayed):
                task.cancel()
            if self._delayed:
                await asyncio.gather(*self._delayed, return_exceptions=True)
            self._delayed.clear()
            transport.close()
            logger.info(
                structured(
                    "heartbeater-stopped",
                    sender=self._sender_id,
                    n_sent=self.n_sent,
                    n_dropped=self.n_dropped,
                    crashed=self.crashed,
                )
            )

    async def _send_delayed(
        self, transport: asyncio.DatagramTransport, payload: bytes, delay: float
    ) -> None:
        await asyncio.sleep(delay)
        if not transport.is_closing():
            transport.sendto(payload)
