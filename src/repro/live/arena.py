"""Preallocated datagram arena: a ``recvmmsg``-style zero-copy socket drain.

Python exposes no ``recvmmsg``, but the same effect — draining a burst of
datagrams without allocating a ``bytes`` object per packet — falls out of
``socket.recv_into`` against a preallocated ``bytearray`` carved into
fixed-size slots.  One :class:`DatagramArena` is reused for every drain of
a socket's receive queue; downstream consumers see ``memoryview`` slices
(or, on the vectorized path, a numpy ``uint8`` view plus slot offsets and
per-datagram lengths) and never copy the payload.

Slot sizing: the largest *valid* heartbeat is
``wire.MAX_DATAGRAM_BYTES`` (309 bytes: 22 bytes of framing, a 255-byte
sender id, and the version-2 HMAC trailer).  Slots are one byte larger, so
any datagram that ``recv_into`` truncates to the slot size was at least
``310 > 309`` bytes on the wire — longer than any valid heartbeat, and
therefore rejected by the wire layer's length check exactly as the copying
path would reject the full payload.  Truncation consequently never masks a
valid heartbeat and never changes an accept/reject verdict.
"""

from __future__ import annotations

import socket
from typing import List

from repro.live.wire import MAX_DATAGRAM_BYTES

__all__ = ["ARENA_SLOT_BYTES", "DEFAULT_ARENA_SLOTS", "DatagramArena"]

#: One byte more than the largest valid heartbeat, so truncated reads are
#: distinguishable from (and rejected identically to) oversized datagrams.
ARENA_SLOT_BYTES = MAX_DATAGRAM_BYTES + 1

#: Default drain burst: bounds per-callback latency while amortizing the
#: syscall-per-datagram cost across a large vectorized batch.
DEFAULT_ARENA_SLOTS = 512


class DatagramArena:
    """A reusable, preallocated receive buffer for bulk datagram drains.

    The arena owns one ``bytearray`` of ``slots * slot_bytes`` and a
    per-slot list of writable ``memoryview`` windows created once at
    construction — a drain performs zero Python-level allocation beyond
    the ``recv_into`` calls themselves.
    """

    __slots__ = (
        "slots",
        "slot_bytes",
        "buffer",
        "lengths",
        "_views",
        "last_fill",
        "n_drains",
        "n_datagrams",
    )

    def __init__(
        self, slots: int = DEFAULT_ARENA_SLOTS, slot_bytes: int = ARENA_SLOT_BYTES
    ):
        if slots < 1:
            raise ValueError(f"arena needs at least one slot, got {slots}")
        if slot_bytes < 1:
            raise ValueError(f"slot size must be positive, got {slot_bytes}")
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.buffer = bytearray(slots * slot_bytes)
        self.lengths: List[int] = [0] * slots
        view = memoryview(self.buffer)
        self._views = [
            view[i * slot_bytes : (i + 1) * slot_bytes] for i in range(slots)
        ]
        self.last_fill = 0
        self.n_drains = 0
        self.n_datagrams = 0

    def drain(self, sock: socket.socket) -> int:
        """Fill slots from a non-blocking socket until it is dry or the
        arena is full; returns the number of datagrams read.

        Per-datagram lengths land in :attr:`lengths` (only the first
        ``last_fill`` entries are meaningful).  A full arena simply returns
        — with a level-triggered event loop the readable callback fires
        again immediately, so nothing is lost.
        """
        views = self._views
        lengths = self.lengths
        recv_into = sock.recv_into
        k = 0
        slots = self.slots
        try:
            while k < slots:
                lengths[k] = recv_into(views[k])
                k += 1
        except BlockingIOError:
            pass
        self.last_fill = k
        self.n_drains += 1
        self.n_datagrams += k
        return k

    def datagram(self, i: int) -> memoryview:
        """The ``i``-th drained datagram as a zero-copy memoryview slice."""
        if not 0 <= i < self.last_fill:
            raise IndexError(f"datagram {i} out of range (drained {self.last_fill})")
        return self._views[i][: self.lengths[i]]

    def datagrams(self) -> List[memoryview]:
        """All datagrams of the last drain as zero-copy memoryview slices."""
        return [self._views[i][: self.lengths[i]] for i in range(self.last_fill)]

    @property
    def occupancy(self) -> float:
        """Fraction of slots used by the last drain (arena pressure)."""
        return self.last_fill / self.slots

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatagramArena(slots={self.slots}, slot_bytes={self.slot_bytes}, "
            f"last_fill={self.last_fill}, n_drains={self.n_drains})"
        )
