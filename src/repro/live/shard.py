"""Multi-core live ingest: SO_REUSEPORT shard workers + snapshot merging.

A single :class:`~repro.live.monitor.LiveMonitor` is one Python process —
one core, however fast the batched ingest path gets.  ``SO_REUSEPORT``
lifts that ceiling without any routing tier: N worker processes each bind
the *same* UDP address, and the kernel distributes datagrams across the
sockets by a hash of the packet's 4-tuple, so one sender's heartbeats
consistently land on one worker.  Each worker owns a full
:class:`LiveMonitor` (its own detectors, deadline heap, poll loop, and
local status endpoint); no state is shared between workers, so there is no
locking anywhere on the datagram path.

The parent process (:class:`ShardedMonitor`) is a pure aggregator: it
spawns the workers, collects their status-port addresses, and serves one
merged JSON document over the existing status protocol —
:func:`merge_snapshots` sums the counters, unions the per-peer listings,
and takes the worst-case poll latency, so ``repro-fd live status`` reads a
sharded deployment exactly as it reads a single monitor (the document says
``"mode": "sharded"`` and lists the per-shard contributions).

On platforms without ``SO_REUSEPORT`` (see :func:`reuseport_supported`)
— or with ``n_shards=1`` — :class:`ShardedMonitor` degrades to a single
in-process :class:`LiveMonitorServer` with the same external surface: the
same UDP port semantics, the same merged-document shape (``n_shards: 1``).

Caveat: each worker stamps arrivals on its *own* monitor clock (epoch =
its first datagram), so arrival times in the merged per-peer listing are
shard-relative — consistent per peer (a peer sticks to one shard), not
comparable across peers on different shards.
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import socket
import time
from typing import Dict, List, Mapping, Sequence, Tuple

from repro._validation import ensure_int_at_least, ensure_positive
from repro.live.delta import MergedStatusView
from repro.live.monitor import LiveMonitor, LiveMonitorServer
from repro.live.status import (
    SNAPSHOT_SCHEMA_VERSION,
    StatusServer,
    afetch_delta,
    afetch_diag,
    afetch_metrics,
    afetch_status,
    structured,
)
from repro.obs.diag import (
    DEFAULT_SAMPLE_EVERY,
    DEFAULT_STALL_THRESHOLD,
    merge_diag_documents,
)
from repro.obs.metrics import (
    merge_expositions,
    merge_parsed,
    parse_exposition,
    render_parsed,
)
from repro.obs.runtime import Observability

__all__ = [
    "ShardedMonitor",
    "merge_snapshots",
    "reuseport_supported",
]

logger = logging.getLogger("repro.live.shard")

#: How long the parent waits for a worker to report its ports.
WORKER_START_TIMEOUT = 10.0


def reuseport_supported() -> bool:
    """Can this platform bind multiple UDP sockets to one address?

    True iff ``socket.SO_REUSEPORT`` exists *and* the kernel accepts it
    (some platforms define the constant but reject the setsockopt).
    """
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sock:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    except OSError:
        return False
    return True


def _bind_reuseport(host: str, port: int) -> socket.socket:
    """One non-blocking UDP socket in the shared-port group."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.setblocking(False)
    except OSError:
        sock.close()
        raise
    return sock


# ----------------------------------------------------------------------
# Snapshot merging (pure; unit-testable without any processes)
# ----------------------------------------------------------------------

#: Gauge merge policy for shard expositions: population-style gauges add
#: across shards, identity gauges take the later document (same build
#: everywhere, and a numeric fold of an *_info gauge is meaningless);
#: every unlisted gauge takes the worst case — e.g. poll latency.  Same
#: shape as the snapshot merge: peer counts / rates sum, latencies max.
_GAUGE_SUM_METRICS = {
    "repro_monitor_peers": "sum",
    "repro_monitor_heap_size": "sum",
    "repro_heartbeat_rate": "sum",
    "repro_build_info": "last",
    "repro_process_start_time_seconds": "last",
}

#: ``monitor`` block counters that add across shards.
_SUM_LOAD_KEYS = (
    "n_peers",
    "heap_size",
    "heartbeat_rate",
    "n_polls",
    "n_batches",
    "n_events_total",
    "n_events_dropped",
    "n_listener_errors",
)


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Merge per-shard monitor snapshots into one status document.

    Counters are summed, the per-peer listings unioned (should a peer
    appear on several shards — possible after worker churn — the entry
    with the most accepted heartbeats wins, ties to the later shard), and
    the poll latency reported is the worst across shards.  Scalars that
    must agree (interval, detector set, schema) are taken from the first
    snapshot; a mismatch raises, because it means the shards are not
    replicas of one configuration.
    """
    if not snapshots:
        raise ValueError("need at least one snapshot to merge")
    first = snapshots[0]
    for snap in snapshots[1:]:
        for key in ("schema", "interval", "detectors"):
            if snap.get(key) != first.get(key):
                raise ValueError(
                    f"shard snapshots disagree on {key!r}: "
                    f"{snap.get(key)!r} != {first.get(key)!r}"
                )
    merged_load: Dict[str, object] = {key: 0 for key in _SUM_LOAD_KEYS}
    merged_counters: Dict[str, float] = {}
    last_poll = None
    peers: Dict[str, dict] = {}
    shards: List[dict] = []
    n_malformed = 0
    n_events = 0
    for idx, snap in enumerate(snapshots):
        load = snap.get("monitor", {})
        for key in _SUM_LOAD_KEYS:
            value = load.get(key)
            if value is not None:
                merged_load[key] += value
        for key, value in (load.get("counters") or {}).items():
            if isinstance(value, (int, float)):
                merged_counters[key] = merged_counters.get(key, 0) + value
        duration = load.get("last_poll_duration")
        if duration is not None and (last_poll is None or duration > last_poll):
            last_poll = duration
        n_malformed += snap.get("n_malformed", 0)
        n_events += snap.get("n_events", 0)
        for peer, entry in snap.get("peers", {}).items():
            held = peers.get(peer)
            if held is None or entry.get("n_accepted", 0) >= held.get(
                "n_accepted", 0
            ):
                peers[peer] = entry
        shards.append(
            {
                "shard": idx,
                "n_peers": load.get("n_peers"),
                "n_events": snap.get("n_events"),
                "heartbeat_rate": load.get("heartbeat_rate"),
                "n_malformed": snap.get("n_malformed"),
            }
        )
    if any("peers" in snap for snap in snapshots):
        # With the listings present, the union is authoritative (a peer
        # that migrated between shards must not be counted twice).
        merged_load["n_peers"] = len(peers)
    if merged_counters:
        merged_load["counters"] = merged_counters
    merged_load["last_poll_duration"] = last_poll
    merged_load["poll_mode"] = snapshots[0].get("monitor", {}).get("poll_mode")
    merged_load["estimation"] = snapshots[0].get("monitor", {}).get("estimation")
    merged = {
        "schema": first.get("schema", SNAPSHOT_SCHEMA_VERSION),
        "mode": "sharded",
        "n_shards": len(snapshots),
        "interval": first.get("interval"),
        "detectors": first.get("detectors"),
        "n_malformed": n_malformed,
        "n_events": n_events,
        "monitor": merged_load,
        "shards": shards,
    }
    if any("peers" in snap for snap in snapshots):
        merged["peers"] = peers
    admissions = [snap["admission"] for snap in snapshots if "admission" in snap]
    if admissions:
        merged["admission"] = _merge_admission(admissions)
    return merged


def _merge_admission(blocks: Sequence[dict]) -> dict:
    """Sum per-shard admission stats (each worker screens its own share).

    Note: per-tenant token buckets are per worker, so a sharded
    deployment's effective rate limit is ``rate × n_shards`` in the worst
    case — an accepted approximation (kernel 4-tuple hashing keeps one
    sender on one shard, so a single sender never sees more than one
    bucket).
    """
    merged = {
        "n_admitted": 0,
        "n_rejected": 0,
        "n_malformed_passthrough": 0,
        "reject_reasons": {},
        "tenants": {},
        "last_reject": None,
    }
    for block in blocks:
        merged["n_admitted"] += block.get("n_admitted", 0)
        merged["n_rejected"] += block.get("n_rejected", 0)
        merged["n_malformed_passthrough"] += block.get("n_malformed_passthrough", 0)
        for reason, count in (block.get("reject_reasons") or {}).items():
            merged["reject_reasons"][reason] = (
                merged["reject_reasons"].get(reason, 0) + count
            )
        for tid, stats in (block.get("tenants") or {}).items():
            held = merged["tenants"].setdefault(
                tid, {"admitted": 0, "rejected": {}}
            )
            held["admitted"] += stats.get("admitted", 0)
            for reason, count in (stats.get("rejected") or {}).items():
                held["rejected"][reason] = held["rejected"].get(reason, 0) + count
        if block.get("last_reject") is not None:
            merged["last_reject"] = block["last_reject"]
    return merged


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _shard_worker(
    shard_id: int,
    sock: socket.socket,
    monitor_kwargs: dict,
    tick: float,
    ready_queue,
    stop_event,
    obs_kwargs: dict | None = None,
    tenants_config: dict | None = None,
) -> None:  # pragma: no cover - subprocess body (exercised by integration tests)
    """One worker: a full LiveMonitor on its share of the UDP port."""
    try:
        asyncio.run(
            _shard_main(
                shard_id,
                sock,
                monitor_kwargs,
                tick,
                ready_queue,
                stop_event,
                obs_kwargs,
                tenants_config,
            )
        )
    except KeyboardInterrupt:
        pass
    except Exception as exc:
        try:
            ready_queue.put((shard_id, None, None, str(exc)))
        except Exception:
            pass
        raise


async def _shard_main(
    shard_id,
    sock,
    monitor_kwargs,
    tick,
    ready_queue,
    stop_event,
    obs_kwargs=None,
    tenants_config=None,
) -> None:  # pragma: no cover - subprocess body
    # Each worker owns a full observability stack (registry, tracer, QoS
    # estimators) — nothing is shared across processes; the parent merges
    # the per-shard expositions at scrape time.
    obs = Observability(**obs_kwargs) if obs_kwargs is not None else None
    monitor = LiveMonitor(**monitor_kwargs, obs=obs)
    # Each worker screens its own share of the datagram stream: the
    # registry rebuilds from the picklable config, so admission (auth,
    # replay, tenancy, rate limits) needs no cross-process state.  The
    # replay high-water marks and token buckets are per worker — sound,
    # because the kernel's 4-tuple hash keeps one sender on one shard.
    admission = None
    if tenants_config is not None:
        from repro.fdaas.admission import AdmissionController
        from repro.fdaas.tenants import TenantRegistry

        admission = AdmissionController(
            TenantRegistry.from_config(tenants_config), observability=obs
        )
    # The server's receive strategy follows the monitor's ingest mode: the
    # columnar-capable modes (vectorized, adaptive) drain the pre-bound
    # shard socket through the zero-copy arena instead of the asyncio
    # datagram transport.  Each worker owns its monitor — so under
    # adaptive mode every SO_REUSEPORT shard runs its own controller and
    # adapts to the fan-in the kernel's 4-tuple hash actually gives *it*,
    # independently of its siblings.
    server = LiveMonitorServer(
        monitor,
        tick=tick,
        status_port=0,
        ingest_mode=monitor_kwargs.get("ingest_mode", "batched"),
        sock=sock,
        admission=admission,
    )
    await server.start()
    assert server.status is not None
    ready_queue.put(
        (shard_id, server.address[1], server.status.address[1], None)
    )
    logger.info(
        structured(
            "shard-started", shard=shard_id, status_port=server.status.address[1]
        )
    )
    try:
        while not stop_event.is_set():
            await asyncio.sleep(0.05)
    finally:
        await server.stop()


# ----------------------------------------------------------------------
# Parent aggregator
# ----------------------------------------------------------------------


class ShardedMonitor:
    """N shard workers behind one UDP address + one merged status endpoint.

    Parameters mirror :class:`LiveMonitor` / :class:`LiveMonitorServer`;
    ``n_shards`` is the worker count.  With ``n_shards=1`` — or when the
    platform lacks ``SO_REUSEPORT`` and ``fallback=True`` — everything
    runs in-process as a single :class:`LiveMonitorServer`, same surface.

    Usage::

        sharded = ShardedMonitor(0.1, ["2w-fd"], n_shards=4, status_port=7700)
        await sharded.start()       # UDP address in sharded.address
        ...
        await sharded.stop()
    """

    def __init__(
        self,
        interval: float,
        detectors: Sequence[str] = ("2w-fd",),
        params: Mapping[str, float | None] | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        n_shards: int = 2,
        tick: float = 0.02,
        status_port: int | None = None,
        status_host: str = "127.0.0.1",
        estimation: str = "shared",
        poll_mode: str = "heap",
        ingest_mode: str = "batched",
        max_events: int | None = None,
        transition_retention: int | None = None,
        fallback: bool = True,
        obs: bool = False,
        trace_sample_every: int = 1,
        diagnostics: bool = False,
        diag_sample_every: int = DEFAULT_SAMPLE_EVERY,
        stall_threshold: float = DEFAULT_STALL_THRESHOLD,
        tenants_config: dict | None = None,
        status_timeout: float = 2.0,
        status_retries: int = 1,
        status_mode: str = "delta",
    ):
        ensure_positive(interval, "interval")
        ensure_int_at_least(n_shards, 1, "n_shards")
        ensure_positive(status_timeout, "status_timeout")
        ensure_int_at_least(status_retries, 0, "status_retries")
        if status_mode not in ("delta", "full"):
            raise ValueError(
                f"status_mode must be 'delta' or 'full', got {status_mode!r}"
            )
        self._status_timeout = float(status_timeout)
        self._status_retries = int(status_retries)
        #: ``"delta"`` folds per-worker deltas into a persistent merged
        #: view; ``"full"`` is the reference path — re-fetch and re-merge
        #: every worker's full snapshot per request.
        self.status_mode = status_mode
        # Multi-tenant admission: the picklable TenantRegistry.to_config()
        # dict; each worker rebuilds its own registry + controller from it.
        self._tenants_config = tenants_config
        if tenants_config is not None:
            # Validate up front in the parent, like the monitor config.
            from repro.fdaas.tenants import TenantRegistry

            TenantRegistry.from_config(tenants_config)
        # Observability: each worker builds its own bundle from this spec
        # (an Observability object holds collect hooks and can't cross the
        # fork); the parent merges the per-shard expositions.
        self._obs_kwargs = (
            dict(
                trace_sample_every=trace_sample_every,
                diagnostics=diagnostics,
                diag_sample_every=diag_sample_every,
                stall_threshold=stall_threshold,
            )
            if obs
            else None
        )
        self._diagnostics = bool(obs and diagnostics)
        # Validate the full monitor configuration up front (and in the
        # parent): a bad detector spec should raise here, not in a forked
        # worker ten seconds later.
        self._monitor_kwargs = dict(
            interval=float(interval),
            detectors=tuple(detectors),
            params=dict(params or {}),
            estimation=estimation,
            poll_mode=poll_mode,
            ingest_mode=ingest_mode,
            max_events=max_events,
            transition_retention=transition_retention,
        )
        LiveMonitor(**self._monitor_kwargs)
        self._host = host
        self._port = port
        self._tick = float(tick)
        self._status_port = status_port
        self._status_host = status_host
        self._requested_shards = n_shards
        if n_shards > 1 and not reuseport_supported():
            if not fallback:
                raise RuntimeError(
                    "SO_REUSEPORT is not available on this platform; "
                    "cannot run a multi-shard monitor (pass n_shards=1 "
                    "or fallback=True)"
                )
            logger.warning(
                structured(
                    "shard-fallback",
                    reason="SO_REUSEPORT unavailable",
                    requested=n_shards,
                )
            )
            n_shards = 1
        self.n_shards = n_shards
        self.address: Tuple[str, int] | None = None
        self.status: StatusServer | None = None
        self._single: LiveMonitorServer | None = None
        self._workers: List[multiprocessing.Process] = []
        self._status_ports: Dict[int, int] = {}
        self._stop_event = None
        # Delta-mode state: the persistent merged view (rebuilt per
        # start(), since workers — and their cursors — are per run), a
        # per-shard (text, parsed) exposition cache, and the last merged
        # exposition keyed on the tuple of per-shard texts.
        self._view = MergedStatusView(n_shards=self.n_shards)
        self._parsed_cache: Dict[int, Tuple[str, dict]] = {}
        self._merged_metrics_cache: Tuple[Tuple[str, ...], str] | None = None
        # Staleness ledger: shard id -> (last exposition text, monotonic
        # time that text was first seen).  A wedged worker keeps serving
        # its cached exposition, so its age grows while the others reset.
        self._expo_change: Dict[int, Tuple[str, float]] = {}

    # -- single-process fallback ---------------------------------------
    @property
    def mode(self) -> str:
        """``"sharded"`` (worker processes) or ``"single"`` (in-process)."""
        return "sharded" if self.n_shards > 1 else "single"

    async def _merged_snapshot(self) -> dict:
        """Reference path: full per-shard refetch + merge per request."""
        snaps = []
        errors = []
        results = await asyncio.gather(
            *(
                afetch_status(
                    self._status_host,
                    port,
                    timeout=self._status_timeout,
                    retries=self._status_retries,
                )
                for port in self._status_ports.values()
            ),
            return_exceptions=True,
        )
        for shard_id, result in zip(self._status_ports, results):
            if isinstance(result, BaseException):
                errors.append({"shard": shard_id, "error": str(result)})
            else:
                snaps.append(result)
        if not snaps:
            return {
                "schema": SNAPSHOT_SCHEMA_VERSION,
                "mode": "sharded",
                "n_shards": self.n_shards,
                "error": "no shard responded",
                "shard_errors": errors,
            }
        merged = merge_snapshots(snaps)
        merged["n_shards"] = self.n_shards
        if errors:
            merged["shard_errors"] = errors
        return merged

    async def _refresh_view(self) -> None:
        """One delta round: fetch each shard at its cursor, fold the lot.

        A restarted (or newly seen) worker answers a cursor minted by its
        predecessor with a full listing — instance ids don't match — so
        only that shard pays the full-refetch cost; the rest keep folding
        incrementally.  Unreachable shards surface in ``shard_errors``.
        """
        sids = list(self._status_ports)
        results = await asyncio.gather(
            *(
                afetch_delta(
                    self._status_host,
                    self._status_ports[sid],
                    *self._view.cursor(sid),
                    timeout=self._status_timeout,
                    retries=self._status_retries,
                )
                for sid in sids
            ),
            return_exceptions=True,
        )
        self._view.fold(dict(zip(sids, results)))

    async def _view_snapshot(self) -> dict:
        await self._refresh_view()
        return self._view.document()

    async def _view_delta(
        self, since: int | None = None, instance: str | None = None
    ) -> dict:
        """The parent's own ``delta`` responses (hierarchy-stackable)."""
        await self._refresh_view()
        return self._view.delta_document(since, instance)

    async def _merged_metrics(self) -> str:
        """One exposition for the whole shard group (counters summed,
        per-shard capacity gauges summed, latency gauges worst-case).

        In delta mode the parse/merge/render pipeline is cached: each
        shard's parsed document is reused while its text is unchanged
        (worker-side family render caches make unchanged text the common
        case), and the merged text is reused while *no* shard changed.
        ``status_mode="full"`` keeps the uncached reference pipeline.
        """
        results = await asyncio.gather(
            *(
                afetch_metrics(
                    self._status_host,
                    port,
                    timeout=self._status_timeout,
                    retries=self._status_retries,
                )
                for port in self._status_ports.values()
            ),
            return_exceptions=True,
        )
        texts = [r for r in results if isinstance(r, str)]
        if not texts:
            raise RuntimeError("no shard served a metrics exposition")
        now = time.monotonic()
        for sid, result in zip(self._status_ports, results):
            if not isinstance(result, str):
                continue
            held_text = self._expo_change.get(sid)
            if held_text is None or held_text[0] != result:
                self._expo_change[sid] = (result, now)
        if self.status_mode == "full":
            merged = merge_expositions(texts, gauge_policy=_GAUGE_SUM_METRICS)
            return merged + self._staleness_fragment(now)
        key = tuple(texts)
        held = self._merged_metrics_cache
        if held is not None and held[0] == key:
            return held[1] + self._staleness_fragment(now)
        parsed_docs = []
        for sid, result in zip(self._status_ports, results):
            if not isinstance(result, str):
                continue
            cached = self._parsed_cache.get(sid)
            if cached is None or cached[0] != result:
                cached = (result, parse_exposition(result))
                self._parsed_cache[sid] = cached
            parsed_docs.append(cached[1])
        text = render_parsed(
            merge_parsed(parsed_docs, gauge_policy=_GAUGE_SUM_METRICS)
        )
        self._merged_metrics_cache = (key, text)
        return text + self._staleness_fragment(now)

    def _staleness_fragment(self, now: float) -> str:
        """Per-shard exposition age, rendered *outside* the merge cache.

        Appended after the (cached) merged text so the ages stay live even
        when no shard's exposition changed — that standstill is exactly
        the condition the gauge exists to surface: a wedged worker keeps
        answering with its last cached exposition, indistinguishable from
        a healthy idle one until its age keeps growing while the rest
        reset on every real update.
        """
        if not self._expo_change:
            return ""
        lines = [
            "# HELP repro_shard_exposition_age_seconds Seconds since this "
            "shard's exposition text last changed.",
            "# TYPE repro_shard_exposition_age_seconds gauge",
        ]
        for sid in sorted(self._expo_change):
            age = max(0.0, now - self._expo_change[sid][1])
            lines.append(
                'repro_shard_exposition_age_seconds{shard="%d"} %.6f'
                % (sid, age)
            )
        return "\n".join(lines) + "\n"

    async def _merged_diag(self, since: int = 0) -> dict:
        """One diagnostics document for the whole shard group.

        ``since`` is accepted for protocol symmetry but ignored: one
        cursor cannot address N independent flight-recorder rings, so the
        parent always fetches each shard from cursor 0 and reports the
        per-shard cursors under ``"shards"`` — resume against a specific
        shard's status port directly if incremental tailing is needed.
        """
        results = await asyncio.gather(
            *(
                afetch_diag(
                    self._status_host,
                    port,
                    0,
                    timeout=self._status_timeout,
                    retries=self._status_retries,
                )
                for port in self._status_ports.values()
            ),
            return_exceptions=True,
        )
        docs = {}
        errors = []
        for sid, result in zip(self._status_ports, results):
            if isinstance(result, BaseException):
                errors.append({"shard": sid, "error": str(result)})
            else:
                docs[sid] = result
        merged = merge_diag_documents(docs)
        if errors:
            merged["shard_errors"] = errors
        return merged

    async def start(self) -> Tuple[str, int]:
        """Bind the shared UDP port, start the workers, serve the merge."""
        if self.n_shards == 1:
            obs = (
                Observability(**self._obs_kwargs)
                if self._obs_kwargs is not None
                else None
            )
            monitor = LiveMonitor(**self._monitor_kwargs, obs=obs)
            admission = None
            if self._tenants_config is not None:
                from repro.fdaas.admission import AdmissionController
                from repro.fdaas.tenants import TenantRegistry

                admission = AdmissionController(
                    TenantRegistry.from_config(self._tenants_config),
                    observability=obs,
                )
            self._single = LiveMonitorServer(
                monitor,
                self._host,
                self._port,
                tick=self._tick,
                status_port=self._status_port,
                status_host=self._status_host,
                ingest_mode=self._monitor_kwargs["ingest_mode"],
                admission=admission,
            )
            self.address = await self._single.start()
            self.status = self._single.status
            return self.address

        # Bind every worker's socket here, before forking: all must join
        # the same SO_REUSEPORT group, and binding port 0 in the workers
        # would hand each one a *different* ephemeral port.
        first = _bind_reuseport(self._host, self._port)
        bound_port = first.getsockname()[1]
        socks = [first]
        try:
            for _ in range(self.n_shards - 1):
                socks.append(_bind_reuseport(self._host, bound_port))
        except OSError:
            for sock in socks:
                sock.close()
            raise
        self.address = (self._host, bound_port)

        ctx = multiprocessing.get_context("fork")
        self._stop_event = ctx.Event()
        ready_queue = ctx.Queue()
        for shard_id, sock in enumerate(socks):
            proc = ctx.Process(
                target=_shard_worker,
                args=(
                    shard_id,
                    sock,
                    self._monitor_kwargs,
                    self._tick,
                    ready_queue,
                    self._stop_event,
                    self._obs_kwargs,
                    self._tenants_config,
                ),
                daemon=True,
            )
            proc.start()
            self._workers.append(proc)
        # The parent's copies of the sockets must close, or the kernel
        # would keep dealing datagrams to fds nobody reads.  (The workers
        # inherited every fd via fork; each reads only its own — the
        # others die with the process group at shutdown.)
        for sock in socks:
            sock.close()

        loop = asyncio.get_running_loop()
        try:
            for _ in range(self.n_shards):
                shard_id, _udp, status_port, error = await loop.run_in_executor(
                    None, ready_queue.get, True, WORKER_START_TIMEOUT
                )
                if error is not None:
                    raise RuntimeError(f"shard {shard_id} failed to start: {error}")
                self._status_ports[shard_id] = status_port
        except Exception:
            await self.stop()
            raise
        self._status_ports = dict(sorted(self._status_ports.items()))
        # Fresh workers mean fresh cursors: discard any view/caches from a
        # previous run of this aggregator.
        self._view = MergedStatusView(n_shards=self.n_shards)
        self._parsed_cache = {}
        self._merged_metrics_cache = None
        self._expo_change = {}

        if self._status_port is not None:
            delta_mode = self.status_mode == "delta"
            self.status = StatusServer(
                self._view_snapshot if delta_mode else self._merged_snapshot,
                host=self._status_host,
                port=self._status_port,
                delta=self._view_delta if delta_mode else None,
                metrics=(
                    self._merged_metrics
                    if self._obs_kwargs is not None
                    else None
                ),
                diag=self._merged_diag if self._diagnostics else None,
            )
            await self.status.start()
        logger.info(
            structured(
                "sharded-monitor-started",
                host=self.address[0],
                port=self.address[1],
                n_shards=self.n_shards,
            )
        )
        return self.address

    async def snapshot(self) -> dict:
        """The merged status document (fetches every live shard)."""
        if self._single is not None:
            snap = self._single._status_snapshot()  # includes "admission"
            merged = merge_snapshots([snap])
            merged["n_shards"] = 1
            return merged
        if self.status_mode == "delta":
            return await self._view_snapshot()
        return await self._merged_snapshot()

    async def metrics(self) -> str:
        """The merged Prometheus exposition (RuntimeError with obs off)."""
        if self._obs_kwargs is None:
            raise RuntimeError(
                "observability is off for this sharded monitor (pass obs=True)"
            )
        if self._single is not None:
            return self._single.monitor.render_metrics()
        return await self._merged_metrics()

    async def stop(self) -> None:
        """Stop the status endpoint and shut every worker down."""
        if self.status is not None and self._single is None:
            await self.status.stop()
            self.status = None
        if self._single is not None:
            await self._single.stop()
            self._single = None
            self.status = None
            return
        if self._stop_event is not None:
            self._stop_event.set()
        loop = asyncio.get_running_loop()
        for proc in self._workers:
            await loop.run_in_executor(None, proc.join, 5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                await loop.run_in_executor(None, proc.join, 5.0)
        self._workers = []
        self._status_ports = {}
        logger.info(structured("sharded-monitor-stopped"))

    async def __aenter__(self) -> "ShardedMonitor":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()
