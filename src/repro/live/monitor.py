"""The live monitor daemon (process q) over real UDP sockets.

:class:`LiveMonitor` is the transport-free engine: it decodes heartbeat
datagrams (:mod:`repro.live.wire`), maintains one set of online detectors
per peer (any names from :mod:`repro.detectors.registry`), polls liveness,
and emits a subscribe-able stream of :class:`LiveEvent` suspicion/trust
transitions — the live analogue of :class:`repro.qos.timeline.OutputTimeline`.
:meth:`LiveMonitor.timelines` converts a finished run into real
``OutputTimeline`` objects, so :func:`repro.qos.metrics.compute_metrics`
scores a live run exactly as it scores a replayed one.

The liveness poll is scheduled by a lazy-deletion min-heap of suspicion
deadlines with **one entry per peer** — the minimum over that peer's
detectors' freshness points.  Every accepted heartbeat pushes the new
minimum (the old entry is superseded in place via the peer's ``sched``
field and discarded on pop); :meth:`LiveMonitor.poll` pops only entries
whose deadline has passed, advances *all* of the popped peer's detectors,
and re-schedules the earliest still-pending deadline.  Because the
per-peer minimum is ≤ every detector deadline, no expiry can be missed,
and a tick costs O(expired peers · log n) with exactly one heap push per
accepted heartbeat however many detectors are configured.  The pre-heap
full sweep survives as ``poll_mode="sweep"``, the reference the
equivalence property tests and the live benchmark compare against.

:class:`LiveMonitorServer` binds the engine to an asyncio UDP endpoint and
a periodic poll task, optionally alongside the JSON status endpoint
(:mod:`repro.live.status`).

All detector inputs are ``(seq, arrival)`` with arrivals on the *monitor's*
monotonic clock, relative to the monitor's start — sender clocks (and any
chaos-injected skew) never enter the detection path, only the
observability fields of the status snapshot.
"""

from __future__ import annotations

import asyncio
import heapq
import logging
import math
import socket
import time
import uuid
from collections import deque
from dataclasses import dataclass
from itertools import repeat
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro._validation import ensure_positive
from repro.core.arrivalstats import SharedArrivalState
from repro.core.base import HeartbeatFailureDetector
from repro.detectors.registry import make_tuned
from repro.live.status import SNAPSHOT_SCHEMA_VERSION, StatusServer, structured
from repro.live.wire import (
    Heartbeat,
    WireError,
    decode_fields,
    decode_fields_from,
)
from repro.obs.diag import install_sigusr1, restore_sigusr1
from repro.obs.metrics import log_buckets
from repro.obs.runtime import Observability
from repro.qos.timeline import OutputTimeline

__all__ = ["LiveEvent", "LiveMonitor", "LiveMonitorServer", "PeerStatus"]

logger = logging.getLogger("repro.live.monitor")

#: Time constant (seconds) of the decayed heartbeat-rate estimate.
RATE_TAU = 10.0


@dataclass(frozen=True)
class LiveEvent:
    """One detector output transition, as observed by the live monitor.

    ``time`` is the exact transition instant on the monitor clock (the
    freshness-point expiry for suspicions, the heartbeat arrival for trust
    renewals) — not the polling tick that materialized it.
    """

    time: float
    peer: str
    detector: str
    trusting: bool

    @property
    def kind(self) -> str:
        return "trust" if self.trusting else "suspect"


class _EventLog:
    """Ring buffer of emitted events with O(1) total/dropped accounting."""

    __slots__ = ("_events", "max_events", "total")

    def __init__(self, max_events: int | None):
        if max_events is not None:
            ensure_positive(max_events, "max_events")
        self.max_events = max_events
        self._events: deque = deque(maxlen=max_events)
        self.total = 0

    def append(self, event: LiveEvent) -> None:
        self._events.append(event)
        self.total += 1

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        return self.total - len(self._events)

    def as_list(self) -> List[LiveEvent]:
        return list(self._events)


class _ListenerSet:
    """Subscriber callbacks that can never take the detection path down.

    A listener that raises is caught, counted, and logged — one bad
    subscriber must not abort ``ingest``/``poll`` mid-drain (nor starve
    the listeners registered after it).
    """

    __slots__ = ("_listeners", "n_errors")

    def __init__(self) -> None:
        self._listeners: List[Callable[[LiveEvent], None]] = []
        self.n_errors = 0

    def __len__(self) -> int:
        return len(self._listeners)

    def subscribe(self, listener: Callable[[LiveEvent], None]) -> None:
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[LiveEvent], None]) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            raise ValueError("listener is not subscribed") from None

    def emit(self, event: LiveEvent) -> None:
        for listener in tuple(self._listeners):
            try:
                listener(event)
            except Exception:
                self.n_errors += 1
                logger.exception(
                    "event listener %r raised; event %s dropped by it",
                    listener,
                    event,
                )


class _RateMeter:
    """Exponentially decayed event-rate estimate (events/second).

    A decayed counter ``N`` (half-life ``tau·ln 2``) is bumped per event;
    ``N/tau`` estimates the recent rate with O(1) state — no timestamp
    history, so it works at any peer count.
    """

    __slots__ = ("_tau", "_counter", "_last")

    def __init__(self, tau: float = RATE_TAU):
        self._tau = tau
        self._counter = 0.0
        self._last: float | None = None

    def _decay(self, now: float) -> None:
        if self._last is not None and now > self._last:
            self._counter *= math.exp((self._last - now) / self._tau)
        if self._last is None or now > self._last:
            self._last = now

    def update(self, now: float) -> None:
        self._decay(now)
        self._counter += 1.0

    def update_many(self, now: float, count: int) -> None:
        """One decay + one bump for a whole batch of events at ``now``."""
        self._decay(now)
        self._counter += count

    def rate(self, now: float) -> float:
        self._decay(now)
        return self._counter / self._tau


class _PeerState:
    """Everything the monitor tracks about one heartbeat sender."""

    __slots__ = (
        "name",
        "index",
        "detectors",
        "det_list",
        "fast_dets",
        "mid_dets",
        "slow_dets",
        "stats",
        "sched",
        "touch",
        "consumed",
        "consumed_total",
        "n_datagrams",
        "n_accepted",
        "n_stale",
        "first_arrival",
        "last_arrival",
        "last_timestamp",
        "last_seq",
        "gen",
        "removed",
    )

    def __init__(
        self,
        name: str,
        index: int,
        detectors: Dict[str, HeartbeatFailureDetector],
        stats: SharedArrivalState | None = None,
    ):
        self.name = name
        self.index = index  # discovery order: fixes the event drain order
        self.detectors = detectors
        # Flat hot-loop view: (name, detector, output, receive_accepted,
        # fast deadline).  The fast deadline is the detector's bound
        # _deadline when shared arrivals are bound and its _update is then
        # a guaranteed no-op (shared_update_noop): the batched loop then
        # applies the receive_shared body inline — deadline, output,
        # bookkeeping — without the method frame.  None means the detector
        # keeps per-message private state and must go through
        # receive_accepted.  Bound methods resolved once per peer, not
        # once per datagram.
        self.det_list = tuple(
            (
                dname,
                det,
                det._output,
                det.receive_accepted,
                det._deadline
                if (det.shared_arrivals and det.shared_update_noop)
                else None,
            )
            for dname, det in detectors.items()
        )
        # The same detectors split by batched-ingest dispatch kind, so the
        # hot loop iterates three homogeneous tuples instead of branching
        # per detector: *fast* (shared arrivals, no-op _update — only the
        # deadline and output remain), *mid* (shared arrivals but a
        # stateful _update, e.g. bertier's Jacobson margin), *slow*
        # (private estimation state; full receive_accepted).
        fast, mid, slow = [], [], []
        for det in detectors.values():
            if det.shared_arrivals and det.shared_update_noop:
                fast.append((det, det._output, det._deadline))
            elif det.shared_arrivals:
                mid.append((det, det._output, det._shared_receive))
            else:
                slow.append((det, det._output, det.receive_accepted))
        self.fast_dets = tuple(fast)
        self.mid_dets = tuple(mid)
        self.slow_dets = tuple(slow)
        self.stats = stats  # shared arrival statistics (None = private mode)
        # The peer's currently scheduled heap deadline (min over its
        # detectors' freshness points); None = no valid entry on the heap.
        # A popped entry is acted on only if it matches — lazy deletion.
        self.sched: float | None = None
        # Drain serial of the last batch that touched this peer — the
        # batched path's O(1)-per-datagram distinct-peer (fan-in) counter.
        self.touch = -1
        self.consumed = {det: 0 for det in detectors}  # absolute drain cursors
        self.consumed_total = 0  # sum of the cursors (one-comparison drain check)
        self.n_datagrams = 0
        self.n_accepted = 0
        self.n_stale = 0
        self.first_arrival: float | None = None
        self.last_arrival: float | None = None
        self.last_timestamp: float | None = None
        self.last_seq = 0
        # Snapshot generation of the last entry-visible change (the delta
        # dirty-set stamp); 0 predates every cursor, so a fresh peer is
        # always included until stamped.
        self.gen = 0
        # Tombstoned by remove_peer: the slot in _peer_by_index survives
        # (heap indices stay valid) but heavy state is dropped and the
        # engines must never re-register the name.
        self.removed = False


@dataclass(frozen=True)
class PeerStatus:
    """JSON-able per-peer snapshot line (one entry of ``snapshot()``)."""

    peer: str
    n_datagrams: int
    n_accepted: int
    n_stale: int
    last_seq: int
    last_arrival: float | None
    clock_offset_estimate: float | None
    detectors: Dict[str, dict]

    def as_dict(self) -> dict:
        return {
            "peer": self.peer,
            "n_datagrams": self.n_datagrams,
            "n_accepted": self.n_accepted,
            "n_stale": self.n_stale,
            "last_seq": self.last_seq,
            "last_arrival": self.last_arrival,
            "clock_offset_estimate": self.clock_offset_estimate,
            "detectors": self.detectors,
        }


class LiveMonitor:
    """Per-peer online failure detection over decoded heartbeat datagrams.

    Parameters
    ----------
    interval:
        The heartbeat interval Δi peers were asked to send at (a protocol
        parameter, as in the paper's model).
    detectors:
        Registry names to run for every peer; each peer gets its own
        instances.
    params:
        ``name -> tuning value`` routed through
        :func:`repro.detectors.registry.make_tuned` (None / missing for the
        self-configuring detectors).
    clock:
        Monotonic time source (injectable for tests).
    poll_mode:
        ``"heap"`` (default) schedules expiries on the deadline heap —
        O(expired · log n) per poll; ``"sweep"`` is the reference full
        walk over every peer and detector — O(peers · detectors) per
        poll.  Both emit identical event streams.
    estimation:
        ``"shared"`` (default) gives each peer one
        :class:`repro.core.arrivalstats.SharedArrivalState` pushed once
        per accepted heartbeat; detectors whose window configuration
        matches consume the shared windows instead of private copies
        (detectors that cannot share — e.g. ``bertier``, which reads its
        estimator *before* the push — keep private state automatically).
        ``"private"`` keeps every detector's estimation state private,
        exactly as before.  Both modes emit bitwise-identical event
        streams; shared mode just pays the window pushes once per peer
        instead of once per detector.
    max_events:
        Ring-buffer capacity for the retained event history (``None`` =
        unbounded).  Totals and drop counts stay exact either way.
    transition_retention:
        Per-detector transition-log compaction: retain at most this many
        log entries per detector (``None`` = full history).  Running
        suspicion counters stay exact; :meth:`timelines` is exact over
        the retained window (full history when off).
    obs:
        An :class:`repro.obs.runtime.Observability` bundle (``None`` =
        observability off, the default — near-zero hot-path cost).  When
        given, the monitor registers a scrape-time collector that mirrors
        its running totals into Prometheus counters, exports per-(peer,
        detector) QoS gauges (rolling T_MR/T_M/P_A from ``obs.qos``, plus
        the projected T_D — freshness point minus last arrival), observes
        ingest batch sizes into a histogram, and — when ``obs.tracer`` is
        set — records heartbeat lifecycle trace events (sampled by the
        tracer's ``sample_every``).
    adaptive_controller:
        A pre-configured
        :class:`repro.live.adaptive.AdaptiveIngestController` to use in
        place of the default policy (``ingest_mode="adaptive"`` only —
        any other mode raises).  Lets callers tune the hysteresis
        thresholds, minimum dwell, and EWMA smoothing; if the columnar
        engine is unavailable the monitor still pins the supplied
        controller to the batched path.
    """

    def __init__(
        self,
        interval: float,
        detectors: Sequence[str] = ("2w-fd",),
        params: Mapping[str, float | None] | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        poll_mode: str = "heap",
        estimation: str = "shared",
        ingest_mode: str = "batched",
        max_events: int | None = None,
        transition_retention: int | None = None,
        obs: Observability | None = None,
        adaptive_controller=None,
    ):
        ensure_positive(interval, "interval")
        if not detectors:
            raise ValueError("at least one detector name is required")
        if poll_mode not in ("heap", "sweep"):
            raise ValueError(
                f"poll_mode must be 'heap' or 'sweep', got {poll_mode!r}"
            )
        if estimation not in ("shared", "private"):
            raise ValueError(
                f"estimation must be 'shared' or 'private', got {estimation!r}"
            )
        if ingest_mode not in ("scalar", "batched", "vectorized", "adaptive"):
            raise ValueError(
                f"ingest_mode must be 'scalar', 'batched', 'vectorized' or "
                f"'adaptive', got {ingest_mode!r}"
            )
        if ingest_mode in ("vectorized", "adaptive") and estimation != "shared":
            raise ValueError(
                f"ingest_mode={ingest_mode!r} computes over the shared "
                "per-peer arrival statistics; it requires estimation='shared'"
            )
        if adaptive_controller is not None and ingest_mode != "adaptive":
            raise ValueError(
                "adaptive_controller only applies with ingest_mode='adaptive'"
            )
        if transition_retention is not None:
            ensure_positive(transition_retention, "transition_retention")
        self._interval = float(interval)
        self._params = dict(params or {})
        unknown = set(self._params) - set(detectors)
        if unknown:
            raise ValueError(
                f"params given for detectors not being run: {sorted(unknown)}"
            )
        self._detector_names = tuple(detectors)
        # Fail fast on bad names/params (satellite: friendly errors up
        # front, not TypeErrors when the first heartbeat arrives) — and,
        # while the probe instances are in hand, learn which of the
        # configured detectors can consume shared arrival statistics.
        self._estimation = estimation
        self._ingest_mode = ingest_mode
        probe_stats = SharedArrivalState(float(interval))
        shared_names: List[str] = []
        probe_dets: Dict[str, HeartbeatFailureDetector] = {}
        for name in self._detector_names:
            det = make_tuned(name, self._interval, self._params.get(name))
            probe_dets[name] = det
            if estimation == "shared" and det.bind_shared_arrivals(probe_stats):
                shared_names.append(name)
        self._shared_names = tuple(shared_names)
        self._peers: Dict[str, _PeerState] = {}
        self._peer_by_index: List[_PeerState] = []
        self._clock = clock
        self._epoch: float | None = None
        self._poll_mode = poll_mode
        self._retention = transition_retention
        # Lazy-deletion deadline heap: (deadline, peer index), one live
        # entry per peer — the min over its detectors' freshness points.
        # Entries are never removed on supersede; a popped entry is acted
        # on only if it still matches the peer's ``sched`` field.
        self._heap: List[Tuple[float, int]] = []
        self._listeners = _ListenerSet()
        self._events = _EventLog(max_events)
        self._rate = _RateMeter()
        self.n_malformed = 0
        # Reject attribution (malformed datagrams): per-reason counts keyed
        # by WireError.reason, per-source counts keyed by "host:port" (a
        # bounded map — beyond _MAX_REJECT_SOURCES distinct sources the
        # remainder aggregates under "other"), and the last reject seen.
        self.reject_reasons: Dict[str, int] = {}
        self.reject_sources: Dict[str, int] = {}
        self.last_reject: dict | None = None
        self.n_polls = 0
        self.n_batches = 0
        # Monitor-level ingest totals (the per-peer counters' sum, kept
        # incrementally so the summary head stays constant-size).
        self.n_received_total = 0
        self.n_accepted_total = 0
        self.n_stale_total = 0
        self.last_batch_size: int | None = None
        self.last_poll_duration: float | None = None
        self.last_poll_stats: dict | None = None
        # Datagrams that reached the decoders without ever being copied
        # out of the receive arena (the zero-copy ingest path).
        self.n_zero_copy_datagrams = 0
        self._obs = obs
        self._tracer = obs.tracer if obs is not None else None
        # Runtime diagnostics plane (repro.obs.diag): the sampled stage
        # timer and the flight recorder, cached as attributes so the hot
        # paths pay one None check when diagnostics are off.
        diag = obs.diag if obs is not None else None
        self._diag = diag
        self._ptimer = diag.timer if diag is not None else None
        self._recorder = diag.recorder if diag is not None else None
        self.last_drain_mode: str | None = None
        self._m_batch_hist = None
        self._m_arena_hist = None
        self._m_mode_drains = None
        self._m_drain_hist = None
        self._engine = None
        self._adaptive = None
        # True while the columnar engine is the state authority for ingest
        # (always, in vectorized mode; phase-dependent in adaptive mode).
        self._columnar = False
        # Drains handled per path (all modes; mirrored into the
        # repro_ingest_mode_drains_total counter at scrape time).
        self.ingest_drains: Dict[str, int] = {
            "scalar": 0, "batched": 0, "vectorized": 0,
        }
        self.last_drain_fanin: int | None = None
        self.n_mode_switches = 0
        self._drain_serial = 0
        # --- Delta-snapshot state ---------------------------------------
        # A monotone generation bumped at the entry of every mutating call
        # (ingest/ingest_many/ingest_arena/poll/remove_peer/timelines);
        # each peer whose *entry-visible* state changed is stamped with
        # the current value, so `delta_snapshot(since)` returns exactly
        # the peers with gen > since.  The instance id distinguishes this
        # monitor's generation sequence from a restarted one's: a cursor
        # minted against a previous process must force a full snapshot.
        self._status_gen = 0
        self._status_instance = uuid.uuid4().hex
        # Removed-peer tombstones: peer -> generation of the removal.  The
        # map is bounded; compaction raises _tombstone_floor so cursors
        # older than a dropped tombstone fall back to a full snapshot
        # instead of silently missing the removal.
        self._tombstones: Dict[str, int] = {}
        self._tombstone_floor = 0
        if ingest_mode == "vectorized":
            # Deferred import: the engine module is only needed (and its
            # numpy/array backend only chosen) when vectorized mode is on.
            from repro.live.ingest import build_engine

            # Raises ValueError here for detector classes outside the
            # registry (every registry detector has a kernel).
            self._engine = build_engine(self, probe_dets)
            self._columnar = True
        elif ingest_mode == "adaptive":
            # Adaptive mode switches each drain between the batched scalar
            # path and the vectorized columnar path.  Without numpy the
            # columnar path has no edge (the array fallback is per-row
            # Python too), so the controller pins itself to batched and no
            # engine is built.
            from repro.live import ingest as ingest_mod
            from repro.live.adaptive import AdaptiveIngestController

            if ingest_mod._HAVE_NUMPY:
                self._engine = ingest_mod.VectorizedIngestEngine(
                    self, probe_dets
                )
            else:
                # Still validate the detector set exactly as vectorized
                # construction would (custom classes fail fast here too).
                ingest_mod._build_specs(probe_dets)
            if adaptive_controller is not None:
                # Caller-tuned policy (thresholds, dwell, smoothing); the
                # engine's absence still pins it to the batched path.
                self._adaptive = adaptive_controller
                if self._engine is None:
                    self._adaptive.columnar_available = False
            else:
                self._adaptive = AdaptiveIngestController(
                    columnar_available=self._engine is not None
                )
        if obs is not None:
            self._bind_obs(obs)

    # ------------------------------------------------------------------
    # Observability binding (all derived work happens at scrape time)
    # ------------------------------------------------------------------
    def _bind_obs(self, obs: Observability) -> None:
        reg = obs.registry
        self._m_batch_hist = reg.histogram(
            "repro_ingest_batch_size",
            "Datagrams handed to one LiveMonitor.ingest_many call.",
            buckets=log_buckets(1.0, 4096.0, 3),
        )
        self._m_arena_hist = reg.histogram(
            "repro_ingest_arena_occupancy",
            "Fraction of arena slots filled per zero-copy drain.",
            buckets=(0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
        )
        self._m_mode_drains = reg.counter(
            "repro_ingest_mode_drains_total",
            "Socket drains executed, by the ingest path that handled them.",
            ("mode",),
        )
        self._m_drain_hist = reg.histogram(
            "repro_ingest_drain_seconds",
            "Wall time of one adaptive-mode drain, by the path chosen "
            "for it (the controller's cost signal, exported).",
            ("mode",),
            buckets=log_buckets(1e-5, 1.0, 3),
        )
        self._m_zero_copy = reg.counter(
            "repro_datagrams_zero_copy_total",
            "Datagrams decoded in place from the receive arena (no copy).",
        )
        self._m_received = reg.counter(
            "repro_heartbeats_received_total",
            "Datagrams that decoded as heartbeats.",
        )
        self._m_accepted = reg.counter(
            "repro_heartbeats_accepted_total",
            "Heartbeats accepted as sequence-fresh.",
        )
        self._m_stale = reg.counter(
            "repro_heartbeats_stale_total",
            "Heartbeats discarded as stale or duplicate.",
        )
        self._m_malformed = reg.counter(
            "repro_datagrams_malformed_total",
            "Datagrams dropped by the wire decoder.",
        )
        self._m_rejected = reg.counter(
            "repro_datagrams_rejected_total",
            "Wire-decoder rejects broken down by reason code.",
            ("reason",),
        )
        self._m_events = reg.counter(
            "repro_events_total",
            "Suspect/trust transitions emitted by the monitor.",
        )
        self._m_events_dropped = reg.counter(
            "repro_events_dropped_total",
            "Emitted events that aged out of the bounded event history.",
        )
        self._m_listener_errors = reg.counter(
            "repro_listener_errors_total",
            "Exceptions raised (and contained) by event listeners.",
        )
        self._m_polls = reg.counter(
            "repro_polls_total", "Liveness poll ticks executed."
        )
        self._m_batches = reg.counter(
            "repro_ingest_batches_total", "ingest_many calls executed."
        )
        self._m_transitions = reg.counter(
            "repro_detector_transitions_total",
            "Output transitions per detector instance.",
            ("peer", "detector"),
        )
        self._m_suspicions = reg.counter(
            "repro_detector_suspicions_total",
            "S-transitions (mistakes, absent crashes) per detector instance.",
            ("peer", "detector"),
        )
        self._g_peers = reg.gauge(
            "repro_monitor_peers", "Peers currently being monitored."
        )
        self._g_heap = reg.gauge(
            "repro_monitor_heap_size",
            "Live + stale entries on the deadline heap.",
        )
        self._g_rate = reg.gauge(
            "repro_heartbeat_rate",
            "Decayed heartbeats/second over all peers (tau = 10 s).",
        )
        self._g_poll = reg.gauge(
            "repro_last_poll_seconds", "Duration of the last liveness poll."
        )
        self._g_td = reg.gauge(
            "repro_qos_t_d",
            "Projected detection time: freshness point minus last arrival "
            "(time a crash right after the last heartbeat needs to surface).",
            ("peer", "detector"),
        )
        self._g_tmr = reg.gauge(
            "repro_qos_t_mr",
            "Rolling mistake rate (S-transitions/second) over the QoS window.",
            ("peer", "detector"),
        )
        self._g_tm = reg.gauge(
            "repro_qos_t_m",
            "Rolling mean mistake duration over the QoS window.",
            ("peer", "detector"),
        )
        self._g_pa = reg.gauge(
            "repro_qos_p_a",
            "Rolling query accuracy (fraction of window trusted).",
            ("peer", "detector"),
        )
        if obs.tracer is not None:
            self._m_trace = reg.counter(
                "repro_trace_events_total", "Trace events recorded."
            )
            self._m_trace_dropped = reg.counter(
                "repro_trace_dropped_total",
                "Trace events that fell off the ring buffer.",
            )
        if obs.qos is not None:
            self.subscribe(obs.qos.on_event)
        reg.add_collect_hook(self._obs_collect)

    def _counter_totals(self) -> dict:
        """Top-level ingest/drop/transition totals — the **single source**
        read by both the status summary and the metrics collector, so the
        two surfaces cannot drift."""
        return {
            "received": self.n_received_total,
            "accepted": self.n_accepted_total,
            "stale": self.n_stale_total,
            "malformed": self.n_malformed,
            "transitions": self._events.total,
            "events_dropped": self._events.dropped,
            "listener_errors": self._listeners.n_errors,
        }

    def _obs_collect(self) -> None:
        """Scrape-time collector: mirror running totals, refresh gauges."""
        if self._columnar:
            self._engine.sync_all()
        now = self.now()
        totals = self._counter_totals()
        self._m_received.set_total(totals["received"])
        self._m_accepted.set_total(totals["accepted"])
        self._m_stale.set_total(totals["stale"])
        self._m_malformed.set_total(totals["malformed"])
        for reason, count in self.reject_reasons.items():
            self._m_rejected.labels(reason).set_total(count)
        self._m_events.set_total(totals["transitions"])
        self._m_events_dropped.set_total(totals["events_dropped"])
        self._m_listener_errors.set_total(totals["listener_errors"])
        self._m_polls.set_total(self.n_polls)
        self._m_batches.set_total(self.n_batches)
        self._m_zero_copy.set_total(self.n_zero_copy_datagrams)
        for mode, count in self.ingest_drains.items():
            if count:
                self._m_mode_drains.labels(mode).set_total(count)
        self._g_peers.set(len(self._peers))
        self._g_heap.set(len(self._heap))
        self._g_rate.set(self._rate.rate(now))
        if self.last_poll_duration is not None:
            self._g_poll.set(self.last_poll_duration)
        for peer, state in self._peers.items():
            last_arrival = state.last_arrival
            for name, det in state.detectors.items():
                self._m_transitions.labels(peer, name).set_total(
                    det.n_transitions
                )
                self._m_suspicions.labels(peer, name).set_total(
                    det.n_suspicions
                )
                deadline = det.suspicion_deadline
                if deadline is not None and last_arrival is not None:
                    self._g_td.labels(peer, name).set(deadline - last_arrival)
        obs = self._obs
        if obs.qos is not None:
            for (peer, name), m in obs.qos.all_metrics(now):
                self._g_tmr.labels(peer, name).set(m["t_mr"])
                self._g_tm.labels(peer, name).set(m["t_m"])
                self._g_pa.labels(peer, name).set(m["p_a"])
        if obs.tracer is not None:
            self._m_trace.set_total(obs.tracer.n_recorded)
            self._m_trace_dropped.set_total(obs.tracer.n_dropped)

    # ------------------------------------------------------------------
    @property
    def observability(self) -> Observability | None:
        """The bound observability bundle (``None`` = off)."""
        return self._obs

    def render_metrics(self) -> str:
        """Prometheus text exposition of the bound registry.

        Raises :class:`RuntimeError` when observability is off — callers
        wanting a scrape endpoint must construct the monitor with ``obs``.
        """
        if self._obs is None:
            raise RuntimeError(
                "observability is off for this monitor (constructed without "
                "obs=Observability(...))"
            )
        return self._obs.render_metrics()

    def trace_document(self, since: int = 0) -> dict:
        """The trace-follow response document (see ``HeartbeatTracer``)."""
        if self._obs is None:
            return {"cursor": 0, "dropped": 0, "events": [], "tracing": False}
        return self._obs.trace_document(since)

    def diag_document(self, since: int = 0) -> dict:
        """The ``diag`` response: stage timings, watchdog state, flight
        records — plus the adaptive controller's view when that mode is
        on (its mode choices explain the per-mode stage numbers)."""
        if self._obs is None or self._obs.diag is None:
            return {"diagnostics": False}
        doc = self._obs.diag.document(since)
        if self._adaptive is not None:
            doc["controller"] = self._adaptive.as_dict()
        return doc

    # ------------------------------------------------------------------
    @property
    def interval(self) -> float:
        return self._interval

    @property
    def detector_names(self) -> Tuple[str, ...]:
        return self._detector_names

    @property
    def poll_mode(self) -> str:
        return self._poll_mode

    @property
    def estimation(self) -> str:
        """``"shared"`` or ``"private"`` arrival-statistics mode."""
        return self._estimation

    @property
    def ingest_mode(self) -> str:
        """``"scalar"``, ``"batched"``, ``"vectorized"`` or ``"adaptive"``."""
        return self._ingest_mode

    @property
    def columnar_active(self) -> bool:
        """Whether the columnar engine currently owns the ingest state
        (always in vectorized mode; phase-dependent in adaptive mode)."""
        return self._columnar

    @property
    def adaptive_controller(self):
        """The :class:`repro.live.adaptive.AdaptiveIngestController`
        (``None`` unless ``ingest_mode="adaptive"``)."""
        return self._adaptive

    @property
    def shared_detectors(self) -> Tuple[str, ...]:
        """Configured detectors consuming shared arrival statistics.

        Empty in ``estimation="private"`` mode and for detector sets where
        nothing can share (the per-detector private fallback).
        """
        return self._shared_names

    @property
    def peers(self) -> Tuple[str, ...]:
        return tuple(self._peers)

    @property
    def n_peers(self) -> int:
        return len(self._peers)

    @property
    def heap_size(self) -> int:
        """Live + stale entries currently on the deadline heap."""
        return len(self._heap)

    @property
    def events(self) -> List[LiveEvent]:
        """Retained events (chronological per peer/detector).

        The full history unless ``max_events`` bounded the ring buffer;
        ``n_events_total`` / ``n_events_dropped`` always account exactly.
        """
        return self._events.as_list()

    @property
    def n_events_total(self) -> int:
        return self._events.total

    @property
    def n_events_dropped(self) -> int:
        return self._events.dropped

    @property
    def n_listener_errors(self) -> int:
        return self._listeners.n_errors

    def subscribe(self, listener: Callable[[LiveEvent], None]) -> None:
        """Register a callback invoked synchronously for every new event.

        A raising listener is caught, counted (``n_listener_errors``) and
        logged — it cannot abort detection or starve other listeners.
        """
        self._listeners.subscribe(listener)

    def unsubscribe(self, listener: Callable[[LiveEvent], None]) -> None:
        """Remove a previously subscribed callback (ValueError if absent)."""
        self._listeners.unsubscribe(listener)

    def now(self) -> float:
        """Monitor-relative current time (0 at first ingest/poll)."""
        t = self._clock()
        if self._epoch is None:
            self._epoch = t
        return t - self._epoch

    def heartbeat_rate(self, now: float | None = None) -> float:
        """Decayed heartbeats/second over all peers (time constant 10 s)."""
        if now is None:
            now = self.now()
        return self._rate.rate(now)

    # ------------------------------------------------------------------
    def _new_peer(self, sender: str, arrival: float) -> _PeerState:
        """Instantiate detectors (and shared stats) for a discovered peer.

        ``arrival`` is the discovering datagram's receipt instant — and
        that datagram is always accepted (a fresh peer's ``largest_seq``
        is 0, wire sequence numbers start at 1), so it is the peer's
        ``first_arrival``.
        """
        detectors = {
            name: make_tuned(name, self._interval, self._params.get(name))
            for name in self._detector_names
        }
        stats = None
        if self._shared_names and (
            self._engine is None or self._adaptive is not None
        ):
            # Vectorized mode never instantiates per-peer shared stats:
            # the engine's columnar window banks hold that state for
            # every peer at once.  Adaptive mode always instantiates them
            # (and binds detectors) so the batched path can take over at
            # any drain; while the columnar path is active the engine's
            # banks are authoritative and export() refreshes these objects
            # on the way back.
            stats = SharedArrivalState(self._interval)
            for name in self._shared_names:
                bound = detectors[name].bind_shared_arrivals(stats)
                assert bound, f"probe said {name} shares but bind declined"
            # Freeze registration and build the push tuples now: the
            # batched ingest loop inlines the receive body and relies on
            # the sealed state.
            stats.seal()
        state = _PeerState(sender, len(self._peer_by_index), detectors, stats)
        state.first_arrival = arrival
        state.gen = self._status_gen
        # A re-joining peer supersedes its own removal tombstone: the new
        # entry (fresh index, fresh detectors) is what deltas must carry.
        self._tombstones.pop(sender, None)
        if self._retention is not None:
            for det in detectors.values():
                det.set_transition_retention(self._retention)
        self._peers[sender] = state
        self._peer_by_index.append(state)
        obs = self._obs
        if obs is not None and obs.qos is not None:
            # Pin observation start at discovery, so P_A counts the
            # initial suspicion-until-first-trust time against accuracy
            # (matching compute_metrics' closed-window convention).
            for name in self._detector_names:
                obs.qos.observe_start(sender, name, arrival)
        if logger.isEnabledFor(logging.INFO):
            logger.info(structured("peer-discovered", peer=sender, arrival=arrival))
        return state

    #: Distinct reject source addresses tracked exactly; the rest aggregate
    #: under the ``"other"`` key so a spoofing flood cannot grow the map.
    _MAX_REJECT_SOURCES = 32

    def _count_reject(
        self, reason: str, addr=None, arrival: float | None = None
    ) -> None:
        """Attribute one malformed-datagram reject (reason + source address).

        Does *not* touch ``n_malformed`` — callers keep their existing
        (batch-level) malformed accounting; this adds the breakdown only.
        """
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1
        source = f"{addr[0]}:{addr[1]}" if addr is not None else None
        if source is not None:
            sources = self.reject_sources
            if source in sources or len(sources) < self._MAX_REJECT_SOURCES:
                sources[source] = sources.get(source, 0) + 1
            else:
                sources["other"] = sources.get("other", 0) + 1
        self.last_reject = {
            "reason": reason,
            "source": source,
            "time": self.now() if arrival is None else arrival,
        }

    def ingest(
        self, data: bytes, arrival: float | None = None, *, addr=None
    ) -> Heartbeat | None:
        """Feed one raw datagram; returns the heartbeat if it decoded.

        ``arrival`` is the receipt instant on the monitor clock (relative
        to the monitor epoch); defaults to now.  ``addr`` is the source
        ``(host, port)`` when the transport knows it — used only to
        attribute rejects.  Malformed datagrams are counted, logged, and
        dropped — never raised.
        """
        if arrival is None:
            arrival = self.now()
        self._status_gen += 1
        if self._columnar:
            # Columnar phase: even singles route through the engine so
            # the columnar state stays the one authority.  (Adaptive mode
            # in its batched phase falls through to the scalar path below;
            # singles are control-path traffic and never feed the
            # controller's drain signals.)
            engine = self._engine
            n_dec, n_acc, n_stl, n_bad, _ = engine.ingest_datagrams(
                (data,), (arrival,), arrival
            )
            engine.finish_batch()
            self._stamp_touched(engine)
            if n_bad:
                self.n_malformed += 1
                reason = self._reject_reason(data)
                self._count_reject(reason, addr, arrival)
                logger.debug(
                    "dropping malformed datagram from %s (vectorized path): %s",
                    addr, reason,
                )
                return None
            self._rate.update(arrival)
            self.n_received_total += 1
            self.n_accepted_total += n_acc
            self.n_stale_total += n_stl
            return Heartbeat.decode(data)
        # Sampled stage timing (diagnostics plane): one `is not None`
        # check per datagram when diagnostics are off.
        timer = self._ptimer
        sampled = timer is not None and timer.sample()
        if sampled:
            pc = time.perf_counter
            t0 = pc()
        try:
            hb = Heartbeat.decode(data)
        except WireError as exc:
            self.n_malformed += 1
            self._count_reject(exc.reason, addr, arrival)
            logger.debug("dropping malformed datagram from %s: %s", addr, exc)
            return None
        if sampled:
            timer.observe("decode", pc() - t0)
        self._rate.update(arrival)
        self.n_received_total += 1
        tracer = self._tracer
        traced = tracer is not None and tracer.wants(hb.seq)
        if traced:
            tracer.record(
                "recv", time=arrival, peer=hb.sender, hb_seq=hb.seq,
                sent_at=hb.timestamp,
            )
        state = self._peers.get(hb.sender)
        if state is None:
            state = self._new_peer(hb.sender, arrival)
        state.n_datagrams += 1
        state.gen = self._status_gen
        if sampled:
            t1 = pc()
        if state.stats is not None:
            # Shared windows must hold this arrival *before* any sharing
            # detector computes its deadline (the private path pushes in
            # _update, which also runs pre-deadline).
            state.stats.receive(hb.seq, arrival)
        accepted = False
        for det in state.detectors.values():
            accepted = det.receive(hb.seq, arrival) or accepted
        if sampled:
            # Estimation pushes + detector updates, together: the window
            # push happens inside receive() on the private path.
            timer.observe("estimate", pc() - t1)
        if accepted:
            state.n_accepted += 1
            self.n_accepted_total += 1
            state.last_seq = hb.seq
            state.last_arrival = arrival
            state.last_timestamp = hb.timestamp
            if state.first_arrival is None:
                state.first_arrival = arrival
            # Schedule the earliest new freshness point — one entry per
            # peer, superseding the old one in place (lazy deletion: the
            # stale heap entry is discarded on pop via the sched check).
            if sampled:
                t2 = pc()
            best = math.inf
            for det in state.detectors.values():
                deadline = det.suspicion_deadline
                if deadline is not None and deadline < best:
                    best = deadline
            if best != math.inf:
                heapq.heappush(self._heap, (best, state.index))
                state.sched = best
            else:
                state.sched = None
            if sampled:
                timer.observe("heap", pc() - t2)
            if traced:
                tracer.record(
                    "fresh", time=arrival, peer=hb.sender, hb_seq=hb.seq,
                    deadline=None if best == math.inf else best,
                )
        else:
            state.n_stale += 1
            self.n_stale_total += 1
            if traced:
                tracer.record(
                    "stale", time=arrival, peer=hb.sender, hb_seq=hb.seq,
                    largest_seq=state.last_seq,
                )
        self._drain(hb.sender, state)
        return hb

    @staticmethod
    def _reject_reason(data) -> str:
        """Re-run the scalar decoder on a known-bad datagram for its reason."""
        try:
            decode_fields(data)
        except WireError as exc:
            return exc.reason
        return "malformed"  # pragma: no cover - engines reject a superset

    def ingest_many(
        self,
        datagrams: Sequence[bytes],
        arrivals: Sequence[float] | None = None,
        addrs: Sequence | None = None,
    ) -> int:
        """Decode and dispatch a whole socket drain in one call.

        Semantically exactly ``for d in datagrams: ingest(d)`` — same
        acceptance decisions, same detector state, same event stream in
        the same order — but the per-datagram overheads are paid once per
        batch: datagrams decode through :func:`repro.live.wire.decode_fields`
        (precompiled struct views, no dataclass), the malformed counter is
        updated once, the rate meter is touched once, and a peer is
        drained only when one of its detectors actually produced a new
        transition.  ``arrivals`` gives the per-datagram receipt instants
        (monitor clock, non-decreasing); when omitted, the whole batch is
        stamped ``now()`` — the right call for datagrams drained from a
        socket buffer in one go.  ``addrs`` gives per-datagram source
        addresses for reject attribution (optional, alignment-checked).
        Returns the number of datagrams that decoded (malformed ones are
        counted, never raised).
        """
        n = len(datagrams)
        if arrivals is not None and len(arrivals) != n:
            raise ValueError(
                f"got {n} datagrams but {len(arrivals)} arrivals"
            )
        if addrs is not None and len(addrs) != n:
            raise ValueError(f"got {n} datagrams but {len(addrs)} addrs")
        self._status_gen += 1
        if self._recorder is None:
            return self._ingest_route(datagrams, arrivals, n, addrs)
        # Flight recorder on: every drain leaves one ring record (two
        # perf_counter reads, one tuple, one deque append).
        t0 = time.perf_counter()
        n_dec = self._ingest_route(datagrams, arrivals, n, addrs)
        self._record_drain(n, time.perf_counter() - t0, None)
        return n_dec

    def _ingest_route(self, datagrams, arrivals, n: int, addrs=None) -> int:
        """Dispatch one validated drain to the configured ingest path."""
        if self._adaptive is not None:
            return self._ingest_adaptive(datagrams, arrivals, n, addrs)
        if self._engine is not None:
            return self._ingest_vectorized(datagrams, arrivals, n, addrs)
        if self._ingest_mode == "scalar":
            # The per-datagram reference: semantics of calling ingest()
            # in a loop, batch accounting (n_batches etc.) excluded.
            self.ingest_drains["scalar"] += 1
            self.last_drain_mode = "scalar"
            self.last_drain_fanin = None
            n_dec = 0
            if addrs is None:
                addrs = repeat(None, n)
            if arrivals is None:
                now = self.now()
                for data, addr in zip(datagrams, addrs):
                    if self.ingest(data, now, addr=addr) is not None:
                        n_dec += 1
            else:
                for data, arrival, addr in zip(datagrams, arrivals, addrs):
                    if self.ingest(data, arrival, addr=addr) is not None:
                        n_dec += 1
            return n_dec
        return self._ingest_batched(datagrams, arrivals, n, addrs)

    def _record_drain(self, n: int, duration: float, arena_occ) -> None:
        """One flight-recorder record per drain (recorder known non-None)."""
        self._recorder.record(
            time=self.now(),
            mode=self.last_drain_mode,
            n=n,
            fanin=self.last_drain_fanin,
            duration=duration,
            heap=len(self._heap),
            events=len(self._events),
            arena=arena_occ,
        )

    def _ingest_batched(self, datagrams, arrivals, n: int, addrs=None) -> int:
        """The batched scalar hot loop (``ingest_mode="batched"``, and the
        adaptive mode's low-fan-in phase)."""
        self.ingest_drains["batched"] += 1
        self.last_drain_mode = "batched"
        serial = self._drain_serial + 1
        self._drain_serial = serial
        fanin = 0
        if arrivals is None:
            arrivals = repeat(self.now(), n)
        if addrs is None:
            addrs = repeat(None, n)
        # Hot loop: everything the scalar path re-resolves per datagram
        # is hoisted to a local once per batch.
        decode = decode_fields
        peers_get = self._peers.get
        heappush = heapq.heappush
        # Sampled stage timing: on 1-in-N drains the hoisted decode and
        # heappush locals are swapped for accumulating wrappers — the
        # other N-1 drains run the raw loop untouched.
        timer = self._ptimer
        stage_acc = None
        if timer is not None and timer.sample():
            pc = time.perf_counter
            stage_acc = {"decode": 0.0, "heap": 0.0}
            raw_decode, raw_heappush = decode, heappush

            def decode(data, _d=raw_decode, _pc=pc, _a=stage_acc):
                t = _pc()
                try:
                    return _d(data)
                finally:
                    _a["decode"] += _pc() - t

            def heappush(h, item, _h=raw_heappush, _pc=pc, _a=stage_acc):
                t = _pc()
                _h(h, item)
                _a["heap"] += _pc() - t

            t_start = pc()
        heap = self._heap
        drain = self._drain
        inf = math.inf
        interval = self._interval
        tracer = self._tracer
        status_gen = self._status_gen
        n_bad = 0
        n_acc = 0
        n_stl = 0
        last_arrival: float | None = None
        for data, arrival, addr in zip(datagrams, arrivals, addrs):
            try:
                sender, seq, timestamp = decode(data)
            except WireError as exc:
                n_bad += 1
                self._count_reject(exc.reason, addr, arrival)
                continue
            last_arrival = arrival
            if tracer is not None and tracer.wants(seq):
                tracer.record(
                    "recv", time=arrival, peer=sender, hb_seq=seq,
                    sent_at=timestamp,
                )
            state = peers_get(sender)
            if state is None:
                state = self._new_peer(sender, arrival)
            if state.touch != serial:
                state.touch = serial
                fanin += 1
            state.n_datagrams += 1
            state.gen = status_gen
            stats = state.stats
            if stats is not None:
                # Fast path: every detector applies the same acceptance
                # rule to the same stream, so the shared stats' verdict
                # decides for the whole set — a stale datagram touches no
                # detector at all (a rejecting receive() mutates nothing),
                # and a fresh one skips the per-detector freshness check.
                # SharedArrivalState.receive is inlined (the state is
                # sealed at peer creation, ``seq`` is already an int off
                # the wire, and the stats share self's interval), saving
                # the call frame per datagram.
                if seq > stats._largest_seq:
                    stats._largest_seq = seq
                    for size, window in stats._pre_list:
                        c = window._count
                        stats._pre_means[size] = (
                            window._baseline + window._sum / c if c else None
                        )
                    norm = arrival - interval * seq
                    for push in stats._est_list:
                        push(norm)
                    prev = stats._prev_arrival
                    if prev is not None:
                        gap = arrival - prev
                        for push in stats._gap_list:
                            push(gap)
                    stats._prev_arrival = arrival
                    state.n_accepted += 1
                    state.last_seq = seq
                    state.last_arrival = arrival
                    state.last_timestamp = timestamp
                    best = inf
                    dirty = False
                    for det, output, fastdl in state.fast_dets:
                        # receive_shared, inlined: _update is a no-op
                        # (shared windows already pushed), so only the
                        # deadline, the output and the bookkeeping fields
                        # remain.
                        d = fastdl(seq, arrival)
                        det._largest_seq = seq
                        det._last_arrival = arrival
                        det._current_deadline = d
                        # FreshnessOutput.on_heartbeat's steady-state case
                        # (a), inlined: trust held, the previous deadline
                        # unexpired, the new one in the future — no
                        # transition, only the two field updates (the
                        # condition also re-proves the time-order
                        # precondition, so any call on_heartbeat would
                        # reject falls through to it and raises there).
                        if (
                            output.trusting
                            and arrival <= output.deadline
                            and arrival < d
                            and output.last_event_time <= arrival
                        ):
                            output.deadline = d
                            output.last_event_time = arrival
                        else:
                            output.on_heartbeat(arrival, d)
                            dirty = True
                        if d < best:
                            best = d
                    for det, output, shrecv in state.mid_dets:
                        # receive_accepted, inlined, for shared detectors
                        # with a stateful _update (bertier's margin).
                        d = shrecv(seq, arrival)
                        det._largest_seq = seq
                        det._last_arrival = arrival
                        det._current_deadline = d
                        if (
                            output.trusting
                            and arrival <= output.deadline
                            and arrival < d
                            and output.last_event_time <= arrival
                        ):
                            output.deadline = d
                            output.last_event_time = arrival
                        else:
                            output.on_heartbeat(arrival, d)
                            dirty = True
                        if d < best:
                            best = d
                    for det, output, recv in state.slow_dets:
                        nt0 = output.n_transitions
                        d = recv(seq, arrival)
                        if output.n_transitions != nt0:
                            dirty = True
                        if d < best:
                            best = d
                    if best != inf:
                        heappush(heap, (best, state.index))
                        state.sched = best
                    else:
                        state.sched = None
                    n_acc += 1
                    if tracer is not None and tracer.wants(seq):
                        tracer.record(
                            "fresh", time=arrival, peer=sender, hb_seq=seq,
                            deadline=None if best == inf else best,
                        )
                    if dirty:
                        # Drained per datagram (not per batch) so
                        # interleaved transitions of different peers keep
                        # scalar-ingest order.  ``dirty`` marks any
                        # on_heartbeat that *could* have transitioned — a
                        # drain with nothing new is a no-op, so this is a
                        # conservative superset of the transitions.
                        drain(sender, state)
                else:
                    state.n_stale += 1
                    n_stl += 1
                    if tracer is not None and tracer.wants(seq):
                        tracer.record(
                            "stale", time=arrival, peer=sender, hb_seq=seq,
                            largest_seq=state.last_seq,
                        )
                continue
            accepted = False
            nt = 0
            for dname, det, output, recv, fastdl in state.det_list:
                if det.receive(seq, arrival):
                    accepted = True
                nt += output.n_transitions
            if accepted:
                state.n_accepted += 1
                state.last_seq = seq
                state.last_arrival = arrival
                state.last_timestamp = timestamp
                best = inf
                for dname, det, output, recv, fastdl in state.det_list:
                    d = det._current_deadline
                    if d is not None and d < best:
                        best = d
                if best != inf:
                    heappush(heap, (best, state.index))
                    state.sched = best
                else:
                    state.sched = None
                n_acc += 1
                if tracer is not None and tracer.wants(seq):
                    tracer.record(
                        "fresh", time=arrival, peer=sender, hb_seq=seq,
                        deadline=None if best == inf else best,
                    )
            else:
                state.n_stale += 1
                n_stl += 1
                if tracer is not None and tracer.wants(seq):
                    tracer.record(
                        "stale", time=arrival, peer=sender, hb_seq=seq,
                        largest_seq=state.last_seq,
                    )
            if nt != state.consumed_total:
                # Drained per datagram (not per batch) so interleaved
                # transitions of different peers keep scalar-ingest order.
                drain(sender, state)
        if stage_acc is not None:
            # The remainder between the drain's total and the measured
            # decode/heap wrappers is the estimation-push + detector-update
            # stage (plus per-datagram bookkeeping riding with it).
            total = pc() - t_start
            timer.observe("decode", stage_acc["decode"])
            timer.observe("heap", stage_acc["heap"])
            timer.observe(
                "estimate",
                max(0.0, total - stage_acc["decode"] - stage_acc["heap"]),
            )
        if n_bad:
            self.n_malformed += n_bad
            logger.debug("dropped %d malformed datagrams in batch", n_bad)
        self.last_drain_fanin = fanin
        n_decoded = n - n_bad
        if n_decoded:
            self._rate.update_many(last_arrival, n_decoded)
        self.n_received_total += n_decoded
        self.n_accepted_total += n_acc
        self.n_stale_total += n_stl
        self.n_batches += 1
        self.last_batch_size = n
        if self._m_batch_hist is not None:
            self._m_batch_hist.observe(n)
        return n_decoded

    def _account_batch(self, n, n_dec, n_acc, n_stl, n_bad, last_arrival) -> int:
        """Batch-level accounting shared by the vectorized entry points."""
        if n_bad:
            self.n_malformed += n_bad
            logger.debug("dropped %d malformed datagrams in batch", n_bad)
        if n_dec:
            self._rate.update_many(last_arrival, n_dec)
        self.n_received_total += n_dec
        self.n_accepted_total += n_acc
        self.n_stale_total += n_stl
        self.n_batches += 1
        self.last_batch_size = n
        if self._m_batch_hist is not None:
            self._m_batch_hist.observe(n)
        return n_dec

    def _stamp_touched(self, engine) -> None:
        """Stamp the delta generation on every peer whose entry-visible
        state the engine's last batch changed (``engine.last_touched``:
        accepted peers on the numpy engine — stale-only columnar bumps
        stay invisible until the next dirty-driven sync, exactly as full
        snapshots see them — and every decoded sender on the array
        fallback, whose rows mutate the peer objects directly)."""
        gen = self._status_gen
        peer_list = self._peer_by_index
        for pidx in engine.last_touched:
            peer_list[pidx].gen = gen

    def _stage_acc_for(self, engine):
        """Arm the engine's per-stage accumulator for a sampled drain
        (``None`` on the unsampled ones — one attribute write per drain)."""
        timer = self._ptimer
        if timer is not None and timer.sample():
            engine.stage_acc = {"decode": 0.0, "estimate": 0.0, "heap": 0.0}
            return engine.stage_acc
        engine.stage_acc = None
        return None

    def _flush_stage_acc(self, engine, acc) -> None:
        """Disarm the engine and publish the sampled stage seconds."""
        engine.stage_acc = None
        timer = self._ptimer
        for stage, seconds in acc.items():
            timer.observe(stage, seconds)

    def _ingest_vectorized(self, datagrams, arrivals, n: int, addrs=None) -> int:
        self.ingest_drains["vectorized"] += 1
        self.last_drain_mode = "vectorized"
        engine = self._engine
        acc = None if self._ptimer is None else self._stage_acc_for(engine)
        now = self.now() if arrivals is None else None
        try:
            n_dec, n_acc, n_stl, n_bad, last_arrival = engine.ingest_datagrams(
                datagrams, arrivals, now
            )
            engine.finish_batch()
        finally:
            if acc is not None:
                self._flush_stage_acc(engine, acc)
        self._stamp_touched(engine)
        self.last_drain_fanin = engine.last_fanin
        if n_bad:
            # Rejects are rare; attribute each through the scalar decoder.
            for row in engine.last_bad_rows:
                self._count_reject(
                    self._reject_reason(datagrams[row]),
                    addrs[row] if addrs is not None else None,
                    arrivals[row] if arrivals is not None else now,
                )
        return self._account_batch(n, n_dec, n_acc, n_stl, n_bad, last_arrival)

    # ------------------------------------------------------------------
    # Adaptive per-drain mode selection
    # ------------------------------------------------------------------
    def _set_columnar(self, active: bool) -> None:
        """Switch the ingest-state authority between the detector objects
        and the columnar engine (adaptive mode only).  Migration is a
        field-for-field copy both ways, so the continuation is bit-exact;
        the controller's hysteresis + dwell keep switches rare."""
        if active == self._columnar:
            return
        if active:
            self._engine.adopt(self._peer_by_index)
        else:
            self._engine.export(self._peer_by_index)
        self._columnar = active
        self.n_mode_switches += 1
        if logger.isEnabledFor(logging.INFO):
            logger.info(
                structured(
                    "ingest-mode-switch",
                    path="vectorized" if active else "batched",
                    n_peers=len(self._peer_by_index),
                )
            )

    def _ingest_adaptive(self, datagrams, arrivals, n: int, addrs=None) -> int:
        """One drain under adaptive mode: ask the controller for a path,
        migrate state if the choice flipped, run the drain under a timer,
        and feed the measurement back."""
        ctl = self._adaptive
        mode = ctl.decide()
        if (mode == "vectorized") != self._columnar:
            self._set_columnar(mode == "vectorized")
        t0 = time.perf_counter()
        if self._columnar:
            n_dec = self._ingest_vectorized(datagrams, arrivals, n, addrs)
        else:
            n_dec = self._ingest_batched(datagrams, arrivals, n, addrs)
        dt = time.perf_counter() - t0
        ctl.observe(mode, n, self.last_drain_fanin or 0, dt)
        if self._m_drain_hist is not None:
            self._m_drain_hist.labels(mode).observe(dt)
        return n_dec

    def ingest_arena(self, arena) -> int:
        """Feed a :class:`repro.live.arena.DatagramArena`'s last drain.

        The zero-copy bulk entry point: datagrams are decoded in place
        from the arena's preallocated buffer — as memoryview slices on the
        scalar/batched paths, as a columnar numpy view on the vectorized
        path — and are never materialized as per-datagram ``bytes``.
        Returns the number of datagrams that decoded.
        """
        if self._m_arena_hist is not None:
            self._m_arena_hist.observe(arena.occupancy)
        k = arena.last_fill
        if k == 0:
            return 0
        self._status_gen += 1
        self.n_zero_copy_datagrams += k
        if self._recorder is None:
            return self._ingest_arena_route(arena, k)
        t0 = time.perf_counter()
        n_dec = self._ingest_arena_route(arena, k)
        self._record_drain(k, time.perf_counter() - t0, arena.occupancy)
        return n_dec

    def _ingest_arena_route(self, arena, k: int) -> int:
        """Dispatch one arena drain to the configured ingest path."""
        if self._adaptive is not None:
            ctl = self._adaptive
            mode = ctl.decide()
            if (mode == "vectorized") != self._columnar:
                self._set_columnar(mode == "vectorized")
            t0 = time.perf_counter()
            if self._columnar:
                n_dec = self._ingest_arena_vectorized(arena, k)
            else:
                # The batched path decodes arena slots in place (memoryview
                # slices through decode_fields), still copy-free.
                n_dec = self._ingest_batched(arena.datagrams(), None, k)
            dt = time.perf_counter() - t0
            ctl.observe(mode, k, self.last_drain_fanin or 0, dt)
            if self._m_drain_hist is not None:
                self._m_drain_hist.labels(mode).observe(dt)
            return n_dec
        if self._engine is None:
            # Route directly (not via ingest_many): the generation bump
            # and the flight-recorder record already happened upstream.
            datagrams = arena.datagrams()
            return self._ingest_route(datagrams, None, len(datagrams))
        return self._ingest_arena_vectorized(arena, k)

    def _ingest_arena_vectorized(self, arena, k: int) -> int:
        self.ingest_drains["vectorized"] += 1
        self.last_drain_mode = "vectorized"
        engine = self._engine
        acc = None if self._ptimer is None else self._stage_acc_for(engine)
        now = self.now()
        try:
            n_dec, n_acc, n_stl, n_bad, last_arrival = engine.ingest_arena(
                arena, now
            )
            engine.finish_batch()
        finally:
            if acc is not None:
                self._flush_stage_acc(engine, acc)
        self._stamp_touched(engine)
        self.last_drain_fanin = engine.last_fanin
        if n_bad:
            # The arena drains via recv_into, which cannot report source
            # addresses; rejects here carry a reason but no source.
            buffer = arena.buffer
            slot = arena.slot_bytes
            for row in engine.last_bad_rows:
                try:
                    decode_fields_from(buffer, row * slot, arena.lengths[row])
                except WireError as exc:
                    self._count_reject(exc.reason, None, now)
                else:  # pragma: no cover - engines reject a superset
                    self._count_reject("malformed", None, now)
        return self._account_batch(k, n_dec, n_acc, n_stl, n_bad, last_arrival)

    def poll(self, now: float | None = None) -> List[LiveEvent]:
        """Materialize deadline expiries up to ``now``; return new events.

        Heap mode pops only entries whose deadline has *strictly* passed
        (matching :meth:`FreshnessOutput.advance_to`'s strict comparison:
        a deadline landing exactly on ``now`` has not expired yet and its
        entry must stay scheduled), then drains affected peers in
        discovery order — the same event order the full sweep emits.
        """
        if now is None:
            now = self.now()
        self._status_gen += 1
        t0 = time.perf_counter()
        n_pops = 0
        n_expired = 0
        fresh: List[LiveEvent] = []
        # The accounting lives in ``finally``: a listener raising out of a
        # drain (only possible for errors the _ListenerSet cannot contain,
        # e.g. KeyboardInterrupt) must still record the tick's duration —
        # otherwise last_poll_duration silently reports the *previous*
        # poll and the repro_last_poll_seconds gauge lies.
        # In adaptive mode's batched phase the engine holds no fresh state
        # (dirty flags all cleared at export), so it is skipped outright.
        engine = self._engine if self._columnar else None
        try:
            if self._poll_mode == "sweep":
                if engine is not None:
                    engine.sync_all()
                for peer, state in self._peers.items():
                    for det in state.detectors.values():
                        det.advance_to(now)
                    fresh.extend(self._drain(peer, state))
                    if engine is not None:
                        engine.writeback_output(state.index, state)
            else:
                heap = self._heap
                peer_list = self._peer_by_index
                expired_peers: set = set()
                while heap and heap[0][0] < now:
                    deadline, pidx = heapq.heappop(heap)
                    n_pops += 1
                    state = peer_list[pidx]
                    if state.sched != deadline:
                        continue  # superseded by a fresher heartbeat
                    # The peer's earliest freshness point has passed:
                    # advance every detector (the per-peer minimum is ≤
                    # each of their deadlines, so nothing can have expired
                    # unseen), then re-schedule the earliest deadline
                    # still pending.  The strict `< now` above and
                    # `>= now` here mirror FreshnessOutput.advance_to's
                    # strict expiry: a deadline landing exactly on the
                    # tick stays scheduled.
                    state.sched = None
                    n_expired += 1
                    if engine is not None:
                        # Columnar state must land in the outputs before
                        # advance_to reads their deadlines.
                        engine.sync_peer(pidx, state)
                    nxt = math.inf
                    for dname, det, output, recv, fastdl in state.det_list:
                        det.advance_to(now)
                        d = det._current_deadline
                        if d is not None and now <= d < nxt:
                            nxt = d
                    if engine is not None:
                        engine.writeback_output(pidx, state)
                    if nxt != math.inf:
                        heapq.heappush(heap, (nxt, pidx))
                        state.sched = nxt
                    expired_peers.add(pidx)
                for pidx in sorted(expired_peers):
                    state = peer_list[pidx]
                    # An expired deadline is an entry-visible change (the
                    # predictive `trusting` crossed it) even when no
                    # transition event drains out, so stamp unconditionally.
                    state.gen = self._status_gen
                    fresh.extend(self._drain(state.name, state))
        finally:
            self.n_polls += 1
            self.last_poll_duration = time.perf_counter() - t0
            self.last_poll_stats = {
                "now": now,
                "mode": self._poll_mode,
                "duration": self.last_poll_duration,
                "n_pops": n_pops,
                "n_expired": n_expired,
                "n_events": len(fresh),
            }
        return fresh

    def _drain(self, peer: str, state: _PeerState) -> List[LiveEvent]:
        """Convert any new detector transitions into emitted events.

        Incremental: each detector is drained from an absolute cursor
        (O(new transitions) per call, no full-log copies).
        """
        fresh: List[LiveEvent] = []
        total = 0
        for name, det in state.detectors.items():
            new, cursor = det.drain_transitions(state.consumed[name])
            state.consumed[name] = cursor
            total += cursor
            for t, trusting in new:
                fresh.append(
                    LiveEvent(time=t, peer=peer, detector=name, trusting=trusting)
                )
        state.consumed_total = total
        if fresh:
            state.gen = self._status_gen
            log_events = logger.isEnabledFor(logging.INFO)
            tracer = self._tracer
            for event in fresh:
                self._events.append(event)
                if tracer is not None:
                    # Transitions are never sampled away: they are the
                    # rare, load-bearing lifecycle stages.
                    tracer.record(
                        event.kind,
                        time=event.time,
                        peer=event.peer,
                        detector=event.detector,
                    )
                if log_events:
                    logger.info(
                        structured(
                            event.kind,
                            peer=event.peer,
                            detector=event.detector,
                            time=event.time,
                        )
                    )
                self._listeners.emit(event)
        return fresh

    # ------------------------------------------------------------------
    def is_trusting(self, peer: str, detector: str, now: float | None = None) -> bool:
        """One detector's current view of one peer."""
        state = self._require(peer)
        if self._columnar:
            self._engine.sync_peer(state.index, state)
        if now is None:
            now = self.now()
        return state.detectors[detector].is_trusting(now)

    def monitor_load(self, now: float | None = None) -> dict:
        """O(1) monitor-side load/health counters (the ``monitor`` block)."""
        if now is None:
            now = self.now()
        return {
            "n_peers": len(self._peers),
            "counters": self._counter_totals(),
            "reject_reasons": dict(self.reject_reasons),
            "reject_sources": dict(self.reject_sources),
            "last_reject": self.last_reject,
            "poll_mode": self._poll_mode,
            "estimation": self._estimation,
            "ingest_mode": self._ingest_mode,
            "columnar_active": self._columnar,
            "ingest_drains": dict(self.ingest_drains),
            "last_drain_fanin": self.last_drain_fanin,
            "n_mode_switches": self.n_mode_switches,
            "ingest_controller": (
                self._adaptive.as_dict() if self._adaptive is not None else None
            ),
            "n_zero_copy_datagrams": self.n_zero_copy_datagrams,
            "shared_detectors": list(self._shared_names),
            "heap_size": len(self._heap),
            "heartbeat_rate": self._rate.rate(now),
            "n_polls": self.n_polls,
            "n_batches": self.n_batches,
            "last_batch_size": self.last_batch_size,
            "last_poll_duration": self.last_poll_duration,
            "last_poll_expired": (
                self.last_poll_stats["n_expired"] if self.last_poll_stats else None
            ),
            "n_events_total": self._events.total,
            "n_events_dropped": self._events.dropped,
            "max_events": self._events.max_events,
            "n_listener_errors": self._listeners.n_errors,
            "transition_retention": self._retention,
        }

    def snapshot(self, now: float | None = None, *, include_peers: bool = True) -> dict:
        """JSON-able full state: what the status endpoint serves.

        Every counter is maintained incrementally, so the cost is
        O(peers · detectors) for the per-peer listing and independent of
        how long the monitor has been running (transition-history length
        never enters).  ``include_peers=False`` returns just the summary
        head — constant-size, however many peers are being watched.
        """
        if now is None:
            now = self.now()
        snap = {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "now": now,
            "interval": self._interval,
            "detectors": list(self._detector_names),
            "n_malformed": self.n_malformed,
            "n_events": self._events.total,
            "monitor": self.monitor_load(now),
        }
        if not include_peers:
            return snap
        if self._columnar:
            self._engine.sync_all()
        # Render-stage timing is unsampled: snapshots run per status
        # request, not per drain, so the two perf_counter reads are noise
        # there — and sampling 1-in-64 would rarely catch one.
        timer = self._ptimer
        if timer is not None:
            t0 = time.perf_counter()
        snap["peers"] = {
            peer: self._peer_entry(state, now)
            for peer, state in self._peers.items()
        }
        if timer is not None:
            timer.observe("render", time.perf_counter() - t0)
        return snap

    @staticmethod
    def _peer_entry(state: _PeerState, now: float) -> dict:
        """One peer's JSON entry — shared by the full and delta snapshots
        so the two paths cannot drift."""
        detectors = {}
        for name, det in state.detectors.items():
            detectors[name] = {
                "trusting": det.is_trusting(now),
                "freshness_point": det.suspicion_deadline,
                "n_suspicions": det.n_suspicions,
                "largest_seq": det.largest_seq,
            }
        offset = None
        if state.last_arrival is not None and state.last_timestamp is not None:
            offset = state.last_timestamp - state.last_arrival
        return PeerStatus(
            peer=state.name,
            n_datagrams=state.n_datagrams,
            n_accepted=state.n_accepted,
            n_stale=state.n_stale,
            last_seq=state.last_seq,
            last_arrival=state.last_arrival,
            clock_offset_estimate=offset,
            detectors=detectors,
        ).as_dict()

    #: Bound on the removed-peer tombstone map.  Compaction keeps the
    #: newest half and raises ``_tombstone_floor`` past the dropped ones,
    #: so a cursor older than any dropped removal degrades to a full
    #: snapshot instead of silently missing it.
    _TOMBSTONE_CAP = 4096

    def remove_peer(self, peer: str) -> bool:
        """Stop monitoring ``peer``; returns False if it was unknown.

        The peer's slot in the index list survives as a tombstone (heap
        entries referencing it die by lazy deletion; the engines skip it
        on adopt/export) but detectors, shared windows and drain cursors
        are dropped, so the memory cost of a removed peer is near zero.
        Delta snapshots report the removal to every cursor minted before
        it; a later heartbeat from the same name re-discovers the peer
        with fresh detectors (exactly like a first contact).
        """
        state = self._peers.pop(peer, None)
        if state is None:
            return False
        self._status_gen += 1
        state.removed = True
        state.sched = None  # heap entries for this index now lazily die
        if self._engine is not None:
            self._engine.forget_peer(state)
        # Drop the heavy per-peer state; the tombstone keeps only the
        # cheap identity fields.
        state.detectors = {}
        state.det_list = ()
        state.fast_dets = ()
        state.mid_dets = ()
        state.slow_dets = ()
        state.stats = None
        state.consumed = {}
        state.consumed_total = 0
        self._tombstones[peer] = self._status_gen
        if len(self._tombstones) > self._TOMBSTONE_CAP:
            # Keep the newest half; cursors at or below the floor fall
            # back to a full snapshot.
            ordered = sorted(self._tombstones.items(), key=lambda kv: kv[1])
            cut = len(ordered) // 2
            self._tombstone_floor = ordered[cut - 1][1]
            self._tombstones = dict(ordered[cut:])
        if logger.isEnabledFor(logging.INFO):
            logger.info(structured("peer-removed", peer=peer))
        return True

    def delta_snapshot(
        self,
        since: int | None = None,
        instance: str | None = None,
        now: float | None = None,
    ) -> dict:
        """Changed-entries-only snapshot for cursors minted by this monitor.

        Returns the constant-size summary head plus a ``delta`` block
        (``instance``, ``cursor``, ``full``), the ``peers`` whose entry
        changed after generation ``since``, and the names ``removed``
        since then.  Falls back to a full listing (``full: true``) when
        the cursor is absent, minted by another instance (a restart),
        ahead of this monitor's generation (a restart that re-used the
        instance id cannot happen — ids are random — but a corrupted
        cursor can), or older than a compacted tombstone.

        The call polls to ``now`` first, so every deadline that expired
        before ``now`` is materialized — the predictive ``trusting``
        field can then only differ from the last cursor on peers this
        poll stamped.  (A deadline landing *exactly* on ``now`` is not
        expired yet by the strict-comparison convention and flips only
        once a later generation passes it — the same knife edge the
        heap/sweep reference paths share.)
        """
        if now is None:
            now = self.now()
        self.poll(now)
        gen = self._status_gen
        full = (
            since is None
            or instance != self._status_instance
            or since > gen
            or since < self._tombstone_floor
        )
        doc = self.snapshot(now, include_peers=False)
        doc["delta"] = {
            "instance": self._status_instance,
            "since": None if full else since,
            "cursor": gen,
            "full": full,
        }
        timer = self._ptimer
        if timer is not None:
            t0 = time.perf_counter()
        if full:
            if self._columnar:
                self._engine.sync_all()
            doc["peers"] = {
                peer: self._peer_entry(state, now)
                for peer, state in self._peers.items()
            }
            doc["removed"] = []
            if timer is not None:
                timer.observe("render", time.perf_counter() - t0)
            return doc
        engine = self._engine if self._columnar else None
        peers = {}
        for peer, state in self._peers.items():
            if state.gen > since:
                if engine is not None:
                    engine.sync_peer(state.index, state)
                peers[peer] = self._peer_entry(state, now)
        doc["peers"] = peers
        doc["removed"] = sorted(
            peer for peer, g in self._tombstones.items() if g > since
        )
        if timer is not None:
            timer.observe("render", time.perf_counter() - t0)
        return doc

    def summary(self, now: float | None = None) -> dict:
        """Constant-size snapshot head (no per-peer listing)."""
        return self.snapshot(now, include_peers=False)

    def timelines(self, end: float | None = None) -> Dict[str, Dict[str, OutputTimeline]]:
        """Close the run at ``end``; return per-peer per-detector timelines.

        Each timeline spans ``[first heartbeat arrival, end]``, the same
        observation-window convention as the replay pipeline, so
        :func:`repro.qos.metrics.compute_metrics` applies directly.  With
        ``transition_retention`` set, a timeline is exact over the
        retained transition window (the full run when compaction is off).
        """
        if end is None:
            end = self.now()
        self._status_gen += 1
        if self._columnar:
            self._engine.sync_all()
        out: Dict[str, Dict[str, OutputTimeline]] = {}
        for peer, state in self._peers.items():
            if state.first_arrival is None or end <= state.first_arrival:
                continue
            per_det: Dict[str, OutputTimeline] = {}
            for name, det in state.detectors.items():
                per_det[name] = OutputTimeline.from_transitions(
                    det.finalize(end), start=state.first_arrival, end=end
                )
            self._drain(peer, state)  # surface any expiry finalize materialized
            if self._columnar:
                self._engine.writeback_output(state.index, state)
            out[peer] = per_det
        return out

    def _require(self, peer: str) -> _PeerState:
        state = self._peers.get(peer)
        if state is None:
            raise KeyError(
                f"unknown peer {peer!r}; heard from: {', '.join(self._peers) or 'none'}"
            )
        return state


class _MonitorProtocol(asyncio.DatagramProtocol):
    """Datagram glue: stamp the arrival and hand off to the engine.

    With an admission controller attached, every datagram is screened
    first — spoofed/replayed/over-limit beats are dropped (and counted by
    the controller) before the monitor ever sees them; malformed ones pass
    through so the monitor stays the single authority on malformed counts.
    """

    def __init__(self, monitor: LiveMonitor, admission=None):
        self._monitor = monitor
        self._admission = admission

    def datagram_received(self, data: bytes, addr) -> None:  # pragma: no cover - thin
        admission = self._admission
        if admission is None or admission.admit(data, addr):
            self._monitor.ingest(data, addr=addr)


class _BatchedMonitorProtocol(asyncio.DatagramProtocol):
    """Batched glue: drain the loop's datagram burst into one ingest call.

    asyncio delivers one ``datagram_received`` callback per datagram, but
    under load the event loop dispatches a whole ready-socket burst within
    a single iteration.  Buffering those callbacks and flushing via
    ``loop.call_soon`` (which runs *after* the I/O dispatch of the current
    iteration) hands the entire burst to :meth:`LiveMonitor.ingest_many`
    as one batch — per-datagram Python overhead collapses to one append.
    """

    def __init__(self, monitor: LiveMonitor, admission=None):
        self._monitor = monitor
        self._admission = admission
        self._buffer: List[tuple] = []
        self._flush_scheduled = False
        self._loop = asyncio.get_running_loop()
        self.n_batches = 0

    def datagram_received(self, data: bytes, addr) -> None:
        self._buffer.append((data, addr))
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self._loop.call_soon(self._flush)

    def _flush(self) -> None:
        batch, self._buffer = self._buffer, []
        self._flush_scheduled = False
        if not batch:
            return
        self.n_batches += 1
        admission = self._admission
        if admission is not None:
            batch = [(d, a) for d, a in batch if admission.admit(d, a)]
            if not batch:
                return
        datagrams, addrs = zip(*batch)
        self._monitor.ingest_many(datagrams, addrs=addrs)

    def connection_lost(self, exc) -> None:  # pragma: no cover - thin
        self._flush()


class LiveMonitorServer:
    """Asyncio runtime around :class:`LiveMonitor`.

    Binds a UDP endpoint, runs the liveness poll at ``tick`` seconds, and
    (optionally) serves the JSON status endpoint on a local TCP port.
    """

    def __init__(
        self,
        monitor: LiveMonitor,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tick: float = 0.02,
        status_port: int | None = None,
        status_host: str = "127.0.0.1",
        ingest_mode: str = "batch",
        sock=None,
        admission=None,
    ):
        ensure_positive(tick, "tick")
        if ingest_mode == "batch":  # legacy alias from the pre-arena server
            ingest_mode = "batched"
        if ingest_mode not in ("scalar", "batched", "vectorized", "adaptive"):
            raise ValueError(
                "ingest_mode must be 'scalar', 'batched', 'vectorized', or "
                f"'adaptive', got {ingest_mode!r}"
            )
        self.monitor = monitor
        self._host = host
        self._port = port
        self._tick = float(tick)
        self._status_port = status_port
        self._status_host = status_host
        self._ingest_mode = ingest_mode
        # Optional repro.fdaas.admission.AdmissionController: screens every
        # datagram (auth, replay, tenancy, rate limits) before the monitor.
        self._admission = admission
        # A pre-bound UDP socket (shard workers bind their own with
        # SO_REUSEPORT); overrides host/port when given.
        self._sock = sock
        self._transport: asyncio.DatagramTransport | None = None
        # Vectorized mode bypasses the asyncio transport entirely: a
        # non-blocking socket registered via loop.add_reader drains into a
        # reusable DatagramArena (zero bytes objects per datagram).
        self._arena_sock = None
        self._arena = None
        self._poll_task: asyncio.Task | None = None
        self.status: StatusServer | None = None
        self.address: Tuple[str, int] | None = None
        # Runtime diagnostics (when the monitor's obs bundle carries
        # them): the server owns the watchdog lifecycle and the SIGUSR1
        # dump; `_ptimer` mirrors the monitor's for the drain stage.
        obs = monitor.observability
        self._diag = obs.diag if obs is not None else None
        self._ptimer = self._diag.timer if self._diag is not None else None
        self._sig_token = None

    async def __aenter__(self) -> "LiveMonitorServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def _status_snapshot(self) -> dict:
        """The monitor snapshot, plus the admission block when screening."""
        snap = self.monitor.snapshot()
        if self._admission is not None:
            snap["admission"] = self._admission.stats()
        return snap

    def _status_summary(self) -> dict:
        snap = self.monitor.summary()
        if self._admission is not None:
            snap["admission"] = self._admission.stats()
        return snap

    def _status_delta(self, since=None, instance=None) -> dict:
        doc = self.monitor.delta_snapshot(since, instance)
        if self._admission is not None:
            doc["admission"] = self._admission.stats()
        return doc

    def _drain_arena(self) -> None:
        """Readable callback: drain the socket queue into the arena and hand
        the whole burst to the monitor in one zero-copy call.  The loop is
        level-triggered, so a full arena just means the callback fires again
        immediately with the remainder."""
        if self._arena_sock is None:  # racing a concurrent stop()
            return
        # The drain stage proper is the recv_into burst; on sampled
        # drains it gets its own perf_counter bracket.  (The batched
        # protocol's socket reads happen inside asyncio's transport, so
        # only the arena path can time this stage.)
        timer = self._ptimer
        if timer is not None and timer.sample():
            t0 = time.perf_counter()
            got = self._arena.drain(self._arena_sock)
            timer.observe("drain", time.perf_counter() - t0)
        else:
            got = self._arena.drain(self._arena_sock)
        if got:
            if self._admission is not None:
                # recv_into has no source addresses, so admission screens
                # slots in place (compacting accepted ones) by content only.
                self._admission.filter_arena(self._arena)
            if self._arena.last_fill:
                self.monitor.ingest_arena(self._arena)

    async def start(self) -> Tuple[str, int]:
        """Bind the socket and start polling; returns the bound address."""
        loop = asyncio.get_running_loop()
        if self._ingest_mode in ("vectorized", "adaptive"):
            # Both columnar-capable modes receive through the zero-copy
            # arena; the monitor routes each drain to the right path.
            from repro.live.arena import DatagramArena

            if self._sock is not None:
                self._arena_sock = self._sock
            else:
                self._arena_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                self._arena_sock.bind((self._host, self._port))
            self._arena_sock.setblocking(False)
            self._arena = DatagramArena()
            loop.add_reader(self._arena_sock.fileno(), self._drain_arena)
            sockname = self._arena_sock.getsockname()
        else:
            if self._ingest_mode == "batched":
                protocol_factory = lambda: _BatchedMonitorProtocol(
                    self.monitor, self._admission
                )
            else:
                protocol_factory = lambda: _MonitorProtocol(
                    self.monitor, self._admission
                )
            if self._sock is not None:
                self._transport, _ = await loop.create_datagram_endpoint(
                    protocol_factory, sock=self._sock
                )
            else:
                self._transport, _ = await loop.create_datagram_endpoint(
                    protocol_factory, local_addr=(self._host, self._port)
                )
            sockname = self._transport.get_extra_info("sockname")
        self.address = (sockname[0], sockname[1])
        if self._status_port is not None:
            has_obs = self.monitor.observability is not None
            self.status = StatusServer(
                self._status_snapshot,
                host=self._status_host,
                port=self._status_port,
                summary=self._status_summary,
                delta=self._status_delta,
                metrics=self.monitor.render_metrics if has_obs else None,
                trace=self.monitor.trace_document if has_obs else None,
                diag=self.monitor.diag_document if has_obs else None,
            )
            await self.status.start()
        if self._diag is not None:
            self._diag.watchdog.start()
            self._sig_token = install_sigusr1(self.monitor.diag_document)
        self._poll_task = asyncio.create_task(self._poll_loop())
        logger.info(
            structured(
                "monitor-started",
                host=self.address[0],
                port=self.address[1],
                tick=self._tick,
                detectors=list(self.monitor.detector_names),
            )
        )
        return self.address

    @staticmethod
    def _next_tick(start: float, k: int, tick: float, now: float) -> Tuple[int, float]:
        """Absolute-deadline pacing: deadline of tick ``k+1``, skipping
        slots already missed (so a stall never causes a catch-up burst,
        and sleep jitter never accumulates — the same discipline as
        ``heartbeater.py``)."""
        k += 1
        target = start + k * tick
        if target <= now:
            k = int((now - start) / tick) + 1
            target = start + k * tick
        return k, target

    async def _poll_loop(self) -> None:
        loop = asyncio.get_running_loop()
        start = loop.time()
        k = 0
        while True:
            self.monitor.poll()
            k, target = self._next_tick(start, k, self._tick, loop.time())
            await asyncio.sleep(max(0.0, target - loop.time()))

    async def stop(self) -> None:
        """Shut everything down; one final poll flushes pending expiries."""
        if self._diag is not None:
            self._diag.watchdog.stop()
            if self._sig_token is not None:
                restore_sigusr1(self._sig_token)
                self._sig_token = None
        if self._poll_task is not None:
            self._poll_task.cancel()
            try:
                await self._poll_task
            except asyncio.CancelledError:
                pass
            self._poll_task = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        if self._arena_sock is not None:
            sock, self._arena_sock = self._arena_sock, None
            asyncio.get_running_loop().remove_reader(sock.fileno())
            # One last drain so datagrams already queued at shutdown count,
            # then close — the server owns the socket either way, exactly
            # as the datagram transport owns a pre-bound one.
            if self._arena.drain(sock):
                if self._admission is not None:
                    self._admission.filter_arena(self._arena)
                if self._arena.last_fill:
                    self.monitor.ingest_arena(self._arena)
            sock.close()
            self._arena = None
        if self.status is not None:
            await self.status.stop()
            self.status = None
        self.monitor.poll()
        logger.info(structured("monitor-stopped", n_events=self.monitor.n_events_total))
