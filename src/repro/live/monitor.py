"""The live monitor daemon (process q) over real UDP sockets.

:class:`LiveMonitor` is the transport-free engine: it decodes heartbeat
datagrams (:mod:`repro.live.wire`), maintains one set of online detectors
per peer (any names from :mod:`repro.detectors.registry`), polls liveness,
and emits a subscribe-able stream of :class:`LiveEvent` suspicion/trust
transitions — the live analogue of :class:`repro.qos.timeline.OutputTimeline`.
:meth:`LiveMonitor.timelines` converts a finished run into real
``OutputTimeline`` objects, so :func:`repro.qos.metrics.compute_metrics`
scores a live run exactly as it scores a replayed one.

:class:`LiveMonitorServer` binds the engine to an asyncio UDP endpoint and
a periodic poll task, optionally alongside the JSON status endpoint
(:mod:`repro.live.status`).

All detector inputs are ``(seq, arrival)`` with arrivals on the *monitor's*
monotonic clock, relative to the monitor's start — sender clocks (and any
chaos-injected skew) never enter the detection path, only the
observability fields of the status snapshot.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro._validation import ensure_positive
from repro.core.base import HeartbeatFailureDetector
from repro.detectors.registry import make_tuned
from repro.live.status import StatusServer, structured
from repro.live.wire import Heartbeat, WireError
from repro.qos.timeline import OutputTimeline

__all__ = ["LiveEvent", "LiveMonitor", "LiveMonitorServer", "PeerStatus"]

logger = logging.getLogger("repro.live.monitor")


@dataclass(frozen=True)
class LiveEvent:
    """One detector output transition, as observed by the live monitor.

    ``time`` is the exact transition instant on the monitor clock (the
    freshness-point expiry for suspicions, the heartbeat arrival for trust
    renewals) — not the polling tick that materialized it.
    """

    time: float
    peer: str
    detector: str
    trusting: bool

    @property
    def kind(self) -> str:
        return "trust" if self.trusting else "suspect"


class _PeerState:
    """Everything the monitor tracks about one heartbeat sender."""

    __slots__ = (
        "detectors",
        "consumed",
        "n_datagrams",
        "n_accepted",
        "n_stale",
        "first_arrival",
        "last_arrival",
        "last_timestamp",
        "last_seq",
    )

    def __init__(self, detectors: Dict[str, HeartbeatFailureDetector]):
        self.detectors = detectors
        self.consumed = {name: 0 for name in detectors}  # transitions drained
        self.n_datagrams = 0
        self.n_accepted = 0
        self.n_stale = 0
        self.first_arrival: float | None = None
        self.last_arrival: float | None = None
        self.last_timestamp: float | None = None
        self.last_seq = 0


@dataclass(frozen=True)
class PeerStatus:
    """JSON-able per-peer snapshot line (one entry of ``snapshot()``)."""

    peer: str
    n_datagrams: int
    n_accepted: int
    n_stale: int
    last_seq: int
    last_arrival: float | None
    clock_offset_estimate: float | None
    detectors: Dict[str, dict]

    def as_dict(self) -> dict:
        return {
            "peer": self.peer,
            "n_datagrams": self.n_datagrams,
            "n_accepted": self.n_accepted,
            "n_stale": self.n_stale,
            "last_seq": self.last_seq,
            "last_arrival": self.last_arrival,
            "clock_offset_estimate": self.clock_offset_estimate,
            "detectors": self.detectors,
        }


class LiveMonitor:
    """Per-peer online failure detection over decoded heartbeat datagrams.

    Parameters
    ----------
    interval:
        The heartbeat interval Δi peers were asked to send at (a protocol
        parameter, as in the paper's model).
    detectors:
        Registry names to run for every peer; each peer gets its own
        instances.
    params:
        ``name -> tuning value`` routed through
        :func:`repro.detectors.registry.make_tuned` (None / missing for the
        self-configuring detectors).
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        interval: float,
        detectors: Sequence[str] = ("2w-fd",),
        params: Mapping[str, float | None] | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        ensure_positive(interval, "interval")
        if not detectors:
            raise ValueError("at least one detector name is required")
        self._interval = float(interval)
        self._params = dict(params or {})
        unknown = set(self._params) - set(detectors)
        if unknown:
            raise ValueError(
                f"params given for detectors not being run: {sorted(unknown)}"
            )
        self._detector_names = tuple(detectors)
        # Fail fast on bad names/params (satellite: friendly errors up
        # front, not TypeErrors when the first heartbeat arrives).
        for name in self._detector_names:
            make_tuned(name, self._interval, self._params.get(name))
        self._peers: Dict[str, _PeerState] = {}
        self._clock = clock
        self._epoch: float | None = None
        self._listeners: List[Callable[[LiveEvent], None]] = []
        self._events: List[LiveEvent] = []
        self.n_malformed = 0

    # ------------------------------------------------------------------
    @property
    def interval(self) -> float:
        return self._interval

    @property
    def detector_names(self) -> Tuple[str, ...]:
        return self._detector_names

    @property
    def peers(self) -> Tuple[str, ...]:
        return tuple(self._peers)

    @property
    def events(self) -> List[LiveEvent]:
        """All events emitted so far (chronological per peer/detector)."""
        return list(self._events)

    def subscribe(self, listener: Callable[[LiveEvent], None]) -> None:
        """Register a callback invoked synchronously for every new event."""
        self._listeners.append(listener)

    def now(self) -> float:
        """Monitor-relative current time (0 at first ingest/poll)."""
        t = self._clock()
        if self._epoch is None:
            self._epoch = t
        return t - self._epoch

    # ------------------------------------------------------------------
    def ingest(self, data: bytes, arrival: float | None = None) -> Heartbeat | None:
        """Feed one raw datagram; returns the heartbeat if it decoded.

        ``arrival`` is the receipt instant on the monitor clock (relative
        to the monitor epoch); defaults to now.  Malformed datagrams are
        counted, logged, and dropped — never raised.
        """
        if arrival is None:
            arrival = self.now()
        try:
            hb = Heartbeat.decode(data)
        except WireError as exc:
            self.n_malformed += 1
            logger.debug("dropping malformed datagram: %s", exc)
            return None
        state = self._peers.get(hb.sender)
        if state is None:
            state = _PeerState(
                {
                    name: make_tuned(name, self._interval, self._params.get(name))
                    for name in self._detector_names
                }
            )
            self._peers[hb.sender] = state
            logger.info(structured("peer-discovered", peer=hb.sender, arrival=arrival))
        state.n_datagrams += 1
        accepted = False
        for det in state.detectors.values():
            accepted = det.receive(hb.seq, arrival) or accepted
        if accepted:
            state.n_accepted += 1
            state.last_seq = hb.seq
            state.last_arrival = arrival
            state.last_timestamp = hb.timestamp
            if state.first_arrival is None:
                state.first_arrival = arrival
        else:
            state.n_stale += 1
        self._drain(hb.sender, state)
        return hb

    def poll(self, now: float | None = None) -> List[LiveEvent]:
        """Materialize deadline expiries up to ``now``; return new events."""
        if now is None:
            now = self.now()
        fresh: List[LiveEvent] = []
        for peer, state in self._peers.items():
            for det in state.detectors.values():
                det.advance_to(now)
            fresh.extend(self._drain(peer, state))
        return fresh

    def _drain(self, peer: str, state: _PeerState) -> List[LiveEvent]:
        """Convert any new detector transitions into emitted events."""
        fresh: List[LiveEvent] = []
        for name, det in state.detectors.items():
            transitions = det.transitions
            start = state.consumed[name]
            for t, trusting in transitions[start:]:
                event = LiveEvent(time=t, peer=peer, detector=name, trusting=trusting)
                fresh.append(event)
            state.consumed[name] = len(transitions)
        for event in fresh:
            self._events.append(event)
            logger.info(
                structured(
                    event.kind,
                    peer=event.peer,
                    detector=event.detector,
                    time=event.time,
                )
            )
            for listener in self._listeners:
                listener(event)
        return fresh

    # ------------------------------------------------------------------
    def is_trusting(self, peer: str, detector: str, now: float | None = None) -> bool:
        """One detector's current view of one peer."""
        state = self._require(peer)
        if now is None:
            now = self.now()
        return state.detectors[detector].is_trusting(now)

    def snapshot(self, now: float | None = None) -> dict:
        """JSON-able full state: what the status endpoint serves."""
        if now is None:
            now = self.now()
        peers = {}
        for peer, state in self._peers.items():
            detectors = {}
            for name, det in state.detectors.items():
                n_suspicions = sum(1 for t, trust in det.transitions if not trust)
                detectors[name] = {
                    "trusting": det.is_trusting(now),
                    "freshness_point": det.suspicion_deadline,
                    "n_suspicions": n_suspicions,
                    "largest_seq": det.largest_seq,
                }
            offset = None
            if state.last_arrival is not None and state.last_timestamp is not None:
                offset = state.last_timestamp - state.last_arrival
            peers[peer] = PeerStatus(
                peer=peer,
                n_datagrams=state.n_datagrams,
                n_accepted=state.n_accepted,
                n_stale=state.n_stale,
                last_seq=state.last_seq,
                last_arrival=state.last_arrival,
                clock_offset_estimate=offset,
                detectors=detectors,
            ).as_dict()
        return {
            "now": now,
            "interval": self._interval,
            "detectors": list(self._detector_names),
            "n_malformed": self.n_malformed,
            "n_events": len(self._events),
            "peers": peers,
        }

    def timelines(self, end: float | None = None) -> Dict[str, Dict[str, OutputTimeline]]:
        """Close the run at ``end``; return per-peer per-detector timelines.

        Each timeline spans ``[first heartbeat arrival, end]``, the same
        observation-window convention as the replay pipeline, so
        :func:`repro.qos.metrics.compute_metrics` applies directly.
        """
        if end is None:
            end = self.now()
        out: Dict[str, Dict[str, OutputTimeline]] = {}
        for peer, state in self._peers.items():
            if state.first_arrival is None or end <= state.first_arrival:
                continue
            per_det: Dict[str, OutputTimeline] = {}
            for name, det in state.detectors.items():
                per_det[name] = OutputTimeline.from_transitions(
                    det.finalize(end), start=state.first_arrival, end=end
                )
            self._drain(peer, state)  # surface any expiry finalize materialized
            out[peer] = per_det
        return out

    def _require(self, peer: str) -> _PeerState:
        state = self._peers.get(peer)
        if state is None:
            raise KeyError(
                f"unknown peer {peer!r}; heard from: {', '.join(self._peers) or 'none'}"
            )
        return state


class _MonitorProtocol(asyncio.DatagramProtocol):
    """Datagram glue: stamp the arrival and hand off to the engine."""

    def __init__(self, monitor: LiveMonitor):
        self._monitor = monitor

    def datagram_received(self, data: bytes, addr) -> None:  # pragma: no cover - thin
        self._monitor.ingest(data)


class LiveMonitorServer:
    """Asyncio runtime around :class:`LiveMonitor`.

    Binds a UDP endpoint, runs the liveness poll at ``tick`` seconds, and
    (optionally) serves the JSON status endpoint on a local TCP port.
    """

    def __init__(
        self,
        monitor: LiveMonitor,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tick: float = 0.02,
        status_port: int | None = None,
        status_host: str = "127.0.0.1",
    ):
        ensure_positive(tick, "tick")
        self.monitor = monitor
        self._host = host
        self._port = port
        self._tick = float(tick)
        self._status_port = status_port
        self._status_host = status_host
        self._transport: asyncio.DatagramTransport | None = None
        self._poll_task: asyncio.Task | None = None
        self.status: StatusServer | None = None
        self.address: Tuple[str, int] | None = None

    async def __aenter__(self) -> "LiveMonitorServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def start(self) -> Tuple[str, int]:
        """Bind the socket and start polling; returns the bound address."""
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _MonitorProtocol(self.monitor),
            local_addr=(self._host, self._port),
        )
        sock = self._transport.get_extra_info("sockname")
        self.address = (sock[0], sock[1])
        if self._status_port is not None:
            self.status = StatusServer(
                self.monitor.snapshot, host=self._status_host, port=self._status_port
            )
            await self.status.start()
        self._poll_task = asyncio.create_task(self._poll_loop())
        logger.info(
            structured(
                "monitor-started",
                host=self.address[0],
                port=self.address[1],
                tick=self._tick,
                detectors=list(self.monitor.detector_names),
            )
        )
        return self.address

    async def _poll_loop(self) -> None:
        while True:
            self.monitor.poll()
            await asyncio.sleep(self._tick)

    async def stop(self) -> None:
        """Shut everything down; one final poll flushes pending expiries."""
        if self._poll_task is not None:
            self._poll_task.cancel()
            try:
                await self._poll_task
            except asyncio.CancelledError:
                pass
            self._poll_task = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        if self.status is not None:
            await self.status.stop()
            self.status = None
        self.monitor.poll()
        logger.info(structured("monitor-stopped", n_events=len(self.monitor.events)))
