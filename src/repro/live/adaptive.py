"""Per-drain ingest-mode selection for the live monitor.

The two fast ingest paths have opposite sweet spots on the committed
benchmarks (``BENCH_ingest.json``): the batched scalar path wins at low
fan-in (vectorized is ~0.28x of batched at 10 peers — kernel launch and
column assembly overhead dominate tiny sub-batches), the vectorized
columnar path wins at high fan-in (~2.2x at 200 peers, crossover between
10 and 50).  ``--ingest-mode adaptive`` refuses to make that trade-off
statically: an :class:`AdaptiveIngestController` owned by the monitor
watches every drain and picks the path for the *next* drain online.

Signals (all EWMAs weighted by drain size, so stray single-datagram
``ingest()`` calls cannot drown a steady batch stream):

* **fan-in** — distinct peers per drain.  This, not raw batch size, is
  what the vectorized win depends on: its kernels apply per sub-batch of
  pairwise-distinct peers, so 512 datagrams from 10 peers vectorize in
  runs of ≤ 10 rows while 512 from 200 peers vectorize in runs of
  hundreds.
* **per-datagram drain cost per mode** — measured wall time of each
  drain divided by its datagram count, one EWMA per path.

Decision rule: fan-in hysteresis (switch up above ``fanin_high``, down
below ``fanin_low`` — the defaults 32/16 straddle the measured
crossover) arbitrated by measured cost wherever both paths have been
measured.  Fan-in is the *predictor* — it is what the vectorized win
structurally depends on — but the crossover point varies by host, so
once both per-datagram cost EWMAs exist they take precedence: a path
that measures ``cost_margin`` cheaper wins regardless of which side of
the band the fan-in sits on, and a fan-in-triggered switch *up* is
vetoed while the vectorized path's last measurement is clearly worse
(the veto yields above ``2 * fanin_high`` — by then the measurement
came from a different fan-in regime and deserves a re-trial).  A
minimum dwell (drains since the last switch) bounds switch frequency,
so the O(peers × window) state migration the monitor performs on a
switch (:meth:`VectorizedIngestEngine.adopt` / ``export``) stays off
the hot path.

The controller is pure policy — it never touches monitor state.  The
monitor calls :meth:`decide` before a drain, runs the chosen path, and
feeds the measurement back through :meth:`observe`.  Equivalence is the
engine's problem, not the controller's: both paths are bitwise-identical
to the scalar reference, so *any* decision sequence yields identical
events, snapshots and QoS timelines — the property suite asserts exactly
that by comparing adaptive runs against the reference.

When numpy is unavailable there is no columnar path worth switching to
(the ``array``-module fallback is per-row Python arithmetic too), so the
monitor constructs the controller with ``columnar_available=False`` and
it pins every decision to ``"batched"``.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["AdaptiveIngestController"]


class AdaptiveIngestController:
    """Online batched-vs-vectorized selection with hysteresis.

    Parameters
    ----------
    fanin_high:
        Switch batched → vectorized once the fan-in EWMA reaches this.
    fanin_low:
        Switch vectorized → batched once the fan-in EWMA falls to this.
        Must be < ``fanin_high`` (the gap is the hysteresis band).
    cost_margin:
        Once both paths have measured per-datagram costs, switch to (or
        stay on) the one whose cost times this factor still undercuts
        the other's (> 1 demands a clear win before churning).
    min_dwell:
        Minimum drains between switches (migration-cost bound).
    smoothing:
        EWMA half-weight in datagrams: a drain of ``n`` datagrams moves
        the averages by ``n / (n + smoothing)`` — a 512-datagram drain
        shifts them ~20%, a single datagram ~0.05%.
    columnar_available:
        False pins the controller to ``"batched"`` (no numpy engine).
    """

    __slots__ = (
        "fanin_high",
        "fanin_low",
        "cost_margin",
        "min_dwell",
        "smoothing",
        "columnar_available",
        "mode",
        "fanin_ewma",
        "cost",
        "drains",
        "n_switches",
        "_since_switch",
    )

    def __init__(
        self,
        *,
        fanin_high: float = 32.0,
        fanin_low: float = 16.0,
        cost_margin: float = 1.2,
        min_dwell: int = 8,
        smoothing: float = 2048.0,
        columnar_available: bool = True,
    ):
        if not fanin_low < fanin_high:
            raise ValueError(
                f"fanin_low ({fanin_low}) must be < fanin_high ({fanin_high})"
            )
        if cost_margin < 1.0:
            raise ValueError(f"cost_margin must be >= 1.0, got {cost_margin}")
        self.fanin_high = float(fanin_high)
        self.fanin_low = float(fanin_low)
        self.cost_margin = float(cost_margin)
        self.min_dwell = int(min_dwell)
        self.smoothing = float(smoothing)
        self.columnar_available = bool(columnar_available)
        self.mode = "batched"
        self.fanin_ewma: Optional[float] = None
        self.cost: Dict[str, Optional[float]] = {
            "batched": None,
            "vectorized": None,
        }
        self.drains: Dict[str, int] = {"batched": 0, "vectorized": 0}
        self.n_switches = 0
        self._since_switch = 0

    # ------------------------------------------------------------------
    def decide(self) -> str:
        """The mode for the next drain (updates :attr:`mode` on a switch)."""
        if not self.columnar_available:
            return self.mode
        f = self.fanin_ewma
        if f is None or self._since_switch < self.min_dwell:
            return self.mode
        cb = self.cost["batched"]
        cv = self.cost["vectorized"]
        both = cb is not None and cv is not None
        vect_cheaper = both and cv * self.cost_margin < cb
        batched_cheaper = both and cb * self.cost_margin < cv
        if self.mode == "batched":
            if vect_cheaper and f > self.fanin_low:
                return self._switch("vectorized")
            if f >= self.fanin_high:
                # Measured-cost veto: vectorized was tried here and lost.
                # Yield the veto once fan-in has doubled past the band —
                # the measurement is from another regime, re-trial is due.
                if batched_cheaper and f < 2.0 * self.fanin_high:
                    return self.mode
                return self._switch("vectorized")
        else:
            if f <= self.fanin_low or batched_cheaper:
                return self._switch("batched")
        return self.mode

    def _switch(self, to: str) -> str:
        self.mode = to
        self.n_switches += 1
        self._since_switch = 0
        return to

    def observe(self, mode: str, n: int, fanin: int, seconds: float) -> None:
        """Feed back one drain: ``n`` datagrams from ``fanin`` distinct
        peers handled by ``mode`` in ``seconds`` of wall time."""
        if n <= 0:
            return
        self.drains[mode] += 1
        self._since_switch += 1
        w = n / (n + self.smoothing)
        f = self.fanin_ewma
        self.fanin_ewma = float(fanin) if f is None else f + w * (fanin - f)
        c = seconds / n
        prev = self.cost[mode]
        self.cost[mode] = c if prev is None else prev + w * (c - prev)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """Diagnostics for ``monitor_load`` / status snapshots."""
        return {
            "mode": self.mode,
            "columnar_available": self.columnar_available,
            "fanin_ewma": self.fanin_ewma,
            "cost_batched": self.cost["batched"],
            "cost_vectorized": self.cost["vectorized"],
            "drains_batched": self.drains["batched"],
            "drains_vectorized": self.drains["vectorized"],
            "n_switches": self.n_switches,
        }
