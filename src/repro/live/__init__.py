"""Live failure-detection runtime: real UDP heartbeats over asyncio.

Everything else in this repository evaluates detectors over *recorded*
arrival times (trace replay, the discrete-event simulator).  This package is
the repo's first real-I/O subsystem: the same online detectors
(:mod:`repro.detectors`) monitor heartbeats arriving on an actual socket,
timestamped with the host's monotonic clock.

Modules
-------
- :mod:`repro.live.wire` — versioned struct-packed heartbeat datagram format;
- :mod:`repro.live.arena` — preallocated ``recv_into`` datagram arena for
  zero-copy socket drains;
- :mod:`repro.live.ingest` — columnar batch-ingest engines (numpy
  vectorized, ``array``-module fallback) behind ``ingest_mode="vectorized"``;
- :mod:`repro.live.adaptive` — the per-drain batched-vs-vectorized
  policy behind ``ingest_mode="adaptive"``;
- :mod:`repro.live.heartbeater` — async sender daemon (process p);
- :mod:`repro.live.monitor` — async monitor daemon (process q): per-peer
  detectors, liveness polling, a subscribe-able suspicion/trust event
  stream, and timelines scoreable by :mod:`repro.qos.metrics`;
- :mod:`repro.live.chaos` — deterministic fault injection (loss, delay,
  clock skew, scheduled crash) reusing the :mod:`repro.net` models;
- :mod:`repro.live.service` — the §V-C shared service over live arrivals:
  one heartbeat stream, per-application freshness points;
- :mod:`repro.live.status` — JSON observability endpoint over local TCP
  plus structured (JSON-lines) logging;
- :mod:`repro.live.shard` — multi-core ingest: ``SO_REUSEPORT`` worker
  processes behind one UDP address, merged into one status document.

See ``docs/live.md`` for the architecture and ``examples/live_quickstart.py``
for a complete loopback run with an injected crash.
"""

from repro.live.adaptive import AdaptiveIngestController
from repro.live.arena import ARENA_SLOT_BYTES, DEFAULT_ARENA_SLOTS, DatagramArena
from repro.live.chaos import ChaosLink, ChaosSpec, PacketFate, PlannedPacket, plan_delivery
from repro.live.heartbeater import Heartbeater
from repro.live.monitor import LiveEvent, LiveMonitor, LiveMonitorServer
from repro.live.service import LiveSharedMonitor
from repro.live.shard import ShardedMonitor, merge_snapshots, reuseport_supported
from repro.live.status import (
    SNAPSHOT_SCHEMA_VERSION,
    StatusServer,
    afetch_metrics,
    afetch_status,
    afetch_trace,
    fetch_metrics,
    fetch_status,
    fetch_trace,
)
from repro.live.wire import (
    HEADER_SIZE,
    MAGIC,
    MAX_DATAGRAM_BYTES,
    VERSION,
    Heartbeat,
    WireError,
    decode_fields,
    decode_fields_from,
)

__all__ = [
    "ARENA_SLOT_BYTES",
    "AdaptiveIngestController",
    "ChaosLink",
    "ChaosSpec",
    "DEFAULT_ARENA_SLOTS",
    "DatagramArena",
    "HEADER_SIZE",
    "Heartbeat",
    "Heartbeater",
    "LiveEvent",
    "LiveMonitor",
    "LiveMonitorServer",
    "LiveSharedMonitor",
    "MAGIC",
    "MAX_DATAGRAM_BYTES",
    "PacketFate",
    "PlannedPacket",
    "SNAPSHOT_SCHEMA_VERSION",
    "ShardedMonitor",
    "StatusServer",
    "VERSION",
    "WireError",
    "afetch_metrics",
    "afetch_status",
    "afetch_trace",
    "decode_fields",
    "decode_fields_from",
    "fetch_metrics",
    "fetch_status",
    "fetch_trace",
    "merge_snapshots",
    "plan_delivery",
    "reuseport_supported",
]
