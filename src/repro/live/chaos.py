"""Deterministic fault injection for the live runtime.

A :class:`ChaosSpec` describes everything that can go wrong between the
heartbeater and the monitor, reusing the repository's calibrated network
models:

- **loss** — any :class:`repro.net.loss.LossModel` (Bernoulli, Gilbert–
  Elliott bursts, ...); consulted once per heartbeat via its stateful
  ``stream``;
- **delay** — any :class:`repro.net.delays.DelayModel`; one draw per
  *delivered* heartbeat, added between send and arrival;
- **clock** — a :class:`repro.net.clock.ClockModel` giving the *sender's*
  clock as a function of the monitor's (wall) clock: the heartbeater paces
  itself and stamps timestamps on this skewed clock, so DESIGN.md
  invariant 4 (skew invariance) can be exercised against real sockets;
- **crash_at** — the sender stops emitting once its *own* clock has run
  ``crash_at`` seconds (the live analogue of the simulator's crash
  injection).

The same :class:`ChaosLink` drives both execution modes:

1. *online* — the asyncio :class:`~repro.live.heartbeater.Heartbeater`
   calls :meth:`ChaosLink.fate` per heartbeat and sleeps on the wall clock;
2. *offline* — :func:`plan_delivery` unrolls the identical per-packet
   decisions into a list of :class:`PlannedPacket` on a virtual clock, so
   tests can replay a chaos scenario through the monitor deterministically
   and instantly (no sockets, no sleeping).

Both modes consume the RNG in exactly the same per-packet order (one loss
decision, then one delay draw for delivered packets), so a seed pins the
full scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

import numpy as np

from repro.net.clock import ClockModel, DriftingClock, PerfectClock
from repro.net.delays import ConstantDelay, DelayModel
from repro.net.loss import LossModel, NoLoss
from repro.live.wire import Heartbeat

__all__ = ["ChaosSpec", "ChaosLink", "PacketFate", "PlannedPacket", "plan_delivery"]


def _clock_rate(clock: ClockModel) -> float:
    """Seconds of sender clock per second of wall clock.

    For the affine models the rate is taken from the drift directly —
    ``to_local(1) - to_local(0)`` would lose an ulp to the offset and break
    the exact skew-invariance property (a pure offset must not perturb the
    wall-clock schedule at all).
    """
    if isinstance(clock, PerfectClock):
        return 1.0
    if isinstance(clock, DriftingClock):
        return 1.0 + clock.drift
    return float(clock.to_local(1.0)) - float(clock.to_local(0.0))


@dataclass(frozen=True)
class ChaosSpec:
    """A complete, seeded description of injected faults."""

    loss: LossModel = field(default_factory=NoLoss)
    delay: DelayModel = field(default_factory=ConstantDelay)
    clock: ClockModel = field(default_factory=PerfectClock)
    crash_at: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.crash_at is not None and self.crash_at <= 0:
            raise ValueError(f"crash_at must be positive, got {self.crash_at}")
        # The sender's clock must advance (an affine model with rate > 0):
        # a frozen or backwards clock cannot pace a heartbeat schedule.
        rate = _clock_rate(self.clock)
        if not rate > 0.0:
            raise ValueError(f"chaos clock must run forward (rate {rate})")

    def link(self) -> "ChaosLink":
        """A fresh stateful per-run instance (resets the RNG and loss state)."""
        return ChaosLink(self)


@dataclass(frozen=True)
class PacketFate:
    """The network's verdict on one heartbeat."""

    delivered: bool
    delay: float


class ChaosLink:
    """Per-run chaos state: one RNG, one loss stream, one clock mapping."""

    def __init__(self, spec: ChaosSpec):
        self.spec = spec
        self._rng = np.random.default_rng(spec.seed)
        self._loss_stream: Iterator[bool] = spec.loss.stream(self._rng)
        self._rate = _clock_rate(spec.clock)
        self.n_sent = 0
        self.n_dropped = 0

    # -- clock -----------------------------------------------------------
    def wall_elapsed(self, sender_elapsed: float) -> float:
        """Wall (monitor-clock) seconds until the sender's clock runs ``sender_elapsed``."""
        return sender_elapsed / self._rate

    def sender_clock(self, wall_now: float) -> float:
        """The sender's clock reading at wall instant ``wall_now``."""
        return float(self.spec.clock.to_local(wall_now))

    def crashed(self, sender_elapsed: float) -> bool:
        """Has the scheduled crash occurred by sender-clock ``sender_elapsed``?"""
        return self.spec.crash_at is not None and sender_elapsed > self.spec.crash_at

    # -- per-packet fate -------------------------------------------------
    def fate(self) -> PacketFate:
        """Decide one heartbeat's fate (advances the RNG deterministically)."""
        self.n_sent += 1
        delivered = bool(next(self._loss_stream))
        if not delivered:
            self.n_dropped += 1
            # Burn the delay draw anyway so the RNG stream position depends
            # only on the packet index, not on earlier loss outcomes.
            self.spec.delay.sample(self._rng, 1)
            return PacketFate(delivered=False, delay=0.0)
        delay = float(self.spec.delay.sample(self._rng, 1)[0])
        if delay < 0.0:
            raise ValueError("delay model produced a negative delay")
        return PacketFate(delivered=True, delay=delay)


@dataclass(frozen=True)
class PlannedPacket:
    """One heartbeat's complete offline trajectory through a chaos link."""

    seq: int
    wall_send: float  # monitor-clock send instant
    heartbeat: Heartbeat  # what goes on the wire (skewed timestamp)
    delivered: bool
    wall_arrival: float  # monitor-clock arrival (meaningless if dropped)

    @property
    def datagram(self) -> bytes:
        return self.heartbeat.encode()


def plan_delivery(
    spec: ChaosSpec,
    interval: float,
    n: int,
    *,
    sender: str = "p",
    start_wall: float = 0.0,
) -> List[PlannedPacket]:
    """Unroll ``n`` heartbeat slots through ``spec`` on a virtual clock.

    Mirrors the online heartbeater exactly: heartbeat ``k`` is due at
    sender-clock elapsed ``k·Δi`` (first at Δi, per Alg. 1 line 2) and is
    sent only if the scheduled crash has not yet occurred.  Returns one
    :class:`PlannedPacket` per actually-sent heartbeat, in send order
    (arrival order may differ when delays reorder packets — sort by
    ``wall_arrival`` before feeding a monitor).
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    link = spec.link()
    out: List[PlannedPacket] = []
    for k in range(1, n + 1):
        sender_elapsed = k * interval
        if link.crashed(sender_elapsed):
            break
        wall_send = start_wall + link.wall_elapsed(sender_elapsed)
        hb = Heartbeat(sender=sender, seq=k, timestamp=link.sender_clock(wall_send))
        f = link.fate()
        out.append(
            PlannedPacket(
                seq=k,
                wall_send=wall_send,
                heartbeat=hb,
                delivered=f.delivered,
                wall_arrival=wall_send + f.delay,
            )
        )
    return out
