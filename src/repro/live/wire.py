"""Heartbeat wire format: one UDP datagram per heartbeat.

Layout (network byte order)::

    offset  size  field
    0       4     magic  b"2WFD"
    4       1     version (1 = plain, 2 = authenticated)
    5       1     sender-id length L (1..255)
    6       L     sender id, UTF-8
    6+L     8     sequence number (uint64, starts at 1)
    14+L    8     send timestamp (float64): the *sender's* monotonic clock
                  at the send instant
    22+L    32    [version 2 only] HMAC-SHA256 tag over bytes [0, 22+L)

The timestamp is on the sender's clock and is therefore never compared
directly against the monitor's clock — the detectors consume only
``(seq, arrival)`` with the arrival stamped by the *receiver* (the paper's
§II model; DESIGN.md invariant 4 makes the whole pipeline skew-invariant).
The timestamp rides along for observability: the status endpoint reports
per-peer clock offset estimates (arrival − timestamp), which absorb skew
plus one-way delay.

Version 2 appends an HMAC-SHA256 authentication trailer computed over the
entire unsigned prefix (head + sender + body) with a per-sender secret key.
Decoding does *not* verify the tag — key lookup is a policy decision that
lives in the admission layer (``repro.fdaas.admission``), which calls
:func:`verify_tag` with the tenant's key before the datagram reaches the
monitor.  This split keeps all three ingest modes (scalar, batched,
vectorized) byte-for-byte identical on accepted datagrams: they parse the
same ``(sender, seq, timestamp)`` triple whether or not a tag is present.

Decoding is strict: wrong magic, unknown version, truncated datagrams,
datagrams carrying trailing garbage past the length implied by the header,
and non-positive sequence numbers all raise :class:`WireError` (a
``ValueError``), which the monitor counts but never crashes on — a UDP
port is an open mailbox.  Every :class:`WireError` carries a machine
``reason`` code (one of :data:`REJECT_REASONS`) so rejects can be
attributed per reason and per source address in monitor snapshots.

All decoders accept any bytes-like object (``bytes``, ``bytearray``,
``memoryview``) without copying the payload: the zero-copy arena path hands
``memoryview`` slices of a preallocated receive buffer straight to
:func:`decode_fields` / :func:`decode_fields_from`.  Only the sender id
(a handful of bytes) is ever materialized, as the returned ``str``.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import math
import struct
from dataclasses import dataclass

__all__ = [
    "MAGIC",
    "VERSION",
    "AUTH_VERSION",
    "AUTH_TAG_BYTES",
    "HEADER_SIZE",
    "MAX_SENDER_BYTES",
    "MAX_DATAGRAM_BYTES",
    "REJECT_REASONS",
    "Heartbeat",
    "WireError",
    "decode_fields",
    "decode_fields_from",
    "sign_tag",
    "verify_tag",
    "wire_version",
]

MAGIC = b"2WFD"
VERSION = 1
#: Wire version carrying an HMAC-SHA256 authentication trailer.
AUTH_VERSION = 2
#: Size of the version-2 trailer: one HMAC-SHA256 digest.
AUTH_TAG_BYTES = 32

_HEAD = struct.Struct("!4sBB")  # magic, version, sender-id length
_BODY = struct.Struct("!Qd")  # seq, send timestamp

#: Bytes of framing around the sender id (head + seq + timestamp).
HEADER_SIZE = _HEAD.size + _BODY.size
MAX_SENDER_BYTES = 255
#: Largest datagram that can possibly be a valid heartbeat (version 2 with
#: a maximal sender id and the authentication trailer).
MAX_DATAGRAM_BYTES = HEADER_SIZE + MAX_SENDER_BYTES + AUTH_TAG_BYTES

#: Machine-readable reject reasons carried by :class:`WireError.reason`.
#: The monitor aggregates rejects under exactly these keys.
REJECT_REASONS = (
    "too_short",
    "bad_magic",
    "bad_version",
    "truncated",
    "trailing_garbage",
    "empty_sender",
    "bad_utf8",
    "bad_seq",
    "bad_timestamp",
)


class WireError(ValueError):
    """A datagram that is not a valid heartbeat.

    ``reason`` is a stable machine code from :data:`REJECT_REASONS`;
    ``str(exc)`` stays the human-readable message.
    """

    def __init__(self, message: str, reason: str = "malformed") -> None:
        super().__init__(message)
        self.reason = reason


_HEAD_SIZE = _HEAD.size
_BODY_SIZE = _BODY.size
_BODY_UNPACK = _BODY.unpack_from
_ISFINITE = math.isfinite


def decode_fields(data) -> tuple:
    """Parse one datagram into ``(sender, seq, timestamp)`` — no dataclass.

    The batched-ingest hot path: identical strictness to
    :meth:`Heartbeat.decode` (it accepts a payload iff this does, raising
    :class:`WireError` otherwise — a property the fuzz tests assert), but
    skips constructing the frozen dataclass and its ``__post_init__``
    re-validation, which for wire input can only re-check what the header
    already proved (the sender-id length came off the wire, the sequence
    number cannot overflow uint64).

    Accepts versions 1 and 2; for version 2 the authentication trailer is
    length-checked but *not* verified (see module docstring).

    ``data`` may be ``bytes``, ``bytearray``, or ``memoryview``; no copy of
    the payload is taken (the zero-copy arena hands memoryview slices here).
    """
    # The fixed head is read by byte indexing (magic as a slice compare,
    # version and sender-id length as single-byte ints) — one struct
    # unpack for the body instead of two for the whole datagram.  The
    # checks and their order are Heartbeat.decode's exactly.
    n = len(data)
    if n < _HEAD_SIZE:
        raise WireError(f"datagram too short ({n} bytes)", "too_short")
    if data[:4] != MAGIC:
        raise WireError(f"bad magic {bytes(data[:4])!r}", "bad_magic")
    version = data[4]
    if version != VERSION and version != AUTH_VERSION:
        raise WireError(f"unsupported wire version {version}", "bad_version")
    sender_len = data[5]
    expected = _HEAD_SIZE + sender_len + _BODY_SIZE
    if version == AUTH_VERSION:
        expected += AUTH_TAG_BYTES
    if n < expected:
        raise WireError(
            f"datagram truncated: {n} bytes < {expected} implied by header",
            "truncated",
        )
    if n > expected:
        raise WireError(
            f"datagram has {n - expected} trailing garbage byte(s): "
            f"{n} bytes > {expected} implied by header",
            "trailing_garbage",
        )
    if sender_len == 0:
        raise WireError("sender id must be non-empty", "empty_sender")
    try:
        sender = str(data[_HEAD_SIZE : _HEAD_SIZE + sender_len], "utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"sender id is not valid UTF-8: {exc}", "bad_utf8") from None
    seq, timestamp = _BODY_UNPACK(data, _HEAD_SIZE + sender_len)
    if seq < 1:
        raise WireError(f"sequence numbers start at 1, got {seq}", "bad_seq")
    if not _ISFINITE(timestamp):
        raise WireError(f"timestamp must be finite, got {timestamp}", "bad_timestamp")
    return sender, seq, timestamp


def decode_fields_from(data, offset: int, length: int) -> tuple:
    """:func:`decode_fields` over ``data[offset:offset+length]`` — no slice.

    The arena fallback path (no numpy) decodes datagrams in place from the
    preallocated receive buffer; ``Struct.unpack_from`` with offsets means
    the only allocation is the sender-id ``str``.  Check-for-check identical
    to :func:`decode_fields` (the fuzz tests assert agreement).
    """
    if length < _HEAD_SIZE:
        raise WireError(f"datagram too short ({length} bytes)", "too_short")
    if data[offset : offset + 4] != MAGIC:
        raise WireError(
            f"bad magic {bytes(data[offset : offset + 4])!r}", "bad_magic"
        )
    version = data[offset + 4]
    if version != VERSION and version != AUTH_VERSION:
        raise WireError(f"unsupported wire version {version}", "bad_version")
    sender_len = data[offset + 5]
    expected = _HEAD_SIZE + sender_len + _BODY_SIZE
    if version == AUTH_VERSION:
        expected += AUTH_TAG_BYTES
    if length < expected:
        raise WireError(
            f"datagram truncated: {length} bytes < {expected} implied by header",
            "truncated",
        )
    if length > expected:
        raise WireError(
            f"datagram has {length - expected} trailing garbage byte(s): "
            f"{length} bytes > {expected} implied by header",
            "trailing_garbage",
        )
    if sender_len == 0:
        raise WireError("sender id must be non-empty", "empty_sender")
    start = offset + _HEAD_SIZE
    try:
        sender = str(data[start : start + sender_len], "utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"sender id is not valid UTF-8: {exc}", "bad_utf8") from None
    seq, timestamp = _BODY_UNPACK(data, start + sender_len)
    if seq < 1:
        raise WireError(f"sequence numbers start at 1, got {seq}", "bad_seq")
    if not _ISFINITE(timestamp):
        raise WireError(f"timestamp must be finite, got {timestamp}", "bad_timestamp")
    return sender, seq, timestamp


def wire_version(data) -> int:
    """The version byte of a structurally plausible datagram.

    Callers are expected to have decoded ``data`` successfully first; this
    is a cheap accessor for the admission layer's v1-vs-v2 policy branch.
    """
    return data[4]


def sign_tag(unsigned, key: bytes) -> bytes:
    """HMAC-SHA256 tag over an unsigned datagram prefix."""
    return _hmac.new(key, bytes(unsigned), hashlib.sha256).digest()


def verify_tag(data, key: bytes) -> bool:
    """Constant-time verification of a version-2 datagram's trailer.

    ``data`` is the complete datagram (any bytes-like) whose structure has
    already been validated by a decoder; the tag is the final
    :data:`AUTH_TAG_BYTES` bytes, computed over everything before them.
    Uses :func:`hmac.compare_digest`, so timing leaks nothing about how
    many tag bytes matched.
    """
    split = len(data) - AUTH_TAG_BYTES
    if split <= 0:
        return False
    expected = _hmac.new(key, bytes(data[:split]), hashlib.sha256).digest()
    return _hmac.compare_digest(expected, bytes(data[split:]))


@dataclass(frozen=True)
class Heartbeat:
    """One decoded (or to-be-encoded) heartbeat message.

    Parameters
    ----------
    sender:
        The sending process's id (UTF-8, at most 255 bytes encoded).
    seq:
        Sequence number, starting at 1 (Alg. 1 line 2).
    timestamp:
        The sender's monotonic-clock reading at the send instant.
    """

    sender: str
    seq: int
    timestamp: float

    def __post_init__(self) -> None:
        if not self.sender:
            raise WireError("sender id must be non-empty", "empty_sender")
        if len(self.sender.encode("utf-8")) > MAX_SENDER_BYTES:
            raise WireError(f"sender id exceeds {MAX_SENDER_BYTES} UTF-8 bytes")
        if self.seq < 1:
            raise WireError(f"sequence numbers start at 1, got {self.seq}", "bad_seq")
        if self.seq > 0xFFFFFFFFFFFFFFFF:
            raise WireError(f"sequence number {self.seq} overflows uint64")
        if not math.isfinite(self.timestamp):
            raise WireError(
                f"timestamp must be finite, got {self.timestamp}", "bad_timestamp"
            )

    def encode(self) -> bytes:
        """Serialize to one version-1 (unauthenticated) datagram payload."""
        sender = self.sender.encode("utf-8")
        return (
            _HEAD.pack(MAGIC, VERSION, len(sender))
            + sender
            + _BODY.pack(self.seq, self.timestamp)
        )

    def encode_signed(self, key: bytes) -> bytes:
        """Serialize to one version-2 datagram with an HMAC-SHA256 trailer.

        The tag covers the entire unsigned prefix, so any bit flip in the
        head, sender id, sequence number, or timestamp invalidates it.
        """
        sender = self.sender.encode("utf-8")
        unsigned = (
            _HEAD.pack(MAGIC, AUTH_VERSION, len(sender))
            + sender
            + _BODY.pack(self.seq, self.timestamp)
        )
        return unsigned + sign_tag(unsigned, key)

    @classmethod
    def decode(cls, data) -> "Heartbeat":
        """Parse one datagram payload; raise :class:`WireError` if invalid.

        ``data`` may be ``bytes``, ``bytearray``, or ``memoryview``; only
        the sender id is materialized (as the returned ``str``).  Accepts
        versions 1 and 2; the version-2 tag is length-checked, not verified.
        """
        n = len(data)
        if n < _HEAD.size:
            raise WireError(f"datagram too short ({n} bytes)", "too_short")
        magic, version, sender_len = _HEAD.unpack_from(data)
        if magic != MAGIC:
            raise WireError(f"bad magic {magic!r}", "bad_magic")
        if version != VERSION and version != AUTH_VERSION:
            raise WireError(f"unsupported wire version {version}", "bad_version")
        expected = _HEAD.size + sender_len + _BODY.size
        if version == AUTH_VERSION:
            expected += AUTH_TAG_BYTES
        if n < expected:
            raise WireError(
                f"datagram truncated: {n} bytes < {expected} implied by header",
                "truncated",
            )
        if n > expected:
            raise WireError(
                f"datagram has {n - expected} trailing garbage byte(s): "
                f"{n} bytes > {expected} implied by header",
                "trailing_garbage",
            )
        try:
            sender = str(data[_HEAD.size : _HEAD.size + sender_len], "utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(
                f"sender id is not valid UTF-8: {exc}", "bad_utf8"
            ) from None
        seq, timestamp = _BODY.unpack_from(data, _HEAD.size + sender_len)
        return cls(sender=sender, seq=seq, timestamp=timestamp)

    @property
    def wire_size(self) -> int:
        """Encoded (version 1) size in bytes."""
        return HEADER_SIZE + len(self.sender.encode("utf-8"))
