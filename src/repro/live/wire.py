"""Heartbeat wire format: one UDP datagram per heartbeat.

Layout (network byte order)::

    offset  size  field
    0       4     magic  b"2WFD"
    4       1     version (currently 1)
    5       1     sender-id length L (1..255)
    6       L     sender id, UTF-8
    6+L     8     sequence number (uint64, starts at 1)
    14+L    8     send timestamp (float64): the *sender's* monotonic clock
                  at the send instant

The timestamp is on the sender's clock and is therefore never compared
directly against the monitor's clock — the detectors consume only
``(seq, arrival)`` with the arrival stamped by the *receiver* (the paper's
§II model; DESIGN.md invariant 4 makes the whole pipeline skew-invariant).
The timestamp rides along for observability: the status endpoint reports
per-peer clock offset estimates (arrival − timestamp), which absorb skew
plus one-way delay.

Decoding is strict: wrong magic, unknown version, truncated datagrams,
datagrams carrying trailing garbage past the length implied by the header,
and non-positive sequence numbers all raise :class:`WireError` (a
``ValueError``), which the monitor counts but never crashes on — a UDP
port is an open mailbox.

All decoders accept any bytes-like object (``bytes``, ``bytearray``,
``memoryview``) without copying the payload: the zero-copy arena path hands
``memoryview`` slices of a preallocated receive buffer straight to
:func:`decode_fields` / :func:`decode_fields_from`.  Only the sender id
(a handful of bytes) is ever materialized, as the returned ``str``.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

__all__ = [
    "MAGIC",
    "VERSION",
    "HEADER_SIZE",
    "MAX_SENDER_BYTES",
    "MAX_DATAGRAM_BYTES",
    "Heartbeat",
    "WireError",
    "decode_fields",
    "decode_fields_from",
]

MAGIC = b"2WFD"
VERSION = 1

_HEAD = struct.Struct("!4sBB")  # magic, version, sender-id length
_BODY = struct.Struct("!Qd")  # seq, send timestamp

#: Bytes of framing around the sender id (head + seq + timestamp).
HEADER_SIZE = _HEAD.size + _BODY.size
MAX_SENDER_BYTES = 255
#: Largest datagram that can possibly be a valid heartbeat.
MAX_DATAGRAM_BYTES = HEADER_SIZE + MAX_SENDER_BYTES


class WireError(ValueError):
    """A datagram that is not a valid heartbeat."""


_HEAD_SIZE = _HEAD.size
_BODY_SIZE = _BODY.size
_BODY_UNPACK = _BODY.unpack_from
_ISFINITE = math.isfinite


def decode_fields(data) -> tuple:
    """Parse one datagram into ``(sender, seq, timestamp)`` — no dataclass.

    The batched-ingest hot path: identical strictness to
    :meth:`Heartbeat.decode` (it accepts a payload iff this does, raising
    :class:`WireError` otherwise — a property the fuzz tests assert), but
    skips constructing the frozen dataclass and its ``__post_init__``
    re-validation, which for wire input can only re-check what the header
    already proved (the sender-id length came off the wire, the sequence
    number cannot overflow uint64).

    ``data`` may be ``bytes``, ``bytearray``, or ``memoryview``; no copy of
    the payload is taken (the zero-copy arena hands memoryview slices here).
    """
    # The fixed head is read by byte indexing (magic as a slice compare,
    # version and sender-id length as single-byte ints) — one struct
    # unpack for the body instead of two for the whole datagram.  The
    # checks and their order are Heartbeat.decode's exactly.
    n = len(data)
    if n < _HEAD_SIZE:
        raise WireError(f"datagram too short ({n} bytes)")
    if data[:4] != MAGIC:
        raise WireError(f"bad magic {bytes(data[:4])!r}")
    version = data[4]
    if version != VERSION:
        raise WireError(f"unsupported wire version {version}")
    sender_len = data[5]
    expected = _HEAD_SIZE + sender_len + _BODY_SIZE
    if n < expected:
        raise WireError(f"datagram truncated: {n} bytes < {expected} implied by header")
    if n > expected:
        raise WireError(
            f"datagram has {n - expected} trailing garbage byte(s): "
            f"{n} bytes > {expected} implied by header"
        )
    if sender_len == 0:
        raise WireError("sender id must be non-empty")
    try:
        sender = str(data[_HEAD_SIZE : _HEAD_SIZE + sender_len], "utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"sender id is not valid UTF-8: {exc}") from None
    seq, timestamp = _BODY_UNPACK(data, _HEAD_SIZE + sender_len)
    if seq < 1:
        raise WireError(f"sequence numbers start at 1, got {seq}")
    if not _ISFINITE(timestamp):
        raise WireError(f"timestamp must be finite, got {timestamp}")
    return sender, seq, timestamp


def decode_fields_from(data, offset: int, length: int) -> tuple:
    """:func:`decode_fields` over ``data[offset:offset+length]`` — no slice.

    The arena fallback path (no numpy) decodes datagrams in place from the
    preallocated receive buffer; ``Struct.unpack_from`` with offsets means
    the only allocation is the sender-id ``str``.  Check-for-check identical
    to :func:`decode_fields` (the fuzz tests assert agreement).
    """
    if length < _HEAD_SIZE:
        raise WireError(f"datagram too short ({length} bytes)")
    if data[offset : offset + 4] != MAGIC:
        raise WireError(f"bad magic {bytes(data[offset : offset + 4])!r}")
    version = data[offset + 4]
    if version != VERSION:
        raise WireError(f"unsupported wire version {version}")
    sender_len = data[offset + 5]
    expected = _HEAD_SIZE + sender_len + _BODY_SIZE
    if length < expected:
        raise WireError(
            f"datagram truncated: {length} bytes < {expected} implied by header"
        )
    if length > expected:
        raise WireError(
            f"datagram has {length - expected} trailing garbage byte(s): "
            f"{length} bytes > {expected} implied by header"
        )
    if sender_len == 0:
        raise WireError("sender id must be non-empty")
    start = offset + _HEAD_SIZE
    try:
        sender = str(data[start : start + sender_len], "utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"sender id is not valid UTF-8: {exc}") from None
    seq, timestamp = _BODY_UNPACK(data, start + sender_len)
    if seq < 1:
        raise WireError(f"sequence numbers start at 1, got {seq}")
    if not _ISFINITE(timestamp):
        raise WireError(f"timestamp must be finite, got {timestamp}")
    return sender, seq, timestamp


@dataclass(frozen=True)
class Heartbeat:
    """One decoded (or to-be-encoded) heartbeat message.

    Parameters
    ----------
    sender:
        The sending process's id (UTF-8, at most 255 bytes encoded).
    seq:
        Sequence number, starting at 1 (Alg. 1 line 2).
    timestamp:
        The sender's monotonic-clock reading at the send instant.
    """

    sender: str
    seq: int
    timestamp: float

    def __post_init__(self) -> None:
        if not self.sender:
            raise WireError("sender id must be non-empty")
        if len(self.sender.encode("utf-8")) > MAX_SENDER_BYTES:
            raise WireError(f"sender id exceeds {MAX_SENDER_BYTES} UTF-8 bytes")
        if self.seq < 1:
            raise WireError(f"sequence numbers start at 1, got {self.seq}")
        if self.seq > 0xFFFFFFFFFFFFFFFF:
            raise WireError(f"sequence number {self.seq} overflows uint64")
        if not math.isfinite(self.timestamp):
            raise WireError(f"timestamp must be finite, got {self.timestamp}")

    def encode(self) -> bytes:
        """Serialize to one datagram payload."""
        sender = self.sender.encode("utf-8")
        return (
            _HEAD.pack(MAGIC, VERSION, len(sender))
            + sender
            + _BODY.pack(self.seq, self.timestamp)
        )

    @classmethod
    def decode(cls, data) -> "Heartbeat":
        """Parse one datagram payload; raise :class:`WireError` if invalid.

        ``data`` may be ``bytes``, ``bytearray``, or ``memoryview``; only
        the sender id is materialized (as the returned ``str``).
        """
        n = len(data)
        if n < _HEAD.size:
            raise WireError(f"datagram too short ({n} bytes)")
        magic, version, sender_len = _HEAD.unpack_from(data)
        if magic != MAGIC:
            raise WireError(f"bad magic {magic!r}")
        if version != VERSION:
            raise WireError(f"unsupported wire version {version}")
        expected = _HEAD.size + sender_len + _BODY.size
        if n < expected:
            raise WireError(
                f"datagram truncated: {n} bytes < {expected} implied by header"
            )
        if n > expected:
            raise WireError(
                f"datagram has {n - expected} trailing garbage byte(s): "
                f"{n} bytes > {expected} implied by header"
            )
        try:
            sender = str(data[_HEAD.size : _HEAD.size + sender_len], "utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"sender id is not valid UTF-8: {exc}") from None
        seq, timestamp = _BODY.unpack_from(data, _HEAD.size + sender_len)
        return cls(sender=sender, seq=seq, timestamp=timestamp)

    @property
    def wire_size(self) -> int:
        """Encoded size in bytes."""
        return HEADER_SIZE + len(self.sender.encode("utf-8"))
