"""Vectorized bulk-ingest engines for the live monitor hot path.

The scalar and batched ingest paths pay a Python-level window push and
deadline computation per (accepted heartbeat × detector).  This module
lifts both onto columnar state: one numpy array per window statistic with
one row per peer, so a whole socket drain updates every touched peer's
estimation state and freshness points in a handful of numpy kernels.

Equivalence contract (the repo-wide rule: every fast path has a reference
path it is bitwise-identical to):

* The columnar :class:`_WindowBank` reproduces
  :class:`repro.core.windows.SlidingWindow` operation-for-operation — same
  baseline anchoring, same eviction order (``(sum - old) + rel``), same
  rebuild cadence, and the rebuild itself reduces with ``ndarray.sum`` on
  the same contiguous relative values, so even numpy's pairwise summation
  matches the scalar window's own rebuild bit for bit.
* Detector freshness points evaluate the detectors' ``_deadline`` bodies
  verbatim (same association order per expression), vectorized across the
  peers of one sub-batch.
* Transitions always go through the per-detector
  :class:`repro.core.freshness.FreshnessOutput` objects — only the
  no-transition steady-state case (trust held, deadline unexpired, new
  deadline in the future: `FreshnessOutput.on_heartbeat` case (a)) is
  applied columnar, exactly as the batched path inlines it per datagram.
  Event streams, snapshots and QoS counters are therefore bitwise
  identical to the scalar reference; the property suite in
  ``tests/live/test_vectorized_ingest.py`` asserts it.

Batches are split into *sub-batches* of rows with pairwise-distinct peers
(a peer appearing twice ends the sub-batch), so within one kernel
application every row updates an independent state row; rows of one peer
still apply in arrival order across sub-batches.

Known, deliberate deviations (documented, not observable through events,
snapshots, QoS counters, or scheduling behavior):

* The deadline heap receives one entry per (batch × touched peer) — the
  final per-peer minimum — instead of one per accepted heartbeat.  Lazy
  deletion makes intermediate entries unobservable (``sched`` decides),
  so poll behavior is identical; only the ``heap_size`` diagnostic
  differs.
* Heartbeat *trace* records (when a tracer is attached) are emitted
  per sub-batch stage rather than strictly interleaved per datagram; the
  records themselves carry the same fields and timestamps.

When numpy is unavailable the module degrades to
:class:`ArrayIngestEngine`: the same columnar layout held in
``array('d')`` columns with per-row Python arithmetic — still zero-copy
from the arena, still one code path for callers.  Its one divergence:
window rebuilds reduce left-to-right (pure Python cannot reproduce
numpy's SIMD pairwise partials), so bitwise equivalence to the numpy
reference holds up to the first rebuild of a *full* window (``capacity``
pushes); the fallback tests stay under that horizon.

Three detector families keep state with no columnar form — the adaptive
margin controller (a feedback loop over mistake-rate estimates), the
histogram quantile sketch (a sorted list), and nothing at all
(``chen-sync``) — and their kernels handle it honestly: ``chen-sync`` is a
pure arithmetic column over the decoded sequence numbers; ``histogram``
batches its sketch inserts through one inlined per-row update
(:func:`_hist_update_deadline`, the detector's ``_update`` + ``_deadline``
bodies verbatim) with the sketch living in the detector object, so it is
always current on both the object and columnar paths; ``adaptive-2w-fd``
evaluates the 2W-FD max-mean column kernel with a per-row margin gathered
from each peer's :class:`AdaptiveMarginController` after feeding it the
row (controller state is carried in the detector objects across
sub-batches, preserving per-peer arrival order).

For the adaptive ingest mode (:mod:`repro.live.adaptive`), :meth:`adopt`
and :meth:`export` migrate per-peer estimation state between the scalar
``SharedArrivalState`` objects and the columnar banks with field-for-field
copies (ring buffer, cursors, baseline, running sums, rebuild phase — no
arithmetic), so a drain can run on either path and continue bit-for-bit
where the other stopped.
"""

from __future__ import annotations

import heapq
import math
import time
from array import array
from bisect import bisect_left, insort
from typing import Dict, List, Mapping, Tuple

try:  # pragma: no cover - exercised via the _HAVE_NUMPY monkeypatch
    import numpy as np

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None
    _HAVE_NUMPY = False

from repro.core.twofd import MultiWindowFailureDetector
from repro.detectors.accrual import PhiAccrualFailureDetector
from repro.detectors.adaptive import AdaptiveTwoWindowFailureDetector
from repro.detectors.bertier import BertierFailureDetector
from repro.detectors.chen import ChenFailureDetector
from repro.detectors.chen_sync import SynchronizedChenFailureDetector
from repro.detectors.exponential import EDFailureDetector
from repro.detectors.histogram import HistogramAccrualFailureDetector
from repro.detectors.timeout import FixedTimeoutFailureDetector
from repro.live.wire import (
    AUTH_TAG_BYTES,
    AUTH_VERSION,
    MAGIC,
    VERSION,
    WireError,
    decode_fields,
    decode_fields_from,
)

__all__ = [
    "VECTOR_SUPPORTED_KINDS",
    "VectorizedIngestEngine",
    "ArrayIngestEngine",
    "build_engine",
]

_HEAD_SIZE = 6
_BODY_SIZE = 16
_MAX_U64 = 0xFFFFFFFFFFFFFFFF

#: Detector classes the vectorized kernels cover — the full registry.
#: Window-expressible estimation runs fully columnar; ``adaptive-2w-fd``
#: and ``histogram`` carry their non-columnar state (margin controller,
#: quantile sketch) in the detector objects with per-row updates inside
#: the batch kernels, and ``chen-sync`` is pure arithmetic over the
#: decoded sequence column.  Only detector classes outside this registry
#: raise at construction under ``ingest_mode="vectorized"``.
VECTOR_SUPPORTED_KINDS = (
    MultiWindowFailureDetector,
    ChenFailureDetector,
    PhiAccrualFailureDetector,
    EDFailureDetector,
    BertierFailureDetector,
    FixedTimeoutFailureDetector,
    AdaptiveTwoWindowFailureDetector,
    SynchronizedChenFailureDetector,
    HistogramAccrualFailureDetector,
)


class _DetectorSpec:
    """Closed-form description of one configured detector's deadline rule."""

    __slots__ = (
        "name",
        "kind",
        "sizes",
        "margin",
        "size",
        "quantile",
        "min_std",
        "warmup_std",
        "factor",
        "gamma",
        "beta",
        "phi",
        "timeout",
        "offset",
        "shift",
    )

    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind


def _build_specs(
    probe_detectors: Mapping[str, object],
) -> List[_DetectorSpec]:
    """Extract per-detector kernel parameters from probe instances.

    Raises ``ValueError`` for detectors without a vectorized form, naming
    the offender — the fail-fast construction-time contract.
    """
    specs: List[_DetectorSpec] = []
    for name, det in probe_detectors.items():
        if isinstance(det, AdaptiveTwoWindowFailureDetector):
            spec = _DetectorSpec(name, "adaptive")
            spec.sizes = tuple(det.window_sizes)
        elif isinstance(det, SynchronizedChenFailureDetector):
            spec = _DetectorSpec(name, "chensync")
            spec.offset = det.clock_offset
            spec.shift = det.shift
        elif isinstance(det, HistogramAccrualFailureDetector):
            spec = _DetectorSpec(name, "hist")
            spec.size = det.window_size
            spec.quantile = det.threshold
            spec.factor = det._factor
        elif isinstance(det, MultiWindowFailureDetector):
            spec = _DetectorSpec(name, "maxmean")
            spec.sizes = tuple(det.window_sizes)
            spec.margin = det.safety_margin
        elif isinstance(det, ChenFailureDetector):
            spec = _DetectorSpec(name, "maxmean")
            spec.sizes = (det.window_size,)
            spec.margin = det.safety_margin
        elif isinstance(det, PhiAccrualFailureDetector):
            spec = _DetectorSpec(name, "phi")
            spec.size = det.window_size
            spec.quantile = det._quantile
            spec.min_std = det._min_std
            spec.warmup_std = det._warmup_std
        elif isinstance(det, EDFailureDetector):
            spec = _DetectorSpec(name, "ed")
            spec.size = det.window_size
            spec.factor = det._factor
        elif isinstance(det, BertierFailureDetector):
            spec = _DetectorSpec(name, "bertier")
            spec.size = det.window_size
            spec.gamma = det._gamma
            spec.beta = det._beta
            spec.phi = det._phi
        elif isinstance(det, FixedTimeoutFailureDetector):
            spec = _DetectorSpec(name, "timeout")
            spec.timeout = det.timeout
        else:
            raise ValueError(
                f"detector {name!r} ({type(det).__name__}) has no vectorized "
                f"ingest kernel (every registry detector — 2w-fd, mw-fd, chen,"
                f" chen-sync, adaptive-2w-fd, phi, ed, bertier, histogram,"
                f" fixed-timeout — does; custom detector classes need"
                f" ingest_mode='batched' or 'scalar')"
            )
        specs.append(spec)
    return specs


def _hist_update_deadline(det, arrival, cap, threshold, factor, interval):
    """``HistogramAccrualFailureDetector._update`` + ``_deadline`` for one
    accepted row, inlined over the detector's own sketch (deque + sorted
    list).  The sketch stays object-authoritative on every ingest path, so
    batched↔columnar switches need no histogram state migration."""
    srt = det._sorted
    pa = det._prev_arrival
    if pa is not None:
        gap = arrival - pa
        fifo = det._fifo
        if len(fifo) == cap:
            oldest = fifo.popleft()
            srt.pop(bisect_left(srt, oldest))
        fifo.append(gap)
        insort(srt, gap)
    det._prev_arrival = arrival
    n = len(srt)
    if n:
        rank = math.ceil(threshold * n) - 1
        q = srt[rank] if rank > 0 else srt[0]
    else:
        q = interval
    return arrival + factor * q


# ======================================================================
# numpy engine
# ======================================================================


class _WindowBank:
    """Columnar :class:`~repro.core.windows.SlidingWindow`: one row per peer.

    Field-for-field the scalar window's state (ring buffer, count, next
    slot, baseline, relative running sum/sumsq, pushes-since-rebuild), held
    as arrays indexed by peer slot.  ``push`` applies the scalar push body
    to a set of *distinct* peer rows at once; the periodic exact rebuild
    runs per row (it is O(capacity) either way) using ``ndarray.sum`` on
    the oldest-first contiguous relative values — the very reduction the
    scalar window's ``_rebuild`` performs, so the recomputed sums carry
    identical bits.
    """

    __slots__ = ("capacity", "buf", "count", "nxt", "baseline", "sum", "sumsq", "psr")

    def __init__(self, capacity: int, slots: int):
        self.capacity = capacity
        self.buf = np.zeros((slots, capacity), dtype=np.float64)
        self.count = np.zeros(slots, dtype=np.int64)
        self.nxt = np.zeros(slots, dtype=np.int64)
        self.baseline = np.zeros(slots, dtype=np.float64)
        self.sum = np.zeros(slots, dtype=np.float64)
        self.sumsq = np.zeros(slots, dtype=np.float64)
        self.psr = np.zeros(slots, dtype=np.int64)

    def grow(self, slots: int) -> None:
        old = self.buf.shape[0]
        if slots <= old:
            return
        buf = np.zeros((slots, self.capacity), dtype=np.float64)
        buf[:old] = self.buf
        self.buf = buf
        for field in ("count", "nxt", "psr"):
            a = np.zeros(slots, dtype=np.int64)
            a[:old] = getattr(self, field)
            setattr(self, field, a)
        for field in ("baseline", "sum", "sumsq"):
            a = np.zeros(slots, dtype=np.float64)
            a[:old] = getattr(self, field)
            setattr(self, field, a)

    def mean(self, idx) -> "np.ndarray":
        """``baseline + sum / count`` for non-empty rows (callers guarantee)."""
        return self.baseline[idx] + self.sum[idx] / self.count[idx]

    def pre_mean(self, idx) -> "np.ndarray":
        """The mean before the pending push; NaN encodes the scalar None."""
        c = self.count[idx].astype(np.float64)
        has = c > 0.0
        q = np.divide(self.sum[idx], c, out=np.zeros_like(c), where=has)
        return np.where(has, self.baseline[idx] + q, np.nan)

    def push(self, idx, values) -> None:
        """Scalar ``SlidingWindow.push``, row-parallel over distinct rows."""
        cap = self.capacity
        if cap == 1:
            self.buf[idx, 0] = values
            self.baseline[idx] = values
            self.sum[idx] = 0.0
            self.sumsq[idx] = 0.0
            self.count[idx] = 1
            self.psr[idx] = 0
            return
        count = self.count[idx]
        first = count == 0
        if first.any():
            self.baseline[idx[first]] = values[first]
        base = self.baseline[idx]
        rel = values - base
        nxt = self.nxt[idx]
        s = self.sum[idx]
        ss = self.sumsq[idx]
        full = count == cap
        if full.any():
            old = self.buf[idx[full], nxt[full]] - base[full]
            s[full] -= old
            ss[full] -= old * old
        self.count[idx] = count + ~full
        self.buf[idx, nxt] = values
        self.sum[idx] = s + rel
        self.sumsq[idx] = ss + rel * rel
        nxt = nxt + 1
        nxt[nxt == cap] = 0
        self.nxt[idx] = nxt
        psr = self.psr[idx] + 1
        self.psr[idx] = psr
        rebuild = psr >= cap
        if rebuild.any():
            for p in idx[rebuild].tolist():
                self._rebuild(p)

    def _rebuild(self, p: int) -> None:
        cap = self.capacity
        c = int(self.count[p])
        nx = int(self.nxt[p])
        if c < cap:
            values = self.buf[p, :c]
        else:
            values = np.concatenate((self.buf[p, nx:], self.buf[p, :nx]))
        b = float(values[0])
        rel = values - b
        self.baseline[p] = b
        self.sum[p] = float(rel.sum())
        self.sumsq[p] = float((rel * rel).sum())
        self.psr[p] = 0

    # -- adaptive-mode state migration: field-for-field row copies ------
    def load_row(self, p: int, win) -> None:
        """Copy a scalar ``SlidingWindow``'s state into row ``p`` verbatim
        (no arithmetic, so the columnar continuation is bit-identical)."""
        self.buf[p, :] = win._buffer
        self.count[p] = win._count
        self.nxt[p] = win._next
        self.baseline[p] = win._baseline
        self.sum[p] = win._sum
        self.sumsq[p] = win._sumsq
        self.psr[p] = win._pushes_since_rebuild

    def store_row(self, p: int, win) -> None:
        """Copy row ``p`` back into a scalar ``SlidingWindow`` verbatim."""
        win._buffer[:] = self.buf[p].tolist()
        win._count = int(self.count[p])
        win._next = int(self.nxt[p])
        win._baseline = float(self.baseline[p])
        win._sum = float(self.sum[p])
        win._sumsq = float(self.sumsq[p])
        win._pushes_since_rebuild = int(self.psr[p])


class VectorizedIngestEngine:
    """Columnar per-batch ingest: decode, estimate and update freshness
    points for a whole drain with numpy kernels.

    Owned by a :class:`repro.live.monitor.LiveMonitor` constructed with
    ``ingest_mode="vectorized"``; the columnar arrays are the authority
    for window/estimator state, per-peer counters and freshness-point
    mirrors, while transitions (and ``trusting``) always live in the
    per-detector :class:`FreshnessOutput` objects.  ``sync_peer`` /
    ``sync_all`` lazily write the columnar state back into the detector
    objects before anything object-side reads them (polls, snapshots,
    timelines, metric scrapes); ``writeback_output`` mirrors
    object-side mutations (``advance_to``) back into the columns.
    """

    is_columnar = True

    #: Original batch row indices the last ingest call rejected (wire- or
    #: UTF-8-invalid) — the monitor's reject-attribution hook.
    last_bad_rows: "List[int] | tuple" = ()

    #: Per-stage seconds accumulator (``{"decode": s, "estimate": s,
    #: "heap": s}``) the monitor sets for one *sampled* drain when a
    #: :class:`repro.obs.diag.PipelineTimer` is attached, and ``None``
    #: otherwise — unsampled drains pay one attribute read per batch.
    stage_acc: "Dict[str, float] | None" = None

    def __init__(self, monitor, probe_detectors: Mapping[str, object]):
        self._mon = monitor
        self._interval = float(monitor.interval)
        self._specs = _build_specs(probe_detectors)
        self._D = len(self._specs)
        est_sizes: set = set()
        gap_sizes: set = set()
        pre_sizes: set = set()
        for spec in self._specs:
            if spec.kind in ("maxmean", "adaptive"):
                est_sizes.update(spec.sizes)
            elif spec.kind == "bertier":
                est_sizes.add(spec.size)
                pre_sizes.add(spec.size)
            elif spec.kind in ("phi", "ed"):
                gap_sizes.add(spec.size)
        slots = 64
        self._slots = slots
        self._est: Dict[int, _WindowBank] = {
            size: _WindowBank(size, slots) for size in sorted(est_sizes)
        }
        self._gaps: Dict[int, _WindowBank] = {
            size: _WindowBank(size, slots) for size in sorted(gap_sizes)
        }
        self._pre_sizes = tuple(sorted(pre_sizes))
        self.largest = np.zeros(slots, dtype=np.uint64)
        self.prev_arr = np.full(slots, np.nan)
        self.last_arr = np.full(slots, np.nan)
        self.last_ts = np.full(slots, np.nan)
        self.ndg = np.zeros(slots, dtype=np.int64)
        self.nacc = np.zeros(slots, dtype=np.int64)
        self.nstale = np.zeros(slots, dtype=np.int64)
        self.dirty = np.zeros(slots, dtype=bool)
        # Per-detector mirrors: deadline == both det._current_deadline and
        # output.deadline (provably equal after every operation), levt ==
        # output.last_event_time, trust mirrors output.trusting.  NaN
        # encodes the scalar None.
        self.deadline = [np.full(slots, np.nan) for _ in range(self._D)]
        self.levt = [np.full(slots, np.nan) for _ in range(self._D)]
        self.trust = [np.zeros(slots, dtype=bool) for _ in range(self._D)]
        self._bertier: List[Tuple[int, _DetectorSpec]] = [
            (j, s) for j, s in enumerate(self._specs) if s.kind == "bertier"
        ]
        self.b_delay = {j: np.zeros(slots) for j, _ in self._bertier}
        self.b_var = {j: np.zeros(slots) for j, _ in self._bertier}
        # Sub-batch assembly state (plain Python: the per-row residue).
        self._sender_cache: Dict[bytes, int] = {}
        self._touch: List[int] = [-1] * slots
        self._serial = 0
        self._touched: List[int] = []
        #: Distinct peers the last finished batch touched — the adaptive
        #: controller's observed-fan-in signal for columnar drains.
        self.last_fanin = 0
        #: Slot indices whose *entry-visible* state the last finished
        #: batch changed — the monitor's delta-generation stamp set.  On
        #: this engine that is the accepted set: a stale-only columnar
        #: bump (ndg/nstale) stays invisible to snapshots until the next
        #: dirty-driven sync, so stamping it would mark entries that have
        #: not observably changed.
        self.last_touched: List[int] = []

    # ------------------------------------------------------------------
    def _ensure_slots(self, n: int) -> None:
        if n <= self._slots:
            return
        slots = max(n, self._slots * 2)
        for bank in self._est.values():
            bank.grow(slots)
        for bank in self._gaps.values():
            bank.grow(slots)

        def grown(a, fill, dtype):
            out = np.full(slots, fill, dtype=dtype)
            out[: a.shape[0]] = a
            return out

        self.largest = grown(self.largest, 0, np.uint64)
        self.prev_arr = grown(self.prev_arr, np.nan, np.float64)
        self.last_arr = grown(self.last_arr, np.nan, np.float64)
        self.last_ts = grown(self.last_ts, np.nan, np.float64)
        self.ndg = grown(self.ndg, 0, np.int64)
        self.nacc = grown(self.nacc, 0, np.int64)
        self.nstale = grown(self.nstale, 0, np.int64)
        self.dirty = grown(self.dirty, False, bool)
        self.deadline = [grown(a, np.nan, np.float64) for a in self.deadline]
        self.levt = [grown(a, np.nan, np.float64) for a in self.levt]
        self.trust = [grown(a, False, bool) for a in self.trust]
        self.b_delay = {j: grown(a, 0.0, np.float64) for j, a in self.b_delay.items()}
        self.b_var = {j: grown(a, 0.0, np.float64) for j, a in self.b_var.items()}
        self._touch.extend([-1] * (slots - len(self._touch)))
        self._slots = slots

    # ------------------------------------------------------------------
    # Columnar wire decode
    # ------------------------------------------------------------------
    _MAGIC_BYTES = tuple(MAGIC)
    _BODY_DTYPE = None  # set below (numpy may be absent at import)

    def _decode(self, buf, offs, lens):
        """Columnar :func:`repro.live.wire.decode_fields` over slot slices.

        Returns ``(oidx, soff, slen, seq, ts, n_bad)``: original row
        indices of wire-valid datagrams, their sender-id byte ranges, and
        native seq/timestamp columns.  Validity check for check the scalar
        decoder's (magic, version 1 or 2, exact length — truncation and
        trailing garbage both fail it; version 2 implies the HMAC trailer's
        extra bytes — sender non-empty, seq ≥ 1, finite timestamp); UTF-8
        of the sender id is established later, on the cached sender-bytes
        lookup.  ``n_bad`` counts rows rejected here; their original row
        indices land in :attr:`last_bad_rows` via ``_ingest_columnar`` so
        the monitor can attribute a reject reason per row.
        """
        n = int(lens.shape[0])
        i0 = np.flatnonzero(lens >= _HEAD_SIZE)
        if i0.size:
            o = offs[i0]
            head = buf[o[:, None] + np.arange(_HEAD_SIZE)]
            m = self._MAGIC_BYTES
            version = head[:, 4]
            good = (
                (head[:, 0] == m[0])
                & (head[:, 1] == m[1])
                & (head[:, 2] == m[2])
                & (head[:, 3] == m[3])
                & ((version == VERSION) | (version == AUTH_VERSION))
            )
            slen = head[:, 5].astype(np.int64)
            expected = _HEAD_SIZE + slen + _BODY_SIZE
            expected = expected + np.where(
                version == AUTH_VERSION, AUTH_TAG_BYTES, 0
            )
            good &= lens[i0] == expected
            good &= slen > 0
            i1 = i0[good]
        else:
            i1 = i0
        if i1.size:
            slen = slen[good]
            body_off = offs[i1] + _HEAD_SIZE + slen
            body = np.ascontiguousarray(buf[body_off[:, None] + np.arange(_BODY_SIZE)])
            rec = body.view(self._BODY_DTYPE).ravel()
            seq = rec["seq"].astype(np.uint64)
            ts = rec["ts"].astype(np.float64)
            ok = (seq >= 1) & np.isfinite(ts)
            oidx = i1[ok]
            soff = offs[oidx] + _HEAD_SIZE
            slen = slen[ok]
            seq = seq[ok]
            ts = ts[ok]
        else:
            oidx = i1
            soff = slen = seq = ts = i1
        return oidx, soff, slen, seq, ts, n - int(oidx.shape[0])

    # ------------------------------------------------------------------
    # Batch entry points
    # ------------------------------------------------------------------
    def ingest_datagrams(self, datagrams, arrivals, now):
        """Vectorize a list-of-datagrams batch (the legacy batched input).

        One ``bytes.join`` materializes the batch contiguously (the arena
        path skips even that); everything downstream is columnar.
        """
        n = len(datagrams)
        if n == 0:
            self.last_bad_rows = []
            return 0, 0, 0, 0, None
        raw = b"".join(datagrams)
        buf = np.frombuffer(raw, dtype=np.uint8)
        lens = np.fromiter(map(len, datagrams), np.int64, n)
        offs = np.zeros(n, dtype=np.int64)
        np.cumsum(lens[:-1], out=offs[1:])
        arrv = None
        if arrivals is not None:
            arrv = np.asarray(
                arrivals if isinstance(arrivals, (list, tuple)) else list(arrivals),
                dtype=np.float64,
            )
        return self._ingest_columnar(buf, offs, lens, arrv, now)

    def ingest_arena(self, arena, now):
        """Vectorize the last drain of a :class:`DatagramArena` — zero-copy:
        the numpy view aliases the arena's ``bytearray``; only sender ids
        (for the peer lookup) are ever materialized."""
        k = arena.last_fill
        if k == 0:
            self.last_bad_rows = []
            return 0, 0, 0, 0, None
        buf = np.frombuffer(arena.buffer, dtype=np.uint8)
        offs = np.arange(k, dtype=np.int64) * arena.slot_bytes
        lens = np.fromiter(arena.lengths, np.int64, k)
        return self._ingest_columnar(buf, offs, lens, None, now)

    def _ingest_columnar(self, buf, offs, lens, arrivals, now):
        """Shared core: decode → sub-batch assembly → kernels.

        Returns ``(n_decoded, n_accepted, n_stale, n_bad, last_arrival)``.
        """
        acc = self.stage_acc
        if acc is not None:
            t0 = time.perf_counter()
        oidx, soff, slen, seq, ts, n_bad_wire = self._decode(buf, offs, lens)
        if acc is not None:
            t1 = time.perf_counter()
            acc["decode"] += t1 - t0
        k = int(oidx.shape[0])
        # Rows the columnar decode rejected, by original batch index — the
        # monitor re-decodes just these through the scalar path to attribute
        # a per-reason (and per-address) reject count.  Rejects are rare, so
        # the scalar re-decode never touches the hot path.
        if n_bad_wire:
            keep = np.zeros(int(lens.shape[0]), dtype=bool)
            keep[oidx] = True
            bad_rows_orig = np.flatnonzero(~keep).tolist()
        else:
            bad_rows_orig = []
        self.last_bad_rows = bad_rows_orig
        if k == 0:
            return 0, 0, 0, n_bad_wire, None
        arr = arrivals[oidx] if arrivals is not None else None
        arr_l = arr.tolist() if arr is not None else None
        soff_l = soff.tolist()
        slen_l = slen.tolist()
        seq_l = seq.tolist() if self._mon._tracer is not None else None
        cache = self._sender_cache
        touch = self._touch
        peers = self._mon._peers
        new_peer = self._mon._new_peer
        tracer = self._mon._tracer
        serial = self._serial + 1
        # Per-row Python work is peer resolution only: sender-bytes cache
        # lookup, sub-batch boundary detection (a flush point whenever a
        # peer repeats within the batch — everything between two boundaries
        # is a run of *distinct* peers), and compaction of UTF-8-invalid
        # senders.  The numeric columns stay numpy throughout.
        pidx_l: List[int] = []
        bounds: List[int] = []
        bad_rows: List[int] = []
        n_good = 0
        for i in range(k):
            o = soff_l[i]
            key = buf[o : o + slen_l[i]].tobytes()
            p = cache.get(key)
            if p is None:
                try:
                    sender = str(key, "utf-8")
                except UnicodeDecodeError:
                    bad_rows.append(i)
                    continue
                state = peers.get(sender)
                if state is None:
                    state = new_peer(
                        sender, arr_l[i] if arr_l is not None else now
                    )
                    self._ensure_slots(len(self._mon._peer_by_index))
                p = state.index
                cache[key] = p
            if tracer is not None and tracer.wants(seq_l[i]):
                tracer.record(
                    "recv",
                    time=arr_l[i] if arr_l is not None else now,
                    peer=self._mon._peer_by_index[p].name,
                    hb_seq=seq_l[i],
                    sent_at=float(ts[i]),
                )
            if touch[p] == serial:
                bounds.append(n_good)
                serial += 1
            touch[p] = serial
            pidx_l.append(p)
            n_good += 1
        self._serial = serial
        n_bad_utf8 = len(bad_rows)
        if n_bad_utf8:
            self.last_bad_rows = sorted(
                bad_rows_orig + [int(x) for x in oidx[bad_rows]]
            )
        if n_good == 0:
            return 0, 0, 0, n_bad_wire + n_bad_utf8, None
        pidx_all = np.array(pidx_l, dtype=np.intp)
        if n_bad_utf8:
            keep = np.ones(k, dtype=bool)
            keep[bad_rows] = False
            seq = seq[keep]
            ts = ts[keep]
            if arr is not None:
                arr = arr[keep]
        if arr is None:
            arr = np.full(n_good, now, dtype=np.float64)
        last_arrival = float(arr[-1])
        n_acc = 0
        n_stl = 0
        start = 0
        bounds.append(n_good)
        for end in bounds:
            if end > start:
                acc, stl = self._process(
                    pidx_all[start:end], seq[start:end],
                    arr[start:end], ts[start:end],
                )
                n_acc += acc
                n_stl += stl
            start = end
        acc = self.stage_acc
        if acc is not None:
            # Assembly + kernels since the decode boundary: the columnar
            # estimation-push/detector-update stage.
            acc["estimate"] += time.perf_counter() - t1
        # n_decoded counts rows that passed the full decode, including the
        # UTF-8 check applied in the assembly loop above.
        return n_good, n_acc, n_stl, n_bad_wire + n_bad_utf8, last_arrival

    # ------------------------------------------------------------------
    def _process(self, pidx, seq, arr, ts):
        """One sub-batch (distinct peers): stats pushes, deadlines, outputs.

        All four inputs are numpy columns (intp, uint64, f64, f64) — slices
        of the batch's decoded arrays, never per-row Python lists.
        """
        self.ndg[pidx] += 1
        acc = seq > self.largest[pidx]
        tracer = self._mon._tracer
        n_stl = 0
        if not acc.all():
            stale = ~acc
            sti = pidx[stale]
            self.nstale[sti] += 1
            n_stl = int(sti.shape[0])
            if tracer is not None:
                peer_list = self._mon._peer_by_index
                seq_l = seq.tolist()
                for r in np.flatnonzero(stale).tolist():
                    if tracer.wants(seq_l[r]):
                        p = int(pidx[r])
                        tracer.record(
                            "stale",
                            time=float(arr[r]),
                            peer=peer_list[p].name,
                            hb_seq=seq_l[r],
                            largest_seq=int(self.largest[p]),
                        )
            pidx = pidx[acc]
            seq = seq[acc]
            arr = arr[acc]
            ts = ts[acc]
            if not pidx.shape[0]:
                return 0, n_stl
        n_acc = int(pidx.shape[0])
        self.largest[pidx] = seq
        self.nacc[pidx] += 1
        self.last_arr[pidx] = arr
        self.last_ts[pidx] = ts
        self.dirty[pidx] = True
        self._touched.extend(pidx.tolist())
        interval = self._interval
        seq_f = seq.astype(np.float64)
        big = seq == _MAX_U64
        seq1_f = (seq + np.uint64(1)).astype(np.float64)
        if big.any():
            seq1_f[big] = 2.0**64  # uint64 wraps; the scalar path promotes
        # --- shared arrival statistics (SharedArrivalState.receive) ---
        pre = {}
        for size in self._pre_sizes:
            pre[size] = self._est[size].pre_mean(pidx)
        norm = arr - interval * seq_f
        for bank in self._est.values():
            bank.push(pidx, norm)
        prev = self.prev_arr[pidx]
        has = ~np.isnan(prev)
        if has.any():
            for bank in self._gaps.values():
                bank.push(pidx[has], arr[has] - prev[has])
        self.prev_arr[pidx] = arr
        # --- per-detector freshness points (each _deadline verbatim) ---
        shift = interval * seq1_f
        dls: List = []
        for j, spec in enumerate(self._specs):
            kind = spec.kind
            if kind == "maxmean":
                best = None
                for size in spec.sizes:
                    m = self._est[size].mean(pidx)
                    best = m if best is None else np.maximum(best, m)
                d = best + shift + spec.margin
            elif kind == "timeout":
                d = arr + spec.timeout
            elif kind == "phi":
                q = spec.quantile
                if q == math.inf:
                    d = np.full(n_acc, math.inf)
                else:
                    g = self._gaps[spec.size]
                    c = g.count[pidx].astype(np.float64)
                    warm = c == 0.0
                    live = ~warm
                    m = np.divide(g.sum[pidx], c, out=np.zeros_like(c), where=live)
                    var = (
                        np.divide(g.sumsq[pidx], c, out=np.zeros_like(c), where=live)
                        - m * m
                    )
                    pos = var > 0.0
                    sigma = np.where(
                        pos, np.sqrt(np.where(pos, var, 1.0)), 0.0
                    )
                    sigma = np.where(sigma < spec.min_std, spec.min_std, sigma)
                    d = arr + (g.baseline[pidx] + m) + sigma * q
                    if warm.any():
                        d = np.where(
                            warm, arr + interval + spec.warmup_std * q, d
                        )
            elif kind == "ed":
                g = self._gaps[spec.size]
                c = g.count[pidx].astype(np.float64)
                warm = c == 0.0
                live = ~warm
                m = np.divide(g.sum[pidx], c, out=np.zeros_like(c), where=live)
                d = arr + (g.baseline[pidx] + m) * spec.factor
                if warm.any():
                    d = np.where(warm, arr + interval * spec.factor, d)
            elif kind == "adaptive":
                # adaptive-2w-fd: the 2W-FD max-mean column plus a per-row
                # margin from each peer's AdaptiveMarginController — fed the
                # row first (the scalar _update), read after (the scalar
                # _deadline).  max(meanᵢ + shift) == max(meanᵢ) + shift bit
                # for bit (addition of a shared term is monotone and the
                # winning operand pair is identical), the same identity the
                # maxmean kernel relies on.
                best = None
                for size in spec.sizes:
                    m = self._est[size].mean(pidx)
                    best = m if best is None else np.maximum(best, m)
                peer_list = self._mon._peer_by_index
                plist_ = pidx.tolist()
                seq_li = seq.tolist()
                arr_li = arr.tolist()
                margins = np.empty(n_acc)
                for r in range(n_acc):
                    ctl = peer_list[plist_[r]].det_list[j][1].controller
                    ctl.observe(seq_li[r], arr_li[r])
                    margins[r] = ctl.margin
                d = best + shift + margins
            elif kind == "chensync":
                # chen-sync (NFD-S): exact send times, no estimation state —
                # ((seq+1)·Δi + offset) + δ, pure column arithmetic.
                d = (shift + spec.offset) + spec.shift
            elif kind == "hist":
                peer_list = self._mon._peer_by_index
                plist_ = pidx.tolist()
                arr_li = arr.tolist()
                cap = spec.size
                threshold = spec.quantile
                factor = spec.factor
                d = np.empty(n_acc)
                for r in range(n_acc):
                    d[r] = _hist_update_deadline(
                        peer_list[plist_[r]].det_list[j][1],
                        arr_li[r], cap, threshold, factor, interval,
                    )
            else:  # bertier
                p_ = pre[spec.size]
                delay = self.b_delay[j][pidx]
                var = self.b_var[j][pidx]
                havep = ~np.isnan(p_)
                err = np.where(
                    havep, arr - (np.where(havep, p_, 0.0) + interval * seq_f) - delay, 0.0
                )
                delay = delay + spec.gamma * err
                var = var + spec.gamma * (np.abs(err) - var)
                self.b_delay[j][pidx] = delay
                self.b_var[j][pidx] = var
                w = self._est[spec.size]
                d = w.mean(pidx) + shift + (spec.beta * delay + spec.phi * var)
            dls.append(d)
        # --- freshness outputs: steady cells columnar, the rest object ---
        steady = []
        steady_all = np.ones(n_acc, dtype=bool)
        for j in range(self._D):
            sj = (
                self.trust[j][pidx]
                & (arr <= self.deadline[j][pidx])
                & (arr < dls[j])
                & (self.levt[j][pidx] <= arr)
            )
            steady.append(sj)
            steady_all &= sj
        for j in range(self._D):
            sj = steady[j]
            if sj.any():
                si = pidx[sj]
                self.deadline[j][si] = dls[j][sj]
                self.levt[j][si] = arr[sj]
        exc = np.flatnonzero(~steady_all)
        if exc.shape[0]:
            peer_list = self._mon._peer_by_index
            drain = self._mon._drain
            plist = pidx.tolist()
            arrlist = arr.tolist()
            dls_l = [d.tolist() for d in dls]
            steady_l = [s.tolist() for s in steady]
            for r in exc.tolist():
                p = plist[r]
                a = arrlist[r]
                state = peer_list[p]
                det_list = state.det_list
                for j in range(self._D):
                    if steady_l[j][r]:
                        continue
                    output = det_list[j][2]
                    dlj = self.deadline[j]
                    lej = self.levt[j]
                    od = dlj[p]
                    output.deadline = None if od != od else float(od)
                    le = lej[p]
                    output.last_event_time = None if le != le else float(le)
                    d = dls_l[j][r]
                    output.on_heartbeat(a, d)
                    dlj[p] = d
                    lej[p] = a
                    self.trust[j][p] = output.trusting
                drain(state.name, state)
        if tracer is not None:
            best = dls[0]
            for j in range(1, self._D):
                best = np.minimum(best, dls[j])
            best_l = best.tolist()
            seq_l = seq.tolist()
            arr_l = arr.tolist()
            plist = pidx.tolist()
            peer_list = self._mon._peer_by_index
            for r in range(n_acc):
                if tracer.wants(seq_l[r]):
                    b = best_l[r]
                    tracer.record(
                        "fresh",
                        time=arr_l[r],
                        peer=peer_list[plist[r]].name,
                        hb_seq=seq_l[r],
                        deadline=None if b == math.inf else b,
                    )
        return n_acc, n_stl

    # ------------------------------------------------------------------
    def finish_batch(self) -> None:
        """Schedule the batch's touched peers: one heap entry per peer at
        its final min-deadline (intermediate entries are unobservable —
        ``sched`` decides at pop time — so poll behavior matches the
        per-datagram pushes of the scalar path exactly)."""
        if not self._touched:
            self.last_fanin = 0
            self.last_touched = []
            return
        acc = self.stage_acc
        if acc is not None:
            t0 = time.perf_counter()
        ups = sorted(set(self._touched))
        self._touched = []
        self.last_fanin = len(ups)
        self.last_touched = ups
        pi = np.array(ups, dtype=np.intp)
        best = self.deadline[0][pi].copy()
        for j in range(1, self._D):
            np.minimum(best, self.deadline[j][pi], out=best)
        heap = self._mon._heap
        peer_list = self._mon._peer_by_index
        heappush = heapq.heappush
        for p, b in zip(ups, best.tolist()):
            state = peer_list[p]
            if b != math.inf:
                heappush(heap, (b, p))
                state.sched = b
            else:
                state.sched = None
        if acc is not None:
            acc["heap"] += time.perf_counter() - t0

    # ------------------------------------------------------------------
    # Lazy columnar → object synchronization
    # ------------------------------------------------------------------
    def sync_peer(self, p: int, state) -> None:
        """Write slot ``p``'s columnar state into the detector objects.

        Called before anything reads object-side state (polls popping the
        peer, snapshots, ``is_trusting``, timelines, metric scrapes).
        ``trusting`` is never written here — it is object-authoritative
        and the columnar mirror follows it, not the other way around.
        """
        if not self.dirty[p]:
            return
        self.dirty[p] = False
        ls = int(self.largest[p])
        la = self.last_arr[p]
        la = None if la != la else float(la)
        lt = self.last_ts[p]
        state.last_seq = ls
        state.last_arrival = la
        state.last_timestamp = None if lt != lt else float(lt)
        state.n_datagrams = int(self.ndg[p])
        state.n_accepted = int(self.nacc[p])
        state.n_stale = int(self.nstale[p])
        det_list = state.det_list
        for j in range(self._D):
            det = det_list[j][1]
            output = det_list[j][2]
            det._largest_seq = ls
            det._last_arrival = la
            dv = self.deadline[j][p]
            dv = None if dv != dv else float(dv)
            det._current_deadline = dv
            output.deadline = dv
            le = self.levt[j][p]
            output.last_event_time = None if le != le else float(le)
        for j, _spec in self._bertier:
            det = det_list[j][1]
            det._delay = float(self.b_delay[j][p])
            det._var = float(self.b_var[j][p])

    def sync_all(self) -> None:
        peer_list = self._mon._peer_by_index
        for p in np.flatnonzero(self.dirty).tolist():
            self.sync_peer(p, peer_list[p])

    def writeback_output(self, p: int, state) -> None:
        """Mirror object-side output mutations (``advance_to`` during a
        poll, ``finalize`` during timelines) back into the columns.
        Deadlines never change object-side, so only trust/levt move."""
        det_list = state.det_list
        for j in range(self._D):
            output = det_list[j][2]
            self.trust[j][p] = output.trusting
            le = output.last_event_time
            self.levt[j][p] = math.nan if le is None else le

    def forget_peer(self, state) -> None:
        """Drop a removed peer from the sender cache (and its dirty flag):
        the next datagram bearing its name must resolve through the
        monitor's peer map — i.e. re-discover — rather than silently feed
        the dead slot's columns."""
        self._sender_cache.pop(state.name.encode("utf-8"), None)
        p = state.index
        if p < int(self.dirty.shape[0]):
            self.dirty[p] = False

    # ------------------------------------------------------------------
    # Adaptive-mode representation switching (object ↔ columnar)
    # ------------------------------------------------------------------
    def adopt(self, peer_list) -> None:
        """Object state → columns: the adaptive monitor switching the
        columnar path on.  Every copy is field-for-field (ring buffer,
        cursors, baseline, running sums, rebuild phase — no arithmetic),
        so the columnar phase continues bit-for-bit where the object
        phase stopped.  O(peers × window capacity); hysteresis plus the
        dwell minimum in :class:`repro.live.adaptive.AdaptiveIngestController`
        keeps switches rare enough that this never shows up in a profile.
        """
        self._ensure_slots(len(peer_list))
        cache = self._sender_cache
        nan = math.nan
        for state in peer_list:
            if state.removed:
                # Tombstoned slot: never re-register the name — a future
                # datagram must re-discover the peer, not feed a dead row.
                continue
            p = state.index
            cache[state.name.encode("utf-8")] = p
            stats = state.stats
            if stats is not None:
                self.largest[p] = stats._largest_seq
                pa = stats._prev_arrival
                self.prev_arr[p] = nan if pa is None else pa
                for size, bank in self._est.items():
                    bank.load_row(p, stats._estimators[size]._window)
                for size, bank in self._gaps.items():
                    bank.load_row(p, stats._gaps[size])
            else:
                # No bindable detector configured: the batched path tracked
                # acceptance per detector (in lockstep), and no window bank
                # exists to fill.
                self.largest[p] = state.last_seq
                self.prev_arr[p] = nan
            la = state.last_arrival
            self.last_arr[p] = nan if la is None else la
            lt = state.last_timestamp
            self.last_ts[p] = nan if lt is None else lt
            self.ndg[p] = state.n_datagrams
            self.nacc[p] = state.n_accepted
            self.nstale[p] = state.n_stale
            self.dirty[p] = False
            det_list = state.det_list
            for j in range(self._D):
                det = det_list[j][1]
                output = det_list[j][2]
                dv = det._current_deadline
                self.deadline[j][p] = nan if dv is None else dv
                le = output.last_event_time
                self.levt[j][p] = nan if le is None else le
                self.trust[j][p] = output.trusting
            for j, _spec in self._bertier:
                det = det_list[j][1]
                self.b_delay[j][p] = det._delay
                self.b_var[j][p] = det._var

    def export(self, peer_list) -> None:
        """Columns → object state: the adaptive monitor switching the
        columnar path off.  ``sync_all`` already writes counters, deadlines,
        outputs and the bertier EWMAs into the objects; what remains is the
        shared estimation state the batched path reads directly."""
        self.sync_all()
        for state in peer_list:
            stats = state.stats
            if state.removed or stats is None:
                continue
            p = state.index
            stats._largest_seq = int(self.largest[p])
            pa = self.prev_arr[p]
            stats._prev_arrival = None if pa != pa else float(pa)
            for size, bank in self._est.items():
                bank.store_row(p, stats._estimators[size]._window)
            for size, bank in self._gaps.items():
                bank.store_row(p, stats._gaps[size])


if _HAVE_NUMPY:
    VectorizedIngestEngine._BODY_DTYPE = np.dtype([("seq", ">u8"), ("ts", ">f8")])


# ======================================================================
# array-module fallback engine
# ======================================================================


class _ArrayBank:
    """The :class:`_WindowBank` layout over ``array('d')`` columns.

    Per-row Python arithmetic on the same ring-buffer state; the rebuild
    reduces left-to-right (see the module docstring for the one resulting
    divergence from the numpy reference).
    """

    __slots__ = ("capacity", "buf", "count", "nxt", "baseline", "sum", "sumsq", "psr")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.buf: List[array] = []
        self.count = array("q")
        self.nxt = array("q")
        self.baseline = array("d")
        self.sum = array("d")
        self.sumsq = array("d")
        self.psr = array("q")

    def grow_to(self, slots: int) -> None:
        while len(self.count) < slots:
            self.buf.append(array("d", bytes(8 * self.capacity)))
            self.count.append(0)
            self.nxt.append(0)
            self.baseline.append(0.0)
            self.sum.append(0.0)
            self.sumsq.append(0.0)
            self.psr.append(0)

    def pre_mean(self, p: int):
        c = self.count[p]
        return self.baseline[p] + self.sum[p] / c if c else None

    def mean(self, p: int) -> float:
        return self.baseline[p] + self.sum[p] / self.count[p]

    def push(self, p: int, value: float) -> None:
        cap = self.capacity
        if cap == 1:
            self.buf[p][0] = value
            self.baseline[p] = value
            self.sum[p] = 0.0
            self.sumsq[p] = 0.0
            self.count[p] = 1
            self.psr[p] = 0
            return
        c = self.count[p]
        if c == 0:
            self.baseline[p] = value
        b = self.baseline[p]
        rel = value - b
        buf = self.buf[p]
        nxt = self.nxt[p]
        if c == cap:
            old = buf[nxt] - b
            self.sum[p] -= old
            self.sumsq[p] -= old * old
        else:
            self.count[p] = c + 1
        buf[nxt] = value
        self.sum[p] += rel
        self.sumsq[p] += rel * rel
        nxt += 1
        self.nxt[p] = 0 if nxt == cap else nxt
        self.psr[p] += 1
        if self.psr[p] >= cap:
            self._rebuild(p)

    def _rebuild(self, p: int) -> None:
        cap = self.capacity
        c = self.count[p]
        nx = self.nxt[p]
        buf = self.buf[p]
        values = buf[:c] if c < cap else buf[nx:] + buf[:nx]
        b = values[0]
        s = 0.0
        ss = 0.0
        for v in values:
            r = v - b
            s += r
            ss += r * r
        self.baseline[p] = b
        self.sum[p] = s
        self.sumsq[p] = ss
        self.psr[p] = 0


class ArrayIngestEngine:
    """numpy-absent fallback: the columnar window layout in ``array('d')``
    columns, per-row Python arithmetic, every freshness update through the
    detector objects (semantically the scalar shared-estimation path with
    column-major window storage).  Same entry points as the numpy engine,
    so the monitor, server and CLI need no gating beyond construction."""

    is_columnar = False

    #: Original batch row indices the last ingest call rejected.
    last_bad_rows: "List[int] | tuple" = ()

    #: Per-stage seconds accumulator for one sampled drain (see the numpy
    #: engine).  Heap pushes happen inline in ``_row`` here, so this
    #: engine reports ``decode`` and folds everything else — estimation,
    #: detector updates *and* the interleaved heap pushes — into
    #: ``estimate``.
    stage_acc: "Dict[str, float] | None" = None

    #: Always empty here: ``_row`` mutates the peer objects directly, so
    #: the delta-generation stamp happens inline (every decoded sender,
    #: stale rows included) and the monitor's post-batch stamp is a no-op.
    last_touched: tuple = ()

    def __init__(self, monitor, probe_detectors: Mapping[str, object]):
        self._mon = monitor
        self._interval = float(monitor.interval)
        self._specs = _build_specs(probe_detectors)
        self._D = len(self._specs)
        est_sizes: set = set()
        gap_sizes: set = set()
        for spec in self._specs:
            if spec.kind in ("maxmean", "adaptive"):
                est_sizes.update(spec.sizes)
            elif spec.kind == "bertier":
                est_sizes.add(spec.size)
            elif spec.kind in ("phi", "ed"):
                gap_sizes.add(spec.size)
        self._est = {size: _ArrayBank(size) for size in sorted(est_sizes)}
        self._gaps = {size: _ArrayBank(size) for size in sorted(gap_sizes)}
        self.largest: List[int] = []
        self.prev_arr: List[float | None] = []
        self._sender_cache: Dict[bytes, int] = {}
        self.last_fanin = 0

    def _ensure_slots(self, n: int) -> None:
        for bank in self._est.values():
            bank.grow_to(n)
        for bank in self._gaps.values():
            bank.grow_to(n)
        while len(self.largest) < n:
            self.largest.append(0)
            self.prev_arr.append(None)

    # ------------------------------------------------------------------
    def ingest_datagrams(self, datagrams, arrivals, now):
        n_bad = n_acc = n_stl = 0
        last_arrival = None
        arr_iter = iter(arrivals) if arrivals is not None else None
        n_dec = 0
        seen: set = set()
        self.last_bad_rows = bad_rows = []
        decode, finish = self._staged_decoder(decode_fields)
        for i, data in enumerate(datagrams):
            a = next(arr_iter) if arr_iter is not None else now
            try:
                sender, seq, ts = decode(data)
            except WireError:
                n_bad += 1
                bad_rows.append(i)
                continue
            n_dec += 1
            seen.add(sender)
            last_arrival = a
            acc = self._row(sender, seq, ts, a)
            if acc:
                n_acc += 1
            else:
                n_stl += 1
        finish()
        self.last_fanin = len(seen)
        return n_dec, n_acc, n_stl, n_bad, last_arrival

    def ingest_arena(self, arena, now):
        n_bad = n_acc = n_stl = 0
        last_arrival = None
        n_dec = 0
        buffer = arena.buffer
        slot = arena.slot_bytes
        lengths = arena.lengths
        seen: set = set()
        self.last_bad_rows = bad_rows = []
        decode_from, finish = self._staged_decoder(decode_fields_from)
        for i in range(arena.last_fill):
            try:
                sender, seq, ts = decode_from(buffer, i * slot, lengths[i])
            except WireError:
                n_bad += 1
                bad_rows.append(i)
                continue
            n_dec += 1
            seen.add(sender)
            last_arrival = now
            if self._row(sender, seq, ts, now):
                n_acc += 1
            else:
                n_stl += 1
        finish()
        self.last_fanin = len(seen)
        return n_dec, n_acc, n_stl, n_bad, last_arrival

    # ------------------------------------------------------------------
    def _staged_decoder(self, decode):
        """Wrap ``decode`` for stage accounting on a sampled drain.

        With :attr:`stage_acc` unset (the common case) the raw decoder
        comes back untouched and ``finish`` is a no-op — zero per-row
        cost.  Otherwise the wrapper accumulates decode seconds per row
        and ``finish`` books the drain's remainder as ``estimate``
        (per-row estimation, detector updates, inline heap pushes).
        """
        acc = self.stage_acc
        if acc is None:
            return decode, lambda: None
        pc = time.perf_counter
        held = [0.0]
        t_start = pc()

        def timed(*parts):
            t = pc()
            try:
                return decode(*parts)
            finally:
                held[0] += pc() - t

        def finish():
            acc["decode"] += held[0]
            acc["estimate"] += (pc() - t_start) - held[0]

        return timed, finish

    def _row(self, sender: str, seq: int, ts: float, arrival: float) -> bool:
        """One decoded heartbeat through the column-backed scalar path."""
        mon = self._mon
        state = mon._peers.get(sender)
        if state is None:
            state = mon._new_peer(sender, arrival)
            self._ensure_slots(len(mon._peer_by_index))
        p = state.index
        tracer = mon._tracer
        traced = tracer is not None and tracer.wants(seq)
        if traced:
            tracer.record(
                "recv", time=arrival, peer=sender, hb_seq=seq, sent_at=ts
            )
        state.n_datagrams += 1
        state.gen = mon._status_gen
        if seq <= self.largest[p]:
            state.n_stale += 1
            if traced:
                tracer.record(
                    "stale", time=arrival, peer=sender, hb_seq=seq,
                    largest_seq=state.last_seq,
                )
            return False
        self.largest[p] = seq
        interval = self._interval
        # SharedArrivalState.receive over the array banks: pre-push mean
        # capture, normalized-arrival pushes, then the gap pushes.
        pre = {}
        for j, spec in enumerate(self._specs):
            if spec.kind == "bertier" and spec.size not in pre:
                pre[spec.size] = self._est[spec.size].pre_mean(p)
        norm = arrival - interval * seq
        for bank in self._est.values():
            bank.push(p, norm)
        prev = self.prev_arr[p]
        if prev is not None:
            gap = arrival - prev
            for bank in self._gaps.values():
                bank.push(p, gap)
        self.prev_arr[p] = arrival
        state.n_accepted += 1
        state.last_seq = seq
        state.last_arrival = arrival
        state.last_timestamp = ts
        det_list = state.det_list
        best = math.inf
        nt = 0
        for j, spec in enumerate(self._specs):
            det = det_list[j][1]
            output = det_list[j][2]
            kind = spec.kind
            if kind == "maxmean":
                bm = None
                for size in spec.sizes:
                    m = self._est[size].mean(p)
                    if bm is None or m > bm:
                        bm = m
                d = bm + interval * (seq + 1) + spec.margin
            elif kind == "timeout":
                d = arrival + spec.timeout
            elif kind == "phi":
                q = spec.quantile
                if q == math.inf:
                    d = math.inf
                else:
                    g = self._gaps[spec.size]
                    c = g.count[p]
                    if c == 0:
                        d = arrival + interval + spec.warmup_std * q
                    else:
                        m = g.sum[p] / c
                        var = g.sumsq[p] / c - m * m
                        sigma = math.sqrt(var) if var > 0.0 else 0.0
                        if sigma < spec.min_std:
                            sigma = spec.min_std
                        d = arrival + (g.baseline[p] + m) + sigma * q
            elif kind == "ed":
                g = self._gaps[spec.size]
                c = g.count[p]
                if c == 0:
                    d = arrival + interval * spec.factor
                else:
                    d = arrival + (g.baseline[p] + g.sum[p] / c) * spec.factor
            elif kind == "adaptive":
                ctl = det.controller
                ctl.observe(seq, arrival)
                bm = None
                for size in spec.sizes:
                    m = self._est[size].mean(p)
                    if bm is None or m > bm:
                        bm = m
                d = bm + interval * (seq + 1) + ctl.margin
            elif kind == "chensync":
                d = (seq + 1) * interval + spec.offset + spec.shift
            elif kind == "hist":
                d = _hist_update_deadline(
                    det, arrival, spec.size, spec.quantile, spec.factor, interval
                )
            else:  # bertier
                p_ = pre[spec.size]
                if p_ is not None:
                    error = arrival - (p_ + interval * seq) - det._delay
                else:
                    error = 0.0
                det._delay += spec.gamma * error
                det._var += spec.gamma * (abs(error) - det._var)
                w = self._est[spec.size]
                d = w.mean(p) + interval * (seq + 1) + (
                    spec.beta * det._delay + spec.phi * det._var
                )
            det._largest_seq = seq
            det._last_arrival = arrival
            det._current_deadline = d
            output.on_heartbeat(arrival, d)
            nt += output.n_transitions
            if d < best:
                best = d
        if best != math.inf:
            heapq.heappush(mon._heap, (best, p))
            state.sched = best
        else:
            state.sched = None
        if traced:
            tracer.record(
                "fresh", time=arrival, peer=sender, hb_seq=seq,
                deadline=None if best == math.inf else best,
            )
        if nt != state.consumed_total:
            mon._drain(sender, state)
        return True

    # ------------------------------------------------------------------
    # Objects stay authoritative on this engine: syncs are no-ops.
    # ------------------------------------------------------------------
    def finish_batch(self) -> None:
        pass

    def sync_peer(self, p: int, state) -> None:
        pass

    def sync_all(self) -> None:
        pass

    def writeback_output(self, p: int, state) -> None:
        pass

    def forget_peer(self, state) -> None:
        """Drop a removed peer's sender-cache entry (see the numpy
        engine's docstring) — the column banks keep the dead row, which
        is never addressed again."""
        self._sender_cache.pop(state.name.encode("utf-8"), None)


def build_engine(monitor, probe_detectors: Mapping[str, object]):
    """The vectorized engine for this interpreter: numpy-backed when
    available, the ``array``-module fallback otherwise.  Both validate the
    detector set (unsupported detectors raise ``ValueError`` here, at
    monitor construction)."""
    if _HAVE_NUMPY:
        return VectorizedIngestEngine(monitor, probe_detectors)
    return ArrayIngestEngine(monitor, probe_detectors)
