"""Calibrated synthetic LAN trace (substitute for the JAIST trace).

The paper's LAN experiment (§IV-B2) used two identical machines on a single
unshared 100 Mbps Ethernet hub: Δi = 20 ms, 7,104,446 samples over a bit
more than a day, **zero** message loss, ~100 µs average transmission delay
with very small variance, and a largest inter-heartbeat gap of about 1.5 s
(rare OS/GC stalls).

:func:`make_lan_trace` reproduces those statistics: tightly concentrated
gamma delays (mean 100 µs), no loss, and seeded rare stall events that delay
short runs of consecutive heartbeats by up to ~1.45 s.
"""

from __future__ import annotations

import numpy as np

from repro._validation import ensure_positive
from repro.net.delays import GammaDelay, SpikeDelay, UniformDelay
from repro.net.link import Link
from repro.net.loss import NoLoss
from repro.traces.synth import generate_trace
from repro.traces.trace import HeartbeatTrace

__all__ = ["LAN_SAMPLES", "LAN_INTERVAL", "make_lan_trace"]

#: Received-sample count of the original LAN trace.
LAN_SAMPLES: int = 7_104_446

#: Heartbeat interval of the LAN experiment (seconds).
LAN_INTERVAL: float = 0.02


def _lan_link() -> Link:
    # Mean delay 100 µs (shape*scale = 4 * 25 µs) with std 50 µs.  Stalls
    # are rare (a few per million heartbeats) pauses of up to ~1.45 s that
    # hold up a whole run of consecutive heartbeats (spike_run ≈ stall
    # length / Δi) and then release them in a burst — matching the reported
    # largest interarrival gap of ~1.5 s at Δi = 20 ms.  A spike on a single
    # message would merely reorder it past fresher heartbeats and be
    # discarded, which is why the run length matters here.
    return Link(
        delay_model=SpikeDelay(
            base=GammaDelay(shape=4.0, scale=2.5e-5),
            spike_model=UniformDelay(0.3, 1.45),
            spike_rate=4e-6,
            spike_run=75.0,
        ),
        loss_model=NoLoss(),
    )


def make_lan_trace(
    scale: float = 1.0,
    seed: int | np.random.Generator | None = 2015,
) -> HeartbeatTrace:
    """Generate the synthetic LAN trace.

    Parameters
    ----------
    scale:
        Fraction of the original 7,104,446 samples to generate.
    seed:
        RNG seed for determinism.
    """
    ensure_positive(scale, "scale")
    n = max(2000, round(LAN_SAMPLES * scale))
    trace = generate_trace(n, LAN_INTERVAL, _lan_link(), rng=seed)
    trace.meta["scenario"] = "lan"
    trace.meta["scale"] = scale
    return trace
