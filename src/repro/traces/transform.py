"""Trace transformations: controlled fault injection and composition.

The synthetic generators draw faults at random; these helpers instead
*inject them at known places* into an existing trace, giving experiments a
ground truth to measure against ("a loss burst starts at t=100.0 — which
detectors make a mistake, and how fast do they recover?").  Used by the
behavioural tests and the episode-reaction analysis
(:mod:`repro.replay.reaction`).

All transforms are pure: they return new traces, leaving the input intact.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence, Tuple

import numpy as np

from repro._validation import ensure_non_negative, ensure_positive
from repro.traces.trace import HeartbeatTrace

__all__ = [
    "drop_span",
    "delay_span",
    "crop_time",
    "concat_traces",
    "thin_loss",
]


def _span_mask(trace: HeartbeatTrace, start: float, stop: float) -> np.ndarray:
    if stop <= start:
        raise ValueError(f"empty time span [{start}, {stop})")
    return (trace.arrival >= start) & (trace.arrival < stop)


def drop_span(trace: HeartbeatTrace, start: float, stop: float) -> HeartbeatTrace:
    """Drop every heartbeat arriving in ``[start, stop)`` (a loss burst).

    Sequence numbers of the dropped messages simply never arrive, exactly
    as a network outage would look to the monitor.
    """
    keep = ~_span_mask(trace, start, stop)
    if not keep.any():
        raise ValueError("the span would drop every heartbeat")
    return replace(
        trace,
        seq=trace.seq[keep].copy(),
        arrival=trace.arrival[keep].copy(),
        meta=dict(trace.meta, injected_loss_span=(start, stop)),
    )


def delay_span(
    trace: HeartbeatTrace,
    start: float,
    stop: float,
    extra: float,
    *,
    drain: bool = True,
) -> HeartbeatTrace:
    """Add ``extra`` seconds of delay to heartbeats arriving in ``[start, stop)``.

    With ``drain=True`` (a congested queue emptying) the extra delay decays
    linearly across the span, so held-up messages release in a burst; with
    ``drain=False`` every affected message is shifted by the full ``extra``.
    Arrivals are re-sorted afterwards (delayed messages may be overtaken —
    the sequence-filtering semantics then discard them naturally).
    """
    ensure_positive(extra, "extra")
    mask = _span_mask(trace, start, stop)
    arrival = trace.arrival.copy()
    if mask.any():
        if drain:
            frac = (stop - arrival[mask]) / (stop - start)
            arrival[mask] += extra * frac
        else:
            arrival[mask] += extra
    order = np.argsort(arrival, kind="stable")
    return replace(
        trace,
        seq=trace.seq[order].copy(),
        arrival=arrival[order],
        end_time=float(max(trace.end_time, arrival.max())),
        meta=dict(trace.meta, injected_delay_span=(start, stop, extra)),
    )


def crop_time(trace: HeartbeatTrace, start: float, stop: float) -> HeartbeatTrace:
    """The sub-trace of heartbeats arriving in ``[start, stop)``."""
    mask = _span_mask(trace, start, stop)
    if not mask.any():
        raise ValueError(f"no heartbeats arrive in [{start}, {stop})")
    return replace(
        trace,
        seq=trace.seq[mask].copy(),
        arrival=trace.arrival[mask].copy(),
        n_sent=int(trace.seq[mask].max()),
        end_time=float(stop),
        meta=dict(trace.meta, cropped=(start, stop)),
    )


def concat_traces(first: HeartbeatTrace, second: HeartbeatTrace) -> HeartbeatTrace:
    """Concatenate two traces of the same interval into one experiment.

    The second trace's sequence numbers and times are shifted to follow the
    first (its heartbeat ``m_1`` becomes ``m_{n_sent+1}`` sent one interval
    after the first trace's last send).  Useful for splicing generated
    regimes together with exact, known boundaries.
    """
    if first.interval != second.interval:
        raise ValueError(
            f"intervals differ ({first.interval} != {second.interval})"
        )
    seq_shift = first.n_sent
    # Align p's send clock: m_1 of `second` was sent at interval*1; it
    # becomes m_{seq_shift+1} sent at interval*(seq_shift+1).
    time_shift = first.interval * seq_shift
    seq = np.concatenate([first.seq, second.seq + seq_shift])
    arrival = np.concatenate([first.arrival, second.arrival + time_shift])
    order = np.argsort(arrival, kind="stable")
    return HeartbeatTrace(
        seq=seq[order],
        arrival=arrival[order],
        interval=first.interval,
        n_sent=first.n_sent + second.n_sent,
        end_time=float(second.end_time + time_shift),
        meta={
            "generator": "concat_traces",
            "boundary_seq": seq_shift,
            "boundary_time": time_shift,
        },
    )


def thin_loss(
    trace: HeartbeatTrace,
    probability: float,
    rng: np.random.Generator | int | None = None,
) -> HeartbeatTrace:
    """Independently drop each received heartbeat with ``probability``.

    Adds uniform background loss on top of whatever the trace already has
    (ablation knob: how does each detector's curve move as p_L grows?).
    """
    ensure_non_negative(probability, "probability")
    if probability >= 1.0:
        raise ValueError("probability must be < 1 (cannot drop everything)")
    rng = np.random.default_rng(rng)
    keep = rng.random(trace.n_received) >= probability
    if not keep.any():
        raise ValueError("thinning removed every heartbeat; lower the probability")
    return replace(
        trace,
        seq=trace.seq[keep].copy(),
        arrival=trace.arrival[keep].copy(),
        meta=dict(trace.meta, thinned=probability),
    )
