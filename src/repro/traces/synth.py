"""Synthetic heartbeat-trace generation.

Reproduces the paper's experimental setup (§IV-A): a process p sends
heartbeat ``m_j`` at time ``j·Δi`` over a lossy, delaying link; the monitor q
logs arrival times.  :func:`generate_trace` drives a single :class:`Link`;
:func:`generate_segmented_trace` strings several link regimes together to
build traces with distinct periods (stable / burst / worm), the structure
the WAN experiments rely on.

Generation is fully vectorized and deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._validation import ensure_int_at_least, ensure_positive
from repro.net.link import Link
from repro.traces.trace import HeartbeatTrace

__all__ = ["SegmentSpec", "generate_trace", "generate_segmented_trace"]


@dataclass(frozen=True)
class SegmentSpec:
    """One network regime within a segmented trace.

    ``n_sent`` heartbeats are pushed through ``link``.  The number of
    *received* samples in the segment is then ``n_sent`` minus losses, so
    callers targeting a received count should divide by ``1 - loss_rate``.
    """

    name: str
    n_sent: int
    link: Link

    def __post_init__(self) -> None:
        ensure_int_at_least(self.n_sent, 1, "n_sent")


def _finalize(
    seq: np.ndarray,
    arrival: np.ndarray,
    interval: float,
    n_sent: int,
    meta: dict,
) -> HeartbeatTrace:
    """Sort by arrival time (UDP reordering) and build the trace."""
    order = np.argsort(arrival, kind="stable")
    seq = seq[order]
    arrival = arrival[order]
    # The observation horizon extends to the last send plus the mean delay so
    # that metrics do not truncate the final inter-heartbeat gap arbitrarily.
    end_time = float(max(arrival[-1], interval * n_sent))
    return HeartbeatTrace(
        seq=seq,
        arrival=arrival,
        interval=interval,
        n_sent=n_sent,
        end_time=end_time,
        meta=meta,
    )


def generate_trace(
    n_sent: int,
    interval: float,
    link: Link,
    rng: np.random.Generator | int | None = None,
) -> HeartbeatTrace:
    """Generate a single-regime trace of ``n_sent`` heartbeats."""
    n_sent = ensure_int_at_least(n_sent, 1, "n_sent")
    ensure_positive(interval, "interval")
    rng = np.random.default_rng(rng)
    send_times = interval * np.arange(1, n_sent + 1, dtype=np.float64)
    tx = link.transmit(send_times, rng)
    seq = np.flatnonzero(tx.delivered).astype(np.int64) + 1
    if seq.size == 0:
        raise ValueError("link lost every heartbeat; cannot build a trace")
    return _finalize(
        seq,
        tx.arrival,
        interval,
        n_sent,
        meta={"generator": "generate_trace", "link": repr(link)},
    )


def generate_segmented_trace(
    segments: Sequence[SegmentSpec],
    interval: float,
    rng: np.random.Generator | int | None = None,
) -> HeartbeatTrace:
    """Generate a trace whose network regime changes per segment.

    Sequence numbering and send times run continuously across segments;
    arrival times are globally sorted afterwards, so a delay spike at a
    segment boundary interleaves naturally.  Per-segment sent/received
    counts are recorded in ``trace.meta['segments']``.
    """
    if not segments:
        raise ValueError("at least one segment is required")
    ensure_positive(interval, "interval")
    rng = np.random.default_rng(rng)

    seq_parts: list[np.ndarray] = []
    arrival_parts: list[np.ndarray] = []
    seg_meta: list[dict] = []
    next_seq = 1
    for spec in segments:
        send_times = interval * np.arange(
            next_seq, next_seq + spec.n_sent, dtype=np.float64
        )
        tx = spec.link.transmit(send_times, rng)
        seq = next_seq + np.flatnonzero(tx.delivered).astype(np.int64)
        seq_parts.append(seq)
        arrival_parts.append(tx.arrival)
        seg_meta.append(
            {
                "name": spec.name,
                "first_seq": next_seq,
                "n_sent": spec.n_sent,
                "n_received": int(seq.size),
            }
        )
        next_seq += spec.n_sent

    seq = np.concatenate(seq_parts)
    arrival = np.concatenate(arrival_parts)
    if seq.size == 0:
        raise ValueError("all segments lost every heartbeat")
    return _finalize(
        seq,
        arrival,
        interval,
        next_seq - 1,
        meta={"generator": "generate_segmented_trace", "segments": seg_meta},
    )
