"""The :class:`HeartbeatTrace` container.

A trace records what the monitor q observed: for each *received* heartbeat,
its sequence number (stamped by the sender p) and its arrival time on q's
clock.  Sequence numbers start at 1 and heartbeat ``m_j`` is sent at time
``j * interval`` on p's clock (Alg. 1 line 2), so losses appear as gaps in
the sequence-number column and reordering as non-monotone sequence numbers.

Arrival times are stored in arrival order (non-decreasing).  Times are
float64 seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, Tuple

import numpy as np

from repro._validation import (
    ensure_1d_float_array,
    ensure_1d_int_array,
    ensure_positive,
    ensure_same_length,
    ensure_sorted,
)

__all__ = ["HeartbeatTrace"]


@dataclass(frozen=True)
class HeartbeatTrace:
    """Immutable log of received heartbeats.

    Parameters
    ----------
    seq:
        Sequence numbers of received heartbeats, in arrival order (>= 1).
    arrival:
        Arrival times at q (q's clock, seconds), non-decreasing.
    interval:
        The sender's heartbeat interval Δi (p's clock, seconds).
    n_sent:
        Total number of heartbeats sent during the experiment.  Defaults to
        the largest sequence number received.
    end_time:
        End of the observation window (q's clock).  Metrics are computed on
        ``[arrival[0], end_time]``.  Defaults to the last arrival time.
    meta:
        Free-form generator metadata (seed, segment layout, ground-truth
        clock offset, ...).  Not used by any algorithm.
    """

    seq: np.ndarray
    arrival: np.ndarray
    interval: float
    n_sent: int = 0
    end_time: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        seq = ensure_1d_int_array(self.seq, "seq")
        arrival = ensure_1d_float_array(self.arrival, "arrival")
        ensure_same_length(seq, arrival, "seq", "arrival")
        ensure_positive(self.interval, "interval")
        if len(seq) == 0:
            raise ValueError("a trace must contain at least one heartbeat")
        if seq.min() < 1:
            raise ValueError("sequence numbers must be >= 1")
        ensure_sorted(arrival, "arrival")
        seq.setflags(write=False)
        arrival.setflags(write=False)
        object.__setattr__(self, "seq", seq)
        object.__setattr__(self, "arrival", arrival)
        n_sent = int(self.n_sent) if self.n_sent else int(seq.max())
        if n_sent < seq.max():
            raise ValueError(
                f"n_sent ({n_sent}) smaller than the largest received sequence "
                f"number ({seq.max()})"
            )
        object.__setattr__(self, "n_sent", n_sent)
        end_time = float(self.end_time) if self.end_time else float(arrival[-1])
        if end_time < arrival[-1]:
            raise ValueError("end_time must not precede the last arrival")
        object.__setattr__(self, "end_time", end_time)

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.seq)

    @property
    def n_received(self) -> int:
        """Number of heartbeats that reached q (possibly out of order)."""
        return len(self.seq)

    @property
    def duration(self) -> float:
        """Observation window length: ``end_time - arrival[0]``."""
        return float(self.end_time - self.arrival[0])

    @property
    def loss_rate(self) -> float:
        """Fraction of sent heartbeats never received."""
        lost = self.n_sent - len(np.unique(self.seq))
        return lost / self.n_sent if self.n_sent else 0.0

    # ------------------------------------------------------------------
    # Algorithm-facing views
    # ------------------------------------------------------------------
    def accepted_mask(self) -> np.ndarray:
        """Mask of heartbeats a sequence-filtering detector processes.

        All algorithms in the paper ignore a received message unless its
        sequence number exceeds the largest seen so far (Alg. 1 line 13);
        this returns ``True`` exactly for the messages that pass that test.
        """
        if len(self.seq) == 0:
            return np.zeros(0, dtype=bool)
        running_max = np.maximum.accumulate(self.seq)
        mask = np.empty(len(self.seq), dtype=bool)
        mask[0] = True
        # A message is accepted iff it strictly raises the running max.
        mask[1:] = self.seq[1:] > running_max[:-1]
        return mask

    def accepted(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(seq, arrival)`` restricted to accepted heartbeats."""
        mask = self.accepted_mask()
        return self.seq[mask], self.arrival[mask]

    def normalized_arrivals(self) -> np.ndarray:
        """``arrival - interval * seq``: Eq. 2's normalization.

        For synchronized clocks this equals the one-way delay of each
        message; an unknown clock skew adds a constant, which cancels out of
        every freshness-point computation.
        """
        return self.arrival - self.interval * self.seq.astype(np.float64)

    def send_offset_estimate(self) -> float:
        """Estimated clock offset such that ``j*interval + offset`` ≈ σ_j on q's clock.

        Computed as the minimum normalized arrival, i.e. assuming the fastest
        message had (close to) zero delay.  Used to place *virtual send
        times* when measuring detection times on a trace (q cannot observe
        real send times; see ``repro.replay.detection``).
        """
        return float(self.normalized_arrivals().min())

    def virtual_send_times(self, seq: np.ndarray | None = None) -> np.ndarray:
        """Estimated send instants (q's clock) for the given sequence numbers."""
        if seq is None:
            seq = self.seq
        offset = self.send_offset_estimate()
        return offset + self.interval * np.asarray(seq, dtype=np.float64)

    # ------------------------------------------------------------------
    # Slicing / combination
    # ------------------------------------------------------------------
    def slice_samples(self, start: int, stop: int) -> "HeartbeatTrace":
        """Sub-trace of received samples ``[start, stop)`` (0-based indices).

        Times and sequence numbers are kept absolute so sub-traces replay
        exactly as the corresponding span of the full trace does.
        """
        if not 0 <= start < stop <= len(self.seq):
            raise ValueError(
                f"invalid sample range [{start}, {stop}) for trace of length {len(self.seq)}"
            )
        sub_seq = self.seq[start:stop]
        return replace(
            self,
            seq=sub_seq.copy(),
            arrival=self.arrival[start:stop].copy(),
            n_sent=int(sub_seq.max()),
            end_time=float(self.arrival[stop - 1]),
            meta=dict(self.meta, parent_span=(start, stop)),
        )

    def with_time_offset(self, offset: float) -> "HeartbeatTrace":
        """A copy with every arrival (and the horizon) shifted by ``offset``.

        Used by skew-invariance tests: QoS metrics must not change.
        """
        return replace(
            self,
            seq=self.seq.copy(),
            arrival=self.arrival + offset,
            end_time=self.end_time + offset,
            meta=dict(self.meta),
        )

    def iter_heartbeats(self) -> Iterator[Tuple[int, float]]:
        """Iterate ``(seq, arrival)`` pairs in arrival order (online feeds)."""
        for s, a in zip(self.seq.tolist(), self.arrival.tolist()):
            yield s, a

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HeartbeatTrace(n_received={self.n_received}, n_sent={self.n_sent}, "
            f"interval={self.interval}, duration={self.duration:.3f}s, "
            f"loss_rate={self.loss_rate:.5f})"
        )
