"""Table I: the WAN trace's sub-sample decomposition.

The paper splits the WAN sample space into four named periods (Table I),
indexed by *received-sample* number (1-based, inclusive):

=============  ===========  ==========
Name           From sample  To sample
=============  ===========  ==========
Stable 1       1            2,900,000
Burst          2,900,001    2,930,000
Worm Period    2,930,001    4,860,000
Stable 2       4,860,001    5,845,712
=============  ===========  ==========

This module defines those boundaries, scales them proportionally when
experiments run on reduced-size traces, and slices traces accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.traces.trace import HeartbeatTrace

__all__ = [
    "Segment",
    "WAN_SEGMENTS",
    "scale_segments",
    "segment_slices",
    "split_by_segments",
]


@dataclass(frozen=True)
class Segment:
    """A named span of received samples, 1-based inclusive as in Table I."""

    name: str
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 1 or self.stop < self.start:
            raise ValueError(f"invalid segment bounds [{self.start}, {self.stop}]")

    @property
    def n_samples(self) -> int:
        return self.stop - self.start + 1


#: Table I of the paper, verbatim.
WAN_SEGMENTS: Tuple[Segment, ...] = (
    Segment("stable1", 1, 2_900_000),
    Segment("burst", 2_900_001, 2_930_000),
    Segment("worm", 2_930_001, 4_860_000),
    Segment("stable2", 4_860_001, 5_845_712),
)


def scale_segments(segments: Tuple[Segment, ...], n_total: int) -> Tuple[Segment, ...]:
    """Rescale segment boundaries to a trace of ``n_total`` received samples.

    Boundaries are placed at the same *fractions* of the trace as in the
    original, so reduced-scale reproductions keep the Table I structure.
    """
    if n_total < len(segments):
        raise ValueError(
            f"cannot scale {len(segments)} segments onto {n_total} samples"
        )
    original_total = segments[-1].stop
    out: List[Segment] = []
    prev_stop = 0
    for i, seg in enumerate(segments):
        if i == len(segments) - 1:
            stop = n_total
        else:
            stop = max(prev_stop + 1, round(seg.stop * n_total / original_total))
            stop = min(stop, n_total - (len(segments) - 1 - i))
        out.append(Segment(seg.name, prev_stop + 1, stop))
        prev_stop = stop
    return tuple(out)


def segment_slices(
    segments: Tuple[Segment, ...], n_total: int | None = None
) -> Dict[str, Tuple[int, int]]:
    """0-based half-open ``[start, stop)`` index ranges per segment name."""
    if n_total is not None:
        segments = scale_segments(segments, n_total)
    return {seg.name: (seg.start - 1, seg.stop) for seg in segments}


def split_by_segments(
    trace: HeartbeatTrace, segments: Tuple[Segment, ...] = WAN_SEGMENTS
) -> Dict[str, HeartbeatTrace]:
    """Slice ``trace`` into the named sub-traces of ``segments``.

    Boundaries are rescaled to the trace's actual length, so this works for
    full-size and reduced-scale WAN traces alike.
    """
    slices = segment_slices(segments, n_total=trace.n_received)
    return {
        name: trace.slice_samples(start, stop) for name, (start, stop) in slices.items()
    }
