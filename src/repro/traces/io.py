"""Trace (de)serialization.

Traces are stored as NumPy ``.npz`` archives (compact, loads in one call) or
exported to the two-column CSV format of the original public trace files
(sequence number, arrival time).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.traces.trace import HeartbeatTrace

__all__ = ["save_trace", "load_trace", "export_csv", "import_csv"]


def save_trace(trace: HeartbeatTrace, path: str | Path) -> Path:
    """Write ``trace`` to ``path`` as a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        seq=trace.seq,
        arrival=trace.arrival,
        interval=np.float64(trace.interval),
        n_sent=np.int64(trace.n_sent),
        end_time=np.float64(trace.end_time),
        meta=np.bytes_(json.dumps(trace.meta, default=repr).encode()),
    )
    # np.savez appends .npz when missing; report the real file name.
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def load_trace(path: str | Path) -> HeartbeatTrace:
    """Load a trace previously written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"]).decode()) if "meta" in data else {}
        return HeartbeatTrace(
            seq=data["seq"],
            arrival=data["arrival"],
            interval=float(data["interval"]),
            n_sent=int(data["n_sent"]),
            end_time=float(data["end_time"]),
            meta=meta,
        )


def export_csv(trace: HeartbeatTrace, path: str | Path) -> Path:
    """Write ``seq,arrival`` rows (the original traces' two-column format)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savetxt(
        path,
        np.column_stack([trace.seq.astype(np.float64), trace.arrival]),
        fmt=("%d", "%.9f"),
        delimiter=",",
        header=f"interval={trace.interval} n_sent={trace.n_sent} end_time={trace.end_time}",
    )
    return path


def import_csv(
    path: str | Path,
    interval: float,
    n_sent: int = 0,
    end_time: float = 0.0,
) -> HeartbeatTrace:
    """Read a two-column ``seq,arrival`` CSV into a trace.

    ``interval`` must be supplied (the original trace files record it in
    their accompanying READMEs, not in the data).
    """
    data = np.loadtxt(Path(path), delimiter=",", ndmin=2)
    return HeartbeatTrace(
        seq=data[:, 0],
        arrival=data[:, 1],
        interval=interval,
        n_sent=n_sent,
        end_time=end_time,
        meta={"source": str(path)},
    )
