"""Calibrated synthetic WAN trace (substitute for the Défago et al. trace).

The paper's WAN experiment (§IV-B1) used a one-week heartbeat log between a
machine in Switzerland and one in Japan (Δi ≈ 100 ms, 5,845,712 received
samples) containing, in order: a long stable period, a short intense loss
burst, a ~2M-sample degraded period coinciding with the W32/Netsky.T@mm worm
outbreak, and a final stable period (Table I).

:func:`make_wan_trace` reproduces that *regime structure* with a seeded
generator.  Per regime:

- **stable1 / stable2** — log-normal one-way delays (mean ≈ 120 ms, σ ≈ a
  few ms), sparse independent loss (~0.1%), very rare small delay spikes.
  This matches an uncongested intercontinental path.
- **burst** — clustered congestion: Gilbert–Elliott loss bursts (mean ~15
  consecutive drops) plus correlated multi-hundred-ms delay spikes.  This
  is the "bursty traffic" regime of §III-A where conditions change faster
  than any single estimation window can track.
- **worm** — elevated independent loss (~2%), extra jitter, and more
  frequent medium spikes: a path under sustained background attack load.

The boundaries between regimes sit at the same received-sample fractions as
Table I.  Absolute QoS numbers will differ from the paper's (different
hardware, different week of Internet weather); EXPERIMENTS.md tracks shapes.
"""

from __future__ import annotations

import math

import numpy as np

from repro._validation import ensure_positive
from repro.net.delays import LogNormalDelay, ParetoDelay, SpikeDelay
from repro.net.link import Link
from repro.net.loss import BernoulliLoss, BurstLoss
from repro.traces.segments import WAN_SEGMENTS
from repro.traces.synth import SegmentSpec, generate_segmented_trace
from repro.traces.trace import HeartbeatTrace

__all__ = ["WAN_SAMPLES", "WAN_INTERVAL", "make_wan_trace"]

#: Received-sample count of the original WAN trace (Table I last boundary).
WAN_SAMPLES: int = 5_845_712

#: Heartbeat interval of the WAN experiment (seconds).
WAN_INTERVAL: float = 0.1

# Base one-way delay: ~120 ms with a right-skewed few-ms spread.
_BASE_DELAY = LogNormalDelay(log_mu=math.log(0.118), log_sigma=0.10)
_WORM_DELAY = LogNormalDelay(log_mu=math.log(0.122), log_sigma=0.12)

_STABLE_LOSS = 0.001
_WORM_LOSS = 0.02


def _stable_link() -> Link:
    return Link(
        delay_model=SpikeDelay(
            base=_BASE_DELAY,
            spike_model=ParetoDelay(alpha=1.6, minimum=0.12),
            spike_rate=5e-5,
            spike_run=8.0,
        ),
        loss_model=BernoulliLoss(_STABLE_LOSS),
    )


def _burst_link() -> Link:
    return Link(
        delay_model=SpikeDelay(
            base=_BASE_DELAY,
            spike_model=ParetoDelay(alpha=1.3, minimum=0.4),
            spike_rate=8e-3,
            spike_run=30.0,
        ),
        loss_model=BurstLoss(mean_gap=900.0, mean_burst=20.0, p_base=0.004),
    )


def _worm_link() -> Link:
    return Link(
        delay_model=SpikeDelay(
            base=_WORM_DELAY,
            spike_model=ParetoDelay(alpha=1.2, minimum=0.15),
            spike_rate=4e-3,
            spike_run=6.0,
        ),
        loss_model=BurstLoss(mean_gap=4000.0, mean_burst=6.0, p_base=_WORM_LOSS),
    )


def make_wan_trace(
    scale: float = 1.0,
    seed: int | np.random.Generator | None = 2015,
) -> HeartbeatTrace:
    """Generate the synthetic WAN trace.

    Parameters
    ----------
    scale:
        Fraction of the original 5,845,712 received samples to target
        (``scale=1.0`` reproduces the full size; tests use much less).
        Segment boundaries keep their Table I fractions at any scale.
    seed:
        RNG seed (default 2015, the paper's year) for full determinism.
    """
    ensure_positive(scale, "scale")
    n_target = max(2000, round(WAN_SAMPLES * scale))
    total = WAN_SEGMENTS[-1].stop
    loss_by_name = {
        "stable1": _STABLE_LOSS,
        "burst": BurstLoss(900.0, 20.0, 0.004).loss_rate(),
        "worm": BurstLoss(4000.0, 6.0, _WORM_LOSS).loss_rate(),
        "stable2": _STABLE_LOSS,
    }
    link_by_name = {
        "stable1": _stable_link(),
        "burst": _burst_link(),
        "worm": _worm_link(),
        "stable2": _stable_link(),
    }
    specs = []
    for seg in WAN_SEGMENTS:
        frac = seg.n_samples / total
        n_received_target = max(200, round(n_target * frac))
        n_sent = max(1, round(n_received_target / (1.0 - loss_by_name[seg.name])))
        specs.append(SegmentSpec(seg.name, n_sent, link_by_name[seg.name]))
    trace = generate_segmented_trace(specs, WAN_INTERVAL, rng=seed)
    trace.meta["scenario"] = "wan"
    trace.meta["scale"] = scale
    return trace
