"""Descriptive statistics of heartbeat traces.

These are the quantities the paper's configuration procedure consumes
(§V-A1): the loss probability ``p_L`` and the delay variance ``V(D)``; plus
the interarrival moments the accrual detectors estimate, reported here for
trace calibration and documentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.trace import HeartbeatTrace

__all__ = ["TraceStats", "compute_stats"]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a heartbeat trace.

    ``delay_*`` fields are computed on normalized arrivals
    ``A - Δi·s`` shifted so the minimum is zero — i.e. delays *relative to
    the fastest message*, which is all q can know without synchronized
    clocks.  Their variance equals the true delay variance (§V-A1).
    """

    n_received: int
    n_sent: int
    loss_rate: float
    duration: float
    interval: float
    delay_mean: float
    delay_variance: float
    delay_max: float
    interarrival_mean: float
    interarrival_std: float
    interarrival_max: float

    def as_dict(self) -> dict:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


def compute_stats(trace: HeartbeatTrace) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``.

    Interarrival statistics are taken over *accepted* heartbeats, matching
    what a window-based detector would observe.
    """
    normalized = trace.normalized_arrivals()
    rel_delay = normalized - normalized.min()
    _, acc_arrival = trace.accepted()
    gaps = np.diff(acc_arrival)
    return TraceStats(
        n_received=trace.n_received,
        n_sent=trace.n_sent,
        loss_rate=trace.loss_rate,
        duration=trace.duration,
        interval=trace.interval,
        delay_mean=float(rel_delay.mean()),
        delay_variance=float(rel_delay.var()),
        delay_max=float(rel_delay.max()),
        interarrival_mean=float(gaps.mean()) if gaps.size else 0.0,
        interarrival_std=float(gaps.std()) if gaps.size else 0.0,
        interarrival_max=float(gaps.max()) if gaps.size else 0.0,
    )
