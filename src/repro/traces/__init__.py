"""Heartbeat traces: the paper's experimental substrate.

All experiments in the paper run on *traces*: logs of ``(sequence number,
arrival time)`` pairs recorded by the monitor q while the monitored process p
sends a heartbeat every Δi seconds (§IV-A: "these logged arrival times are
used to replay the execution for each FD algorithm. Therefore, all failure
detectors were compared in the same experimental conditions").

- :mod:`repro.traces.trace` — the :class:`HeartbeatTrace` container,
- :mod:`repro.traces.synth` — segment-based synthetic trace generation,
- :mod:`repro.traces.wan` / :mod:`repro.traces.lan` — calibrated generators
  reproducing the statistics of the Défago et al. WAN and LAN traces used by
  the paper (see DESIGN.md, Substitutions),
- :mod:`repro.traces.segments` — the Table I sub-sample boundaries,
- :mod:`repro.traces.stats` — descriptive statistics (loss rate, delay
  variance, interarrival moments),
- :mod:`repro.traces.transform` — controlled fault injection (ground-truth
  loss bursts / delay episodes) and trace composition,
- :mod:`repro.traces.io` — (de)serialization.
"""

from repro.traces.lan import LAN_SAMPLES, make_lan_trace
from repro.traces.segments import (
    WAN_SEGMENTS,
    Segment,
    scale_segments,
    segment_slices,
    split_by_segments,
)
from repro.traces.stats import TraceStats, compute_stats
from repro.traces.synth import SegmentSpec, generate_segmented_trace, generate_trace
from repro.traces.trace import HeartbeatTrace
from repro.traces.transform import (
    concat_traces,
    crop_time,
    delay_span,
    drop_span,
    thin_loss,
)
from repro.traces.wan import WAN_SAMPLES, make_wan_trace
from repro.traces.io import load_trace, save_trace

__all__ = [
    "HeartbeatTrace",
    "LAN_SAMPLES",
    "Segment",
    "SegmentSpec",
    "TraceStats",
    "WAN_SAMPLES",
    "WAN_SEGMENTS",
    "compute_stats",
    "concat_traces",
    "crop_time",
    "delay_span",
    "drop_span",
    "generate_segmented_trace",
    "generate_trace",
    "load_trace",
    "make_lan_trace",
    "make_wan_trace",
    "save_trace",
    "scale_segments",
    "segment_slices",
    "split_by_segments",
    "thin_loss",
]
