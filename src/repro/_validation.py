"""Shared argument-validation helpers.

Small, dependency-free checks used across the package so that error messages
are uniform and validation logic is written once.  All helpers raise
:class:`ValueError` (or :class:`TypeError` for wrong types) with the offending
parameter name in the message.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "ensure_positive",
    "ensure_non_negative",
    "ensure_probability",
    "ensure_int_at_least",
    "ensure_1d_float_array",
    "ensure_1d_int_array",
    "ensure_same_length",
    "ensure_sorted",
]


def ensure_positive(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number strictly greater than zero."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def ensure_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number greater than or equal to zero."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def ensure_probability(value: float, name: str) -> float:
    """Return ``value`` if it lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def ensure_int_at_least(value: int, minimum: int, name: str) -> int:
    """Return ``value`` as an int if it is an integer ``>= minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def ensure_1d_float_array(value: Any, name: str) -> np.ndarray:
    """Coerce ``value`` to a 1-D float64 array, rejecting higher dimensions."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def ensure_1d_int_array(value: Any, name: str) -> np.ndarray:
    """Coerce ``value`` to a 1-D int64 array, rejecting higher dimensions."""
    arr = np.asarray(value)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        rounded = np.rint(arr)
        if not np.allclose(arr, rounded):
            raise ValueError(f"{name} must contain integers")
        arr = rounded
    return arr.astype(np.int64, copy=False)


def ensure_same_length(a: np.ndarray, b: np.ndarray, name_a: str, name_b: str) -> None:
    """Raise unless the two arrays have identical length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length "
            f"({len(a)} != {len(b)})"
        )


def ensure_sorted(arr: np.ndarray, name: str, *, strict: bool = False) -> None:
    """Raise unless ``arr`` is sorted ascending (strictly if ``strict``)."""
    if arr.size < 2:
        return
    diffs = np.diff(arr)
    if strict:
        if not np.all(diffs > 0):
            raise ValueError(f"{name} must be strictly increasing")
    elif not np.all(diffs >= 0):
        raise ValueError(f"{name} must be non-decreasing")
