"""The shared failure-detection service (monitor side).

§V-C Step 4: "The FD service uses Δi_min for sending heartbeats and
computes freshness points τ_{i,j} differently for each app_j by using each
Δto_j".  The crucial efficiency property is that the *estimation* work is
shared: the service maintains one set of arrival windows; each application
only contributes a constant margin added to the common expected-arrival
estimate.  q therefore does O(windows) work per heartbeat regardless of how
many applications are registered, and each application sees exactly the
output a dedicated detector with its margin would produce.

:class:`SharedFDMonitor` is that monitor-side engine (usable directly in
the simulator); :class:`FDService` wraps it together with the §V-C
configuration procedure, going from application QoS tuples straight to a
running shared monitor.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro._validation import ensure_non_negative, ensure_positive
from repro.core.estimation import ArrivalEstimator
from repro.core.freshness import FreshnessOutput
from repro.qos.estimators import NetworkBehavior
from repro.qos.shared import SharedConfiguration, combine
from repro.service.application import Application

__all__ = ["SharedFDMonitor", "FDService"]


class SharedFDMonitor:
    """One estimation state, one heartbeat stream, per-app freshness points.

    Parameters
    ----------
    interval:
        The shared heartbeat interval Δi_min.
    margins:
        ``app name -> Δto_j`` (each application's adapted safety margin).
    window_sizes:
        Estimation windows shared by all applications; the default
        ``(1, 1000)`` runs the service on the paper's 2W-FD, its
        best-performing detector (a single-window tuple yields Chen's FD).
    """

    def __init__(
        self,
        interval: float,
        margins: Mapping[str, float],
        window_sizes: Sequence[int] = (1, 1000),
    ):
        ensure_positive(interval, "interval")
        if not margins:
            raise ValueError("at least one application margin is required")
        self._interval = float(interval)
        self._margins: Dict[str, float] = {
            name: ensure_non_negative(m, f"margin[{name}]")
            for name, m in margins.items()
        }
        if not window_sizes:
            raise ValueError("at least one window size is required")
        self._estimators = tuple(
            ArrivalEstimator(w, interval) for w in window_sizes
        )
        self._outputs: Dict[str, FreshnessOutput] = {
            name: FreshnessOutput() for name in self._margins
        }
        self._largest_seq = 0
        self._deadlines: Dict[str, float] = {}

    # ------------------------------------------------------------------
    @property
    def interval(self) -> float:
        return self._interval

    @property
    def application_names(self) -> Tuple[str, ...]:
        return tuple(self._margins)

    def margin(self, name: str) -> float:
        return self._margins[name]

    # ------------------------------------------------------------------
    def receive(self, seq: int, arrival: float) -> bool:
        """Deliver one heartbeat; updates every application's output.

        The expected arrival is computed once (max over the shared
        windows, Eq. 12) and each application's freshness point is
        ``EA + Δto_j`` — the §V-C Step 4 rule.
        """
        seq = int(seq)
        if seq <= self._largest_seq:
            return False
        self._largest_seq = seq
        for est in self._estimators:
            est.observe(seq, arrival)
        ea = max(est.expected_arrival(seq + 1) for est in self._estimators)
        for name, margin in self._margins.items():
            deadline = ea + margin
            self._deadlines[name] = deadline
            self._outputs[name].on_heartbeat(arrival, deadline)
        return True

    def is_trusting(self, name: str, now: float) -> bool:
        """Application ``name``'s view of the monitored process at ``now``."""
        deadline = self._deadlines.get(name)
        if deadline is None:
            self._require(name)
            return False
        return now < deadline

    def outputs_at(self, now: float) -> Dict[str, bool]:
        return {name: self.is_trusting(name, now) for name in self._margins}

    def suspicion_deadline(self, name: str) -> float | None:
        self._require(name)
        return self._deadlines.get(name)

    def advance_to(self, now: float) -> None:
        """Materialize deadline expiries up to ``now`` for every application.

        Online users (the live runtime's poll loop) call this so that a
        freshness point passing between heartbeats becomes an S-transition
        at the expiry instant, exactly as the per-detector engines do.
        """
        for out in self._outputs.values():
            out.advance_to(now)

    def transitions(self, name: str) -> List[Tuple[float, bool]]:
        """Application ``name``'s retained transition log (time, trust)."""
        self._require(name)
        return list(self._outputs[name].transitions)

    def n_suspicions(self, name: str) -> int:
        """Total S-transitions ever recorded for ``name`` (O(1))."""
        self._require(name)
        return self._outputs[name].n_suspicions

    def drain_transitions(
        self, name: str, cursor: int
    ) -> Tuple[List[Tuple[float, bool]], int]:
        """``(new transitions, new cursor)`` for ``name`` past ``cursor``.

        Absolute-cursor incremental drain, O(new) per call — the live
        bridge's event-stream hot path.
        """
        self._require(name)
        return self._outputs[name].transitions_since(cursor)

    def set_transition_retention(self, max_retained: int | None) -> None:
        """Bound every application's retained transition log."""
        for out in self._outputs.values():
            out.set_retention(max_retained)

    def finalize(self, end_time: float) -> Dict[str, List[Tuple[float, bool]]]:
        """Close all applications' observation windows; return transitions."""
        return {
            name: out.finalize(end_time) for name, out in self._outputs.items()
        }

    def _require(self, name: str) -> None:
        if name not in self._margins:
            raise KeyError(
                f"unknown application {name!r}; registered: "
                f"{', '.join(self._margins)}"
            )


class FDService:
    """End-to-end shared service: QoS tuples in, shared monitor out.

    Runs the §V-C combination procedure at construction and exposes both
    the resulting configuration (heartbeat interval, per-app margins,
    traffic accounting) and a ready :class:`SharedFDMonitor`.
    """

    def __init__(
        self,
        applications: Sequence[Application],
        behavior: NetworkBehavior,
        window_sizes: Sequence[int] = (1, 1000),
        **configure_kwargs: object,
    ):
        if not applications:
            raise ValueError("at least one application is required")
        names = [app.name for app in applications]
        if len(set(names)) != len(names):
            raise ValueError(f"application names must be unique, got {names}")
        self._applications = tuple(applications)
        self._config: SharedConfiguration = combine(
            [app.spec for app in applications], behavior, **configure_kwargs
        )
        self._monitor = SharedFDMonitor(
            self._config.interval,
            {
                app.spec.name: app.safety_margin
                for app in self._config.applications
            },
            window_sizes=window_sizes,
        )

    @property
    def configuration(self) -> SharedConfiguration:
        return self._config

    @property
    def monitor(self) -> SharedFDMonitor:
        return self._monitor

    @property
    def heartbeat_interval(self) -> float:
        """Δi_min: what the monitored host must be asked to send."""
        return self._config.interval

    @property
    def message_rate(self) -> float:
        return self._config.message_rate

    @property
    def traffic_reduction(self) -> float:
        return self._config.traffic_reduction

    def describe(self) -> str:
        """Human-readable configuration summary."""
        lines = [
            f"Shared FD service: Δi = {self._config.interval:.4g}s "
            f"({self._config.message_rate:.3g} msg/s vs "
            f"{self._config.dedicated_message_rate:.3g} dedicated; "
            f"{100 * self._config.traffic_reduction:.1f}% saved)"
        ]
        for app in self._config.applications:
            lines.append(
                f"  {app.spec.name}: T_D={app.spec.detection_time:g}s  "
                f"Δto {app.dedicated.safety_margin:.4g}s → {app.safety_margin:.4g}s  "
                f"f bound {app.dedicated.mistake_rate_bound:.3g} → "
                f"{app.mistake_rate_bound:.3g}/s"
            )
        return "\n".join(lines)
