"""Multi-host failure-detection service (§V, the full service picture).

§V's opening scenario is broader than one monitored process: "a crash of a
remote host (or process) should be reported by the FD module to all
applications monitoring the failed one."  This module provides that FD
module: applications *subscribe* to the hosts they care about, each with
their own QoS tuple; the service runs, per host, one §V-C combination over
the specs of that host's subscribers and one shared monitor
(:class:`~repro.service.fdservice.SharedFDMonitor`) — so each (app, host)
pair sees a dedicated-looking detector while the machine sends a single
heartbeat stream per monitored host.

Notifications are push-based: subscribers may attach a callback invoked on
every output flip of their (app, host) view, which is how "reported … to
all applications monitoring the failed one" is realized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.qos.estimators import NetworkBehavior
from repro.qos.shared import SharedConfiguration, combine
from repro.service.application import Application
from repro.service.fdservice import SharedFDMonitor

__all__ = ["Subscription", "HostMonitorState", "MultiHostFDService"]

#: Callback signature: (app, host, now, trusted) on every output flip.
Notification = Callable[[str, str, float, bool], None]


@dataclass(frozen=True)
class Subscription:
    """One application's interest in one host, with its QoS tuple."""

    app: Application
    host: str

    def __post_init__(self) -> None:
        if not self.host:
            raise ValueError("a subscription needs a non-empty host name")


@dataclass
class HostMonitorState:
    """Per-host runtime state (configuration + shared monitor)."""

    host: str
    configuration: SharedConfiguration
    monitor: SharedFDMonitor
    last_output: Dict[str, bool]


class MultiHostFDService:
    """One failure-detection module serving many (app, host) pairs.

    Parameters
    ----------
    subscriptions:
        Which application monitors which host (one QoS spec per pair — the
        same application may subscribe to several hosts, possibly with
        different specs by registering distinct :class:`Application`
        objects sharing a name only if their specs agree).
    behavior:
        Per-service network behaviour estimate fed to the configurator.
        (A refinement would estimate per host; the configurator interface
        accepts that by constructing one service per behaviour domain.)
    window_sizes:
        Detector windows for every host monitor (default: the 2W-FD).
    """

    def __init__(
        self,
        subscriptions: Sequence[Subscription],
        behavior: NetworkBehavior,
        window_sizes: Sequence[int] = (1, 1000),
        **configure_kwargs: object,
    ):
        if not subscriptions:
            raise ValueError("at least one subscription is required")
        by_host: Dict[str, List[Application]] = {}
        for sub in subscriptions:
            apps = by_host.setdefault(sub.host, [])
            if any(a.name == sub.app.name for a in apps):
                raise ValueError(
                    f"application {sub.app.name!r} subscribed to host "
                    f"{sub.host!r} twice"
                )
            apps.append(sub.app)
        self._hosts: Dict[str, HostMonitorState] = {}
        for host, apps in by_host.items():
            config = combine(
                [a.spec for a in apps], behavior, **configure_kwargs
            )
            monitor = SharedFDMonitor(
                config.interval,
                {a.spec.name: a.safety_margin for a in config.applications},
                window_sizes=window_sizes,
            )
            self._hosts[host] = HostMonitorState(
                host=host,
                configuration=config,
                monitor=monitor,
                last_output={a.name: False for a in apps},
            )
        self._listeners: List[Notification] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hosts(self) -> Tuple[str, ...]:
        return tuple(self._hosts)

    def subscribers_of(self, host: str) -> Tuple[str, ...]:
        return self._state(host).monitor.application_names

    def heartbeat_interval(self, host: str) -> float:
        """Δi_min the service asks ``host`` to send at."""
        return self._state(host).configuration.interval

    def total_message_rate(self) -> float:
        """Heartbeats per second across all monitored hosts."""
        return sum(s.configuration.message_rate for s in self._hosts.values())

    def dedicated_message_rate(self) -> float:
        """What per-(app, host) dedicated detectors would send in total."""
        return sum(
            s.configuration.dedicated_message_rate for s in self._hosts.values()
        )

    def traffic_reduction(self) -> float:
        dedicated = self.dedicated_message_rate()
        return 1.0 - self.total_message_rate() / dedicated if dedicated else 0.0

    # ------------------------------------------------------------------
    # Runtime
    # ------------------------------------------------------------------
    def subscribe_notifications(self, callback: Notification) -> None:
        """Attach a callback fired on every (app, host) output flip."""
        self._listeners.append(callback)

    def receive(self, host: str, seq: int, arrival: float) -> bool:
        """Deliver a heartbeat from ``host``; notify affected subscribers."""
        state = self._state(host)
        accepted = state.monitor.receive(seq, arrival)
        self._notify(state, arrival)
        return accepted

    def poll(self, now: float) -> None:
        """Materialize deadline expiries on every host monitor."""
        for state in self._hosts.values():
            self._notify(state, now)

    def is_trusting(self, app: str, host: str, now: float) -> bool:
        """The (app, host) view at ``now``."""
        return self._state(host).monitor.is_trusting(app, now)

    def crashed_hosts(self, app: str, now: float) -> Tuple[str, ...]:
        """Hosts ``app`` currently suspects (its crash report set)."""
        return tuple(
            host
            for host, state in self._hosts.items()
            if app in state.monitor.application_names
            and not state.monitor.is_trusting(app, now)
        )

    # ------------------------------------------------------------------
    def _state(self, host: str) -> HostMonitorState:
        try:
            return self._hosts[host]
        except KeyError:
            raise KeyError(
                f"unknown host {host!r}; monitored: {list(self._hosts)}"
            ) from None

    def _notify(self, state: HostMonitorState, now: float) -> None:
        for app in state.monitor.application_names:
            current = state.monitor.is_trusting(app, now)
            if current != state.last_output[app]:
                state.last_output[app] = current
                for listener in self._listeners:
                    listener(app, state.host, now, current)
