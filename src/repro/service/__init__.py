"""Failure detection as a service (paper §V).

Multiple applications on one host monitor the same remote process with
*one* heartbeat stream while each sees a dedicated-looking failure detector
honouring its own QoS tuple:

- :mod:`repro.service.application` — application handles and QoS specs,
- :mod:`repro.service.fdservice` — the shared monitor: one estimation
  state, one heartbeat stream at Δi_min, per-application freshness points,
- :mod:`repro.service.multihost` — the full §V picture: applications
  subscribe to the hosts they monitor; a crash is reported to every
  subscriber of the failed host,
- :mod:`repro.service.analysis` — empirical shared-vs-dedicated comparison
  (the paper's §VI future-work study, implemented here as an extension).
"""

from repro.service.application import Application
from repro.service.analysis import (
    ApplicationComparison,
    SharedServiceComparison,
    compare_shared_vs_dedicated,
)
from repro.service.fdservice import FDService, SharedFDMonitor
from repro.service.multihost import MultiHostFDService, Subscription

__all__ = [
    "Application",
    "ApplicationComparison",
    "FDService",
    "SharedFDMonitor",
    "MultiHostFDService",
    "SharedServiceComparison",
    "Subscription",
    "compare_shared_vs_dedicated",
]
