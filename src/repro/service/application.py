"""Application handles for the shared failure-detection service."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.qos.spec import QoSSpec

__all__ = ["Application"]


@dataclass(frozen=True)
class Application:
    """An application (or VM) registered with the shared FD service.

    Each application brings its own QoS requirement tuple (§V-B: "we
    propose that applications express their QoS requirements as a tuple
    (T_D^U, T_MR^U, T_M^U)").  The ``name`` keys per-application outputs.
    """

    name: str
    spec: QoSSpec

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an application needs a non-empty name")
        # Propagate the name into the spec label for readable reports.
        if not self.spec.name:
            object.__setattr__(
                self,
                "spec",
                QoSSpec(
                    detection_time=self.spec.detection_time,
                    mistake_rate=self.spec.mistake_rate,
                    mistake_duration=self.spec.mistake_duration,
                    name=self.name,
                ),
            )

    def __str__(self) -> str:
        return f"Application({self.spec})"
