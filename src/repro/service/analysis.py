"""Empirical shared-vs-dedicated comparison (the paper's §VI future work).

The paper *argues* (§V-C1) that sharing improves adapted applications' QoS
and reduces traffic, and names the empirical verification as future work.
This module performs it: for a given set of applications and a network, it

1. runs the §V-C configuration (dedicated per-app configs + shared Δi_min),
2. generates one heartbeat trace per *distinct* heartbeat interval over the
   same link model and seed horizon,
3. replays each application both ways — dedicated (its own Δi_j, Δto_j)
   and shared (Δi_min, adapted Δto'_j) — with the same detector family, and
4. reports measured mistake rate / mistake duration / query accuracy /
   detection time per application, plus measured message counts.

The §V-C1 predictions to check: detection time preserved; adapted apps'
mistake rate and duration no worse (usually better); traffic reduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro._validation import ensure_positive
from repro.net.link import Link
from repro.qos.estimators import NetworkBehavior, estimate_network_behavior
from repro.qos.metrics import QoSMetrics
from repro.qos.shared import SharedConfiguration, combine
from repro.replay.engine import replay_detector
from repro.replay.kernels import make_kernel
from repro.service.application import Application
from repro.traces.synth import generate_trace
from repro.traces.trace import HeartbeatTrace

__all__ = [
    "ApplicationComparison",
    "SharedServiceComparison",
    "compare_shared_vs_dedicated",
]


@dataclass(frozen=True)
class ApplicationComparison:
    """One application's measured QoS, dedicated vs shared."""

    name: str
    dedicated_interval: float
    dedicated_margin: float
    shared_interval: float
    shared_margin: float
    dedicated_metrics: QoSMetrics
    shared_metrics: QoSMetrics
    dedicated_detection_time: float
    shared_detection_time: float

    @property
    def mistake_rate_improved(self) -> bool:
        """§V-C1: adapted applications should not get a worse mistake rate."""
        return self.shared_metrics.mistake_rate <= self.dedicated_metrics.mistake_rate

    @property
    def detection_time_preserved(self) -> bool:
        """T_D = Δi + Δto is identical by construction; compare configured."""
        return np.isclose(
            self.dedicated_interval + self.dedicated_margin,
            self.shared_interval + self.shared_margin,
        )


@dataclass(frozen=True)
class SharedServiceComparison:
    """Fleet-level outcome of the shared-vs-dedicated experiment."""

    configuration: SharedConfiguration
    applications: Tuple[ApplicationComparison, ...]
    shared_messages_sent: int
    dedicated_messages_sent: int

    @property
    def measured_traffic_reduction(self) -> float:
        if self.dedicated_messages_sent == 0:
            return 0.0
        return 1.0 - self.shared_messages_sent / self.dedicated_messages_sent


def _trace_for_interval(
    interval: float, duration: float, link: Link, seed: int
) -> HeartbeatTrace:
    n_sent = max(2, int(round(duration / interval)))
    return generate_trace(n_sent, interval, link, rng=seed)


def compare_shared_vs_dedicated(
    applications: Sequence[Application],
    link: Link,
    *,
    duration: float = 3600.0,
    behavior: NetworkBehavior | None = None,
    window_sizes: Sequence[int] = (1, 1000),
    seed: int = 0,
    **configure_kwargs: object,
) -> SharedServiceComparison:
    """Run the full empirical comparison.

    Parameters
    ----------
    applications:
        The applications sharing (or not) the service.
    link:
        The network between monitored and monitoring host.
    duration:
        Virtual experiment length in seconds (per configuration).
    behavior:
        The (p_L, V(D)) fed to the configurator; when None it is estimated
        from a probe trace over ``link`` — i.e. the service measures the
        network before configuring, as §V-A1 prescribes.
    window_sizes:
        Detector windows used for *both* arms (default: the 2W-FD).
    seed:
        Base RNG seed; each distinct heartbeat interval gets its own
        deterministic stream.
    """
    ensure_positive(duration, "duration")
    if behavior is None:
        probe = _trace_for_interval(0.1, min(duration, 600.0), link, seed=seed + 987)
        behavior = estimate_network_behavior(probe)
    config = combine(
        [app.spec for app in applications], behavior, **configure_kwargs
    )

    # One trace per distinct interval (dedicated intervals + the shared one),
    # all over the same link; the shared arm replays the Δi_min trace with
    # per-application margins.
    intervals = {round(config.interval, 12): config.interval}
    for app in config.applications:
        intervals.setdefault(round(app.dedicated.interval, 12), app.dedicated.interval)
    traces: Dict[float, HeartbeatTrace] = {}
    kernels: Dict[float, object] = {}
    for i, (key, interval) in enumerate(sorted(intervals.items())):
        trace = _trace_for_interval(interval, duration, link, seed=seed + i)
        traces[key] = trace
        kernels[key] = make_kernel("2w-fd", trace, window_sizes=window_sizes)

    shared_key = round(config.interval, 12)
    comparisons = []
    for app in config.applications:
        ded_key = round(app.dedicated.interval, 12)
        ded = replay_detector(
            kernels[ded_key], traces[ded_key], app.dedicated.safety_margin,
            collect_gaps=False,
        )
        shr = replay_detector(
            kernels[shared_key], traces[shared_key], app.safety_margin,
            collect_gaps=False,
        )
        comparisons.append(
            ApplicationComparison(
                name=app.spec.name,
                dedicated_interval=app.dedicated.interval,
                dedicated_margin=app.dedicated.safety_margin,
                shared_interval=config.interval,
                shared_margin=app.safety_margin,
                dedicated_metrics=ded.metrics,
                shared_metrics=shr.metrics,
                dedicated_detection_time=ded.detection_time,
                shared_detection_time=shr.detection_time,
            )
        )
    dedicated_sent = sum(traces[round(a.dedicated.interval, 12)].n_sent for a in config.applications)
    return SharedServiceComparison(
        configuration=config,
        applications=tuple(comparisons),
        shared_messages_sent=traces[shared_key].n_sent,
        dedicated_messages_sent=dedicated_sent,
    )
