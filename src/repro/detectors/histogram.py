"""Histogram-based accrual failure detector (extension; Satzger et al. 2007).

The φ detector (§II-B3) assumes normal interarrival gaps and the ED
detector (§II-B4) exponential ones.  The third accrual variant from the
same literature — and the one production systems tend to ship — drops the
parametric assumption entirely: the suspicion level is the *empirical*
fraction of recent gaps smaller than the elapsed time,

    h(now) = #{gaps ≤ now − T_last} / n

and thresholding ``h ≥ H`` is equivalent to the deadline

    d = T_last + Quantile_H(recent gaps)

Included here because the paper's comparison set is parametric-accrual
only; the histogram variant shows where non-parametric estimation lands on
the same T_D/accuracy axes (benchmarkable via the same harness).

The online class keeps the window *sorted* (`bisect.insort` over a
``deque`` mirror), so each heartbeat costs O(window) memory moves and the
quantile lookup is O(1) — fine for live monitoring; the replay kernel
(:class:`repro.replay.kernels.HistogramKernel`) uses chunked
``sliding_window_view`` quantiles instead.
"""

from __future__ import annotations

import bisect
import math
from collections import deque

from repro._validation import ensure_int_at_least
from repro.core.base import HeartbeatFailureDetector

__all__ = ["HistogramAccrualFailureDetector"]


class HistogramAccrualFailureDetector(HeartbeatFailureDetector):
    """Accrual detector with an empirical (histogram) gap distribution.

    Parameters
    ----------
    interval:
        Heartbeat interval Δi; used as the warm-up gap estimate.
    threshold:
        Suspicion threshold H ∈ (0, 1]: suspect once the elapsed silence
        exceeds the H-quantile of recent gaps.  H = 1 waits for the largest
        recent gap.
    window_size:
        Number of retained interarrival gaps.
    margin_factor:
        Multiplier applied to the quantile (> 1 adds headroom beyond the
        worst observed gap — with an empirical distribution the H=1
        quantile is *exactly* the recent maximum, which regular traffic
        touches constantly; production implementations scale it).
    """

    name = "histogram"

    def __init__(
        self,
        interval: float,
        threshold: float,
        window_size: int = 1000,
        margin_factor: float = 1.0,
    ):
        super().__init__(interval)
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must lie in (0, 1], got {threshold}")
        if margin_factor <= 0.0:
            raise ValueError(f"margin_factor must be positive, got {margin_factor}")
        ensure_int_at_least(window_size, 1, "window_size")
        self._threshold = float(threshold)
        self._factor = float(margin_factor)
        self._capacity = int(window_size)
        self._fifo: deque = deque()
        self._sorted: list = []
        self._prev_arrival: float | None = None

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def window_size(self) -> int:
        return self._capacity

    def quantile(self) -> float:
        """The H-quantile of retained gaps (nominal interval during warm-up).

        Uses the 'inverted CDF' convention: the smallest retained gap g
        with ``#{gaps ≤ g}/n ≥ H`` — matching ``numpy.quantile(...,
        method='inverted_cdf')``, which the replay kernel uses.
        """
        if not self._sorted:
            return self.interval
        n = len(self._sorted)
        rank = max(0, math.ceil(self._threshold * n) - 1)
        return self._sorted[rank]

    def suspicion_level(self, now: float) -> float:
        """h(now): empirical fraction of recent gaps ≤ the elapsed silence."""
        if self._last_arrival is None:
            return 1.0
        if not self._sorted:
            return 0.0 if now - self._last_arrival < self.interval else 1.0
        elapsed = (now - self._last_arrival) / self._factor
        return bisect.bisect_right(self._sorted, elapsed) / len(self._sorted)

    def _update(self, seq: int, arrival: float) -> None:
        if self._prev_arrival is not None:
            gap = arrival - self._prev_arrival
            if len(self._fifo) == self._capacity:
                oldest = self._fifo.popleft()
                idx = bisect.bisect_left(self._sorted, oldest)
                self._sorted.pop(idx)
            self._fifo.append(gap)
            bisect.insort(self._sorted, gap)
        self._prev_arrival = arrival

    def _deadline(self, seq: int, arrival: float) -> float:
        return arrival + self._factor * self.quantile()
