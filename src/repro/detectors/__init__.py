"""Baseline failure detectors the paper compares against (§II-B).

- :mod:`repro.detectors.chen` — Chen et al.'s NFD-E detector (Eq. 1-2),
- :mod:`repro.detectors.chen_sync` — Chen's NFD-S variant for synchronized
  clocks (exact freshness points from known send times),
- :mod:`repro.detectors.bertier` — Bertier et al.'s detector with
  Jacobson-adapted safety margin (Eq. 3-6),
- :mod:`repro.detectors.accrual` — the φ accrual detector (Eq. 7-9),
- :mod:`repro.detectors.exponential` — the ED accrual detector (Eq. 10-11),
- :mod:`repro.detectors.timeout` — a naive fixed-timeout detector (not in
  the paper; included as an experimental control),
- :mod:`repro.detectors.adaptive` — extension: a 2W-FD whose margin tracks
  an accuracy bound via periodic reconfiguration (§V-A closing remark),
- :mod:`repro.detectors.registry` — name → constructor lookup used by the
  CLI and experiment harness.

The paper's own contribution lives in :mod:`repro.core.twofd`.
"""

from repro.core.base import HeartbeatFailureDetector
from repro.detectors.accrual import PhiAccrualFailureDetector
from repro.detectors.adaptive import AdaptiveTwoWindowFailureDetector
from repro.detectors.bertier import BertierFailureDetector
from repro.detectors.chen import ChenFailureDetector
from repro.detectors.chen_sync import SynchronizedChenFailureDetector
from repro.detectors.exponential import EDFailureDetector
from repro.detectors.histogram import HistogramAccrualFailureDetector
from repro.detectors.registry import available_detectors, make_detector
from repro.detectors.timeout import FixedTimeoutFailureDetector

__all__ = [
    "AdaptiveTwoWindowFailureDetector",
    "BertierFailureDetector",
    "ChenFailureDetector",
    "EDFailureDetector",
    "FixedTimeoutFailureDetector",
    "HistogramAccrualFailureDetector",
    "HeartbeatFailureDetector",
    "PhiAccrualFailureDetector",
    "SynchronizedChenFailureDetector",
    "available_detectors",
    "make_detector",
]
