"""Chen's synchronized-clock detector (NFD-S; paper §II-B1, first part).

Before introducing expected-arrival estimation, §II-B1 describes Chen's
algorithm for the case where q can compute p's send times directly: the
monitor "shifts the σ_i forward by δ to obtain the sequence of freshness
points τ_i = σ_i + δ".  With heartbeat m_i sent at ``i·Δi`` (Alg. 1) and
clocks synchronized (or with a known offset), the freshness point after
accepting ``m_l`` is simply

    τ_{l+1} = (l + 1)·Δi + δ + offset

No window, no estimation — the deadline is exact, making NFD-S the ideal
baseline for testing the estimation layer: on a skew-free trace, NFD-E's
estimates converge to NFD-S's exact freshness points as the window grows
over clean traffic, and the worst-case detection-time bound
``T_D ≤ Δi + δ`` holds deterministically.
"""

from __future__ import annotations

from repro._validation import ensure_non_negative
from repro.core.base import HeartbeatFailureDetector

__all__ = ["SynchronizedChenFailureDetector"]


class SynchronizedChenFailureDetector(HeartbeatFailureDetector):
    """Chen's NFD-S: exact freshness points from known send times.

    Parameters
    ----------
    interval:
        Heartbeat interval Δi (seconds).
    shift:
        The forward shift δ (plays the role Δto plays in NFD-E).
    clock_offset:
        Known offset of p's clock as seen by q (0 for synchronized clocks):
        ``m_i`` is taken to have been sent at ``i·Δi + clock_offset`` on
        q's clock.
    """

    name = "chen-sync"

    def __init__(self, interval: float, shift: float, clock_offset: float = 0.0):
        super().__init__(interval)
        self._shift = ensure_non_negative(shift, "shift")
        self._clock_offset = float(clock_offset)

    @property
    def shift(self) -> float:
        """The forward shift δ."""
        return self._shift

    @property
    def clock_offset(self) -> float:
        return self._clock_offset

    def _update(self, seq: int, arrival: float) -> None:
        pass  # no estimation state: send times are known exactly

    def _deadline(self, seq: int, arrival: float) -> float:
        send_next = (seq + 1) * self.interval + self._clock_offset
        return send_next + self._shift
