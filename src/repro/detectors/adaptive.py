"""Adaptive-margin Two-Window detector (extension; §V-A closing remark).

Combines the 2W-FD's per-heartbeat burst tolerance with configuration-scale
adaptivity: the safety margin is not a constant Δto but the output of an
:class:`~repro.qos.adaptive.AdaptiveMarginController`, which re-runs the
accuracy-bound inversion of Chen's Eq. 16 on fresh (p_L, V(D)) estimates
every ``update_period`` of traffic.  The detector therefore tracks a target
*mistake rate* instead of a target detection time: detection is as fast as
the current network permits.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro._validation import ensure_int_at_least
from repro.core.base import HeartbeatFailureDetector
from repro.core.estimation import ArrivalEstimator
from repro.qos.adaptive import AdaptiveMarginController

__all__ = ["AdaptiveTwoWindowFailureDetector"]


class AdaptiveTwoWindowFailureDetector(HeartbeatFailureDetector):
    """2W-FD whose margin tracks an accuracy bound (T_MR^U) adaptively.

    Parameters
    ----------
    interval:
        Heartbeat interval Δi.
    max_mistake_rate:
        The accuracy bound the margin is chosen to guarantee (per the
        Eq. 16 bound, not merely empirically).
    window_sizes:
        The 2W-FD estimation windows (default (1, 1000), the paper's best).
    update_period, estimator_window, initial_margin:
        Forwarded to :class:`AdaptiveMarginController`.
    """

    name = "adaptive-2w-fd"

    def __init__(
        self,
        interval: float,
        max_mistake_rate: float,
        window_sizes: Sequence[int] = (1, 1000),
        *,
        update_period: float = 60.0,
        estimator_window: int = 2000,
        initial_margin: float | None = None,
    ):
        super().__init__(interval)
        sizes = tuple(ensure_int_at_least(w, 1, "window size") for w in window_sizes)
        if not sizes:
            raise ValueError("at least one window size is required")
        self._estimators = tuple(ArrivalEstimator(w, interval) for w in sizes)
        self._window_sizes = sizes
        self.controller = AdaptiveMarginController(
            interval,
            max_mistake_rate,
            update_period=update_period,
            estimator_window=estimator_window,
            initial_margin=initial_margin,
        )

    @property
    def window_sizes(self) -> Tuple[int, ...]:
        return self._window_sizes

    @property
    def safety_margin(self) -> float:
        """The margin currently in force (changes over time)."""
        return self.controller.margin

    def bind_shared_arrivals(self, stats) -> bool:
        """Consume shared Eq. 2 windows; the margin controller (its own
        p_L/V(D) estimation state) stays private — it is not window-shaped."""
        if stats.interval != self.interval or self.largest_seq:
            return False
        self._estimators = tuple(stats.estimator(w) for w in self._window_sizes)
        self.shared_arrivals = True
        return True

    def _update(self, seq: int, arrival: float) -> None:
        if not self.shared_arrivals:
            for est in self._estimators:
                est.observe(seq, arrival)
        self.controller.observe(seq, arrival)

    def _deadline(self, seq: int, arrival: float) -> float:
        ea = max(est.expected_arrival(seq + 1) for est in self._estimators)
        return ea + self.controller.margin
