"""The Exponential Distribution failure detector (paper §II-B4; ED FD).

Same accrual principle as the φ detector, but the interarrival distribution
is modelled as exponential (Eq. 10-11):

    e_d = F(T_now − T_last),    F(t) = 1 − e^{−t/μ}

with μ the windowed mean interarrival time.  Suspecting when ``e_d ≥ E``
for a threshold ``E ∈ (0, 1)`` is equivalent to the suspicion deadline

    d = T_last − μ · ln(1 − E)

The exponential CDF approaches 1 much more slowly than the normal's, so the
ED curve extends into the conservative range where φ's quantile has already
saturated — visible in the paper's Fig. 6-7.
"""

from __future__ import annotations

import math

from repro._validation import ensure_int_at_least
from repro.core.base import HeartbeatFailureDetector
from repro.core.windows import SlidingWindow

__all__ = ["EDFailureDetector", "ed_timeout_factor"]


def ed_timeout_factor(threshold: float) -> float:
    """``−ln(1 − E)``: the timeout in units of the mean interarrival μ."""
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must lie in (0, 1), got {threshold}")
    return -math.log1p(-threshold)


class EDFailureDetector(HeartbeatFailureDetector):
    """Exponential-distribution accrual detector.

    Parameters
    ----------
    interval:
        Heartbeat interval Δi (seconds); warm-up value for μ.
    threshold:
        Suspicion threshold E ∈ (0, 1).
    window_size:
        Number of retained interarrival samples (paper uses 1000).
    """

    name = "ed"

    #: All estimation state is the shared gap window itself: once bound,
    #: _update has nothing left to do (the batched fast path relies on it).
    shared_update_noop = True

    def __init__(self, interval: float, threshold: float, window_size: int = 1000):
        super().__init__(interval)
        self._factor = ed_timeout_factor(threshold)
        self._threshold = float(threshold)
        ensure_int_at_least(window_size, 1, "window_size")
        self._gaps = SlidingWindow(window_size)
        self._prev_arrival: float | None = None

    @property
    def threshold(self) -> float:
        """The suspicion threshold E."""
        return self._threshold

    @property
    def window_size(self) -> int:
        return self._gaps.capacity

    def mean_interarrival(self) -> float:
        """Current windowed μ (the nominal interval during warm-up)."""
        if len(self._gaps) == 0:
            return self.interval
        return self._gaps.mean()

    def suspicion_level(self, now: float) -> float:
        """e_d(now) ∈ [0, 1) per Eq. 10-11."""
        if self._last_arrival is None:
            return 1.0
        mu = self.mean_interarrival()
        if mu <= 0.0:
            return 1.0
        return -math.expm1(-(now - self._last_arrival) / mu)

    def bind_shared_arrivals(self, stats) -> bool:
        """Consume the shared interarrival-gap window of this size."""
        if stats.interval != self.interval or self.largest_seq:
            return False
        self._gaps = stats.gap_window(self.window_size)
        self.shared_arrivals = True
        return True

    def _update(self, seq: int, arrival: float) -> None:
        if self.shared_arrivals:
            return  # the shared gap window is pushed once, upstream
        if self._prev_arrival is not None:
            self._gaps.push(arrival - self._prev_arrival)
        self._prev_arrival = arrival

    def _deadline(self, seq: int, arrival: float) -> float:
        # mean_interarrival() unrolled over the gap window's running sums
        # (SlidingWindow.mean() verbatim) — no method-call chain on the
        # per-heartbeat path.
        g = self._gaps
        c = g._count
        if c == 0:
            return arrival + self._interval * self._factor
        return arrival + (g._baseline + g._sum / c) * self._factor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EDFailureDetector(interval={self.interval}, "
            f"threshold={self._threshold}, window_size={self.window_size})"
        )
