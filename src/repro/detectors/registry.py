"""Name → detector-constructor registry.

Gives the CLI, the experiment harness, and downstream users a uniform way to
instantiate any detector from a name and keyword parameters, and documents
which parameter each algorithm exposes as its accuracy/speed tuning knob
(the quantity swept on the x-axis of the paper's figures).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from repro.core.base import HeartbeatFailureDetector
from repro.core.twofd import MultiWindowFailureDetector, TwoWindowFailureDetector
from repro.detectors.accrual import PhiAccrualFailureDetector
from repro.detectors.adaptive import AdaptiveTwoWindowFailureDetector
from repro.detectors.bertier import BertierFailureDetector
from repro.detectors.chen import ChenFailureDetector
from repro.detectors.chen_sync import SynchronizedChenFailureDetector
from repro.detectors.exponential import EDFailureDetector
from repro.detectors.histogram import HistogramAccrualFailureDetector
from repro.detectors.timeout import FixedTimeoutFailureDetector

__all__ = ["available_detectors", "make_detector", "tuning_parameter"]

_FACTORIES: Dict[str, Callable[..., HeartbeatFailureDetector]] = {
    "2w-fd": TwoWindowFailureDetector,
    "adaptive-2w-fd": AdaptiveTwoWindowFailureDetector,
    "mw-fd": MultiWindowFailureDetector,
    "chen": ChenFailureDetector,
    "chen-sync": SynchronizedChenFailureDetector,
    "bertier": BertierFailureDetector,
    "phi": PhiAccrualFailureDetector,
    "ed": EDFailureDetector,
    "histogram": HistogramAccrualFailureDetector,
    "fixed-timeout": FixedTimeoutFailureDetector,
}

#: The per-algorithm tuning knob the paper sweeps (None = not tunable).
_TUNING: Dict[str, str | None] = {
    "2w-fd": "safety_margin",
    "adaptive-2w-fd": None,
    "mw-fd": "safety_margin",
    "chen": "safety_margin",
    "chen-sync": "shift",
    "bertier": None,
    "phi": "threshold",
    "ed": "threshold",
    "histogram": "threshold",
    "fixed-timeout": "timeout",
}


def available_detectors() -> tuple[str, ...]:
    """Registered detector names."""
    return tuple(sorted(_FACTORIES))


def tuning_parameter(name: str) -> str | None:
    """The keyword argument swept to trade detection time for accuracy."""
    _require(name)
    return _TUNING[name]


def make_detector(
    name: str, interval: float, /, **params: object
) -> HeartbeatFailureDetector:
    """Instantiate detector ``name`` with the given heartbeat interval.

    ``params`` are passed to the constructor verbatim, e.g.::

        make_detector("2w-fd", 0.1, safety_margin=0.115)
        make_detector("phi", 0.1, threshold=3.0, window_size=1000)
    """
    _require(name)
    return _FACTORIES[name](interval, **params)


def _require(name: str) -> None:
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown detector {name!r}; available: {', '.join(available_detectors())}"
        )
