"""Name → detector-constructor registry.

Gives the CLI, the experiment harness, and downstream users a uniform way to
instantiate any detector from a name and keyword parameters, and documents
which parameter each algorithm exposes as its accuracy/speed tuning knob
(the quantity swept on the x-axis of the paper's figures).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from repro.core.base import HeartbeatFailureDetector
from repro.core.twofd import MultiWindowFailureDetector, TwoWindowFailureDetector
from repro.detectors.accrual import PhiAccrualFailureDetector
from repro.detectors.adaptive import AdaptiveTwoWindowFailureDetector
from repro.detectors.bertier import BertierFailureDetector
from repro.detectors.chen import ChenFailureDetector
from repro.detectors.chen_sync import SynchronizedChenFailureDetector
from repro.detectors.exponential import EDFailureDetector
from repro.detectors.histogram import HistogramAccrualFailureDetector
from repro.detectors.timeout import FixedTimeoutFailureDetector

__all__ = [
    "available_detectors",
    "default_params",
    "make_detector",
    "make_tuned",
    "tuning_parameter",
]

_FACTORIES: Dict[str, Callable[..., HeartbeatFailureDetector]] = {
    "2w-fd": TwoWindowFailureDetector,
    "adaptive-2w-fd": AdaptiveTwoWindowFailureDetector,
    "mw-fd": MultiWindowFailureDetector,
    "chen": ChenFailureDetector,
    "chen-sync": SynchronizedChenFailureDetector,
    "bertier": BertierFailureDetector,
    "phi": PhiAccrualFailureDetector,
    "ed": EDFailureDetector,
    "histogram": HistogramAccrualFailureDetector,
    "fixed-timeout": FixedTimeoutFailureDetector,
}

#: The per-algorithm tuning knob the paper sweeps (None = not tunable).
_TUNING: Dict[str, str | None] = {
    "2w-fd": "safety_margin",
    "adaptive-2w-fd": None,
    "mw-fd": "safety_margin",
    "chen": "safety_margin",
    "chen-sync": "shift",
    "bertier": None,
    "phi": "threshold",
    "ed": "threshold",
    "histogram": "threshold",
    "fixed-timeout": "timeout",
}


#: Required constructor arguments that a name-only instantiation must fill in
#: (the adaptive detector tracks a target mistake rate instead of a Δto knob).
_DEFAULTS: Dict[str, Dict[str, object]] = {
    "adaptive-2w-fd": {"max_mistake_rate": 1e-3},
    # The MW-FD generalization needs its window ladder; default to spanning
    # the 2W-FD endpoints (W=1 and W=1000, §V-A) geometrically.
    "mw-fd": {"window_sizes": (1, 10, 100, 1000)},
}


def available_detectors() -> tuple[str, ...]:
    """Registered detector names."""
    return tuple(sorted(_FACTORIES))


def default_params(name: str) -> Dict[str, object]:
    """Constructor defaults needed to build ``name`` from just an interval."""
    _require(name)
    return dict(_DEFAULTS.get(name, {}))


def tuning_parameter(name: str) -> str | None:
    """The keyword argument swept to trade detection time for accuracy."""
    _require(name)
    return _TUNING[name]


def make_detector(
    name: str, interval: float, /, **params: object
) -> HeartbeatFailureDetector:
    """Instantiate detector ``name`` with the given heartbeat interval.

    ``params`` are passed to the constructor verbatim, e.g.::

        make_detector("2w-fd", 0.1, safety_margin=0.115)
        make_detector("phi", 0.1, threshold=3.0, window_size=1000)
    """
    _require(name)
    return _FACTORIES[name](interval, **params)


def make_tuned(
    name: str,
    interval: float,
    param: float | None = None,
    /,
    **extra: object,
) -> HeartbeatFailureDetector:
    """Instantiate ``name`` routing one scalar through its tuning knob.

    The uniform construction path for the CLI (``--param``) and the live
    runtime: ``param`` is mapped onto :func:`tuning_parameter`'s knob, with
    clear errors instead of constructor ``TypeError``\\ s —

    - a tunable detector without a value: ``ValueError`` naming the knob;
    - a non-tunable detector (``bertier``, ``adaptive-2w-fd``) *with* a
      value: ``ValueError`` saying the detector takes none;
    - an unknown name: ``KeyError`` listing the registry.

    Non-tunable detectors are constructed from their documented defaults
    (see :func:`default_params`); ``extra`` keywords are forwarded verbatim
    and may override those defaults.
    """
    knob = tuning_parameter(name)  # validates the name
    kwargs: Dict[str, object] = {**_DEFAULTS.get(name, {}), **extra}
    if knob is None:
        if param is not None:
            raise ValueError(
                f"detector {name!r} has no tuning parameter: it is "
                f"self-configuring, so a tuning value ({param}) cannot be "
                f"applied (see 'repro-fd detectors')"
            )
    else:
        if param is None:
            raise ValueError(
                f"detector {name!r} requires a value for its tuning "
                f"parameter {knob!r} (see 'repro-fd detectors')"
            )
        kwargs[knob] = param
    return _FACTORIES[name](interval, **kwargs)


def _require(name: str) -> None:
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown detector {name!r}; available: {', '.join(available_detectors())}"
        )
