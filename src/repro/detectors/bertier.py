"""Bertier et al.'s failure detector (paper §II-B2).

Bertier's detector estimates expected arrivals exactly as Chen does (Eq. 2)
but replaces the constant safety margin with one adapted per heartbeat by
Jacobson's TCP RTO estimation (Eq. 3-6).  On accepting message ``m_l``:

    error_l     = A_l − EA_l − delay_l
    delay_{l+1} = delay_l + γ·error_l
    var_{l+1}   = var_l + γ·(|error_l| − var_l)
    Δto_{l+1}   = β·delay_{l+1} + φ·var_{l+1}

and the next freshness point is ``τ_{l+1} = EA_{l+1} + Δto_{l+1}``.

Because the margin adapts on its own, Bertier's detector has **no tuning
parameter**: it contributes a single point — not a curve — to the paper's
detection-time/accuracy plots (§IV-C2).

Typical constants, per the paper: γ = 0.1 (importance of a new measure),
β = 1 and φ = 4 (variance weighting, Jacobson's values).
"""

from __future__ import annotations

from repro._validation import ensure_int_at_least, ensure_non_negative
from repro.core.base import HeartbeatFailureDetector
from repro.core.estimation import ArrivalEstimator

__all__ = ["BertierFailureDetector"]


class BertierFailureDetector(HeartbeatFailureDetector):
    """Bertier's adaptive-margin failure detector.

    Parameters
    ----------
    interval:
        Heartbeat interval Δi (seconds).
    window_size:
        Eq. 2 estimation window (paper uses 1000).
    gamma:
        Weight of a new error measurement (Eq. 4-5).
    beta, phi:
        Margin weighting of the smoothed error and its variability (Eq. 6).
    """

    name = "bertier"

    def __init__(
        self,
        interval: float,
        window_size: int = 1000,
        gamma: float = 0.1,
        beta: float = 1.0,
        phi: float = 4.0,
    ):
        super().__init__(interval)
        ensure_int_at_least(window_size, 1, "window_size")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must lie in (0, 1], got {gamma}")
        ensure_non_negative(beta, "beta")
        ensure_non_negative(phi, "phi")
        self._estimator = ArrivalEstimator(window_size, interval)
        self._gamma = float(gamma)
        self._beta = float(beta)
        self._phi = float(phi)
        self._delay = 0.0
        self._var = 0.0
        self._have_prediction = False
        self._shared = None  # SharedArrivalState once bound

    @property
    def window_size(self) -> int:
        return self._estimator.window_size

    @property
    def safety_margin(self) -> float:
        """Current adaptive margin Δto (Eq. 6)."""
        return self._beta * self._delay + self._phi * self._var

    def bind_shared_arrivals(self, stats) -> bool:
        """Consume the shared Eq. 2 window, plus its pre-push mean capture.

        The Jacobson error term needs the prediction held *before* the new
        arrival was folded in; the shared state serves it via
        :meth:`~repro.core.arrivalstats.SharedArrivalState.track_pre_mean`,
        so the error — and therefore the adaptive margin — stays bitwise
        identical to the private-copy path.
        """
        if stats.interval != self.interval or self.largest_seq:
            return False
        size = self.window_size
        self._estimator = stats.estimator(size)
        stats.track_pre_mean(size)
        self._shared = stats
        self._size = size
        # Direct reference to the shared pre-mean store: _update runs per
        # accepted heartbeat, so the lookup skips the accessor frame.
        self._pre_means = stats._pre_means
        self.shared_arrivals = True
        return True

    def _update(self, seq: int, arrival: float) -> None:
        if self.shared_arrivals:
            # The shared window already holds this arrival; the pre-push
            # mean captured upstream is the prediction the private
            # estimator would have produced (None before m_2).
            pre = self._pre_means[self._size]
            if pre is not None:
                error = arrival - (pre + self._interval * seq) - self._delay
            else:
                error = 0.0
            self._delay += self._gamma * error
            self._var += self._gamma * (abs(error) - self._var)
            return
        if self._have_prediction:
            # EA for *this* message, from the window state before folding it
            # in (the prediction the detector actually held).
            predicted = self._estimator.expected_arrival(seq)
            error = arrival - predicted - self._delay
        else:
            # No prediction exists for the very first message.
            error = 0.0
        self._delay += self._gamma * error
        self._var += self._gamma * (abs(error) - self._var)
        self._estimator.observe(seq, arrival)
        self._have_prediction = True

    def _shared_receive(self, seq: int, arrival: float) -> float:
        # _update's shared branch and _deadline fused into one frame (the
        # batched-ingest path calls this once per accepted heartbeat).
        pre = self._pre_means[self._size]
        if pre is not None:
            error = arrival - (pre + self._interval * seq) - self._delay
        else:
            error = 0.0
        self._delay += self._gamma * error
        self._var += self._gamma * (abs(error) - self._var)
        w = self._estimator._window
        return (
            (w._baseline + w._sum / w._count)
            + self._interval * (seq + 1)
            + (self._beta * self._delay + self._phi * self._var)
        )

    def _deadline(self, seq: int, arrival: float) -> float:
        # expected_arrival(seq + 1) + safety_margin, with the window mean
        # read inline (SlidingWindow.mean() verbatim; the window is never
        # empty here — _deadline only runs on accepted heartbeats).
        w = self._estimator._window
        return (
            (w._baseline + w._sum / w._count)
            + self._interval * (seq + 1)
            + (self._beta * self._delay + self._phi * self._var)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BertierFailureDetector(interval={self.interval}, "
            f"window_size={self.window_size}, gamma={self._gamma}, "
            f"beta={self._beta}, phi={self._phi})"
        )
