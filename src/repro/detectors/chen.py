"""Chen et al.'s failure detector (paper §II-B1; NFD-E of Chen et al. 2002).

The monitor shifts each expected arrival forward by a constant safety margin
Δto to obtain freshness points (Eq. 1):

    τ_{l+1} = EA_{l+1} + Δto

with EA estimated over a window of the last *n* received heartbeats (Eq. 2).
q trusts p at time t iff some received message is still fresh at t.

This is exactly the 2W-FD restricted to a single window, and the
implementation says so: one :class:`~repro.core.estimation.ArrivalEstimator`
drives the deadline.  The separate class exists because the paper sweeps
Chen's window size independently and the mistake-intersection experiment
(Fig. 9) compares Chen(n1), Chen(n2) and 2W-FD(n1, n2) side by side.
"""

from __future__ import annotations

from repro._validation import ensure_int_at_least, ensure_non_negative
from repro.core.base import HeartbeatFailureDetector
from repro.core.estimation import ArrivalEstimator

__all__ = ["ChenFailureDetector"]


class ChenFailureDetector(HeartbeatFailureDetector):
    """Chen's QoS failure detector with a single estimation window.

    Parameters
    ----------
    interval:
        Heartbeat interval Δi (seconds).
    safety_margin:
        Constant margin Δto (seconds) added to each expected arrival; the
        tuning knob the paper sweeps to trade detection time for accuracy.
    window_size:
        Number of past heartbeats kept for Eq. 2 (paper default 1000).
    """

    name = "chen"

    #: All estimation state is the shared window itself: once bound,
    #: _update has nothing left to do (the batched fast path relies on it).
    shared_update_noop = True

    def __init__(self, interval: float, safety_margin: float, window_size: int = 1000):
        super().__init__(interval)
        self._safety_margin = ensure_non_negative(safety_margin, "safety_margin")
        ensure_int_at_least(window_size, 1, "window_size")
        self._estimator = ArrivalEstimator(window_size, interval)

    @property
    def safety_margin(self) -> float:
        """The constant safety margin Δto (seconds)."""
        return self._safety_margin

    @property
    def window_size(self) -> int:
        """The estimation window size n."""
        return self._estimator.window_size

    def bind_shared_arrivals(self, stats) -> bool:
        """Consume the shared Eq. 2 window of this detector's size."""
        if stats.interval != self.interval or self.largest_seq:
            return False
        self._estimator = stats.estimator(self.window_size)
        self.shared_arrivals = True
        return True

    def _update(self, seq: int, arrival: float) -> None:
        if self.shared_arrivals:
            return  # the shared state is pushed once, upstream
        self._estimator.observe(seq, arrival)

    def _deadline(self, seq: int, arrival: float) -> float:
        # expected_arrival(seq + 1) + safety_margin, with the window mean
        # read inline (SlidingWindow.mean() verbatim; never empty here —
        # _deadline only runs on accepted heartbeats).
        w = self._estimator._window
        return (
            (w._baseline + w._sum / w._count)
            + self._interval * (seq + 1)
            + self._safety_margin
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChenFailureDetector(interval={self.interval}, "
            f"safety_margin={self._safety_margin}, "
            f"window_size={self.window_size})"
        )
