"""The φ accrual failure detector (paper §II-B3; Hayashibara et al. 2004).

Instead of a binary output, the φ detector exposes a continuous suspicion
level (Eq. 7):

    φ(T_now) = −log10( P_later(T_now − T_last) )

where ``P_later(t) = 1 − F(t)`` and F is the CDF of a normal distribution
fitted (mean μ, variance σ²) to the interarrival times of the last *n*
heartbeats (Eq. 8-9).  A binary detector is recovered by suspecting when
``φ ≥ Φ`` for a threshold Φ; the probability of such a suspicion being a
mistake is about ``10^−Φ``.

For the deadline-based machinery this package uses, crossing ``φ ≥ Φ`` is
equivalent to a suspicion deadline

    d = T_last + μ + σ·z(Φ),   z(Φ) = Normal.ppf(1 − 10^−Φ)

which is how both the online class and the vectorized replay kernel compute
it.  When ``1 − 10^−Φ`` rounds to 1.0 in double precision (Φ ≳ 15.95) the
quantile is infinite and the detector can never suspect — the exact
"rounding error" that makes the φ curve stop early on the conservative side
of the paper's figures (§IV-C2).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import ndtri

from repro._validation import ensure_int_at_least, ensure_non_negative
from repro.core.base import HeartbeatFailureDetector
from repro.core.windows import SlidingWindow

__all__ = ["PhiAccrualFailureDetector", "phi_quantile"]


def phi_quantile(threshold: float) -> float:
    """z(Φ): the standard-normal quantile at probability ``1 − 10^−Φ``.

    Returns ``inf`` when the probability rounds to 1.0 in float64 — the φ
    detector is then unable to suspect at any finite time.
    """
    p = 1.0 - 10.0 ** (-float(threshold))
    if p >= 1.0:
        return math.inf
    if p <= 0.0:
        return -math.inf
    return float(ndtri(p))


class PhiAccrualFailureDetector(HeartbeatFailureDetector):
    """φ accrual detector with a normal interarrival model.

    Parameters
    ----------
    interval:
        Heartbeat interval Δi (seconds); used only as the warm-up mean
        before two heartbeats have been observed.
    threshold:
        The suspicion threshold Φ (the paper's tuning parameter).
    window_size:
        Number of retained interarrival samples (paper uses 1000).
    min_std:
        Optional floor on the estimated standard deviation; 0 keeps the
        textbook behaviour (a perfectly regular trace yields σ = 0 and an
        instant deadline at T_last + μ).
    """

    name = "phi"

    #: All estimation state is the shared gap window itself: once bound,
    #: _update has nothing left to do (the batched fast path relies on it).
    shared_update_noop = True

    def __init__(
        self,
        interval: float,
        threshold: float,
        window_size: int = 1000,
        min_std: float = 0.0,
    ):
        super().__init__(interval)
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        ensure_int_at_least(window_size, 1, "window_size")
        ensure_non_negative(min_std, "min_std")
        self._threshold = float(threshold)
        self._quantile = phi_quantile(threshold)
        self._gaps = SlidingWindow(window_size)
        self._min_std = float(min_std)
        self._warmup_std = max(self._min_std, 0.0)
        self._prev_arrival: float | None = None

    @property
    def threshold(self) -> float:
        """The suspicion threshold Φ."""
        return self._threshold

    @property
    def window_size(self) -> int:
        return self._gaps.capacity

    def interarrival_stats(self) -> tuple[float, float]:
        """Current (μ, σ) of the fitted normal interarrival distribution."""
        if len(self._gaps) == 0:
            # Warm-up: no gap observed yet; assume the nominal interval.
            return self.interval, max(self._min_std, 0.0)
        return self._gaps.mean(), max(self._gaps.std(), self._min_std)

    def phi(self, now: float) -> float:
        """The suspicion level φ(now) (Eq. 7)."""
        if self._last_arrival is None:
            return math.inf
        mu, sigma = self.interarrival_stats()
        elapsed = now - self._last_arrival
        if sigma == 0.0:
            return math.inf if elapsed >= mu else 0.0
        # P_later = 1 - F(elapsed); use the complementary CDF for accuracy.
        from scipy.special import ndtr

        p_later = float(ndtr(-(elapsed - mu) / sigma))
        if p_later <= 0.0:
            return math.inf
        return -math.log10(p_later)

    def bind_shared_arrivals(self, stats) -> bool:
        """Consume the shared interarrival-gap window of this size."""
        if stats.interval != self.interval or self.largest_seq:
            return False
        self._gaps = stats.gap_window(self.window_size)
        self.shared_arrivals = True
        return True

    def _update(self, seq: int, arrival: float) -> None:
        if self.shared_arrivals:
            return  # the shared gap window is pushed once, upstream
        if self._prev_arrival is not None:
            self._gaps.push(arrival - self._prev_arrival)
        self._prev_arrival = arrival

    def _deadline(self, seq: int, arrival: float) -> float:
        # interarrival_stats() unrolled over the gap window's running sums
        # — identical expressions (mean/variance/std verbatim), none of
        # the method-call chain on the per-heartbeat path.  phi_quantile
        # only ever returns a finite value or +inf (Φ > 0), so the
        # isfinite() guard reduces to an == test.
        q = self._quantile
        if q == math.inf:
            return math.inf
        g = self._gaps
        c = g._count
        if c == 0:
            return arrival + self._interval + self._warmup_std * q
        m = g._sum / c
        var = g._sumsq / c - m * m
        sigma = math.sqrt(var) if var > 0.0 else 0.0
        if sigma < self._min_std:
            sigma = self._min_std
        return arrival + (g._baseline + m) + sigma * q

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PhiAccrualFailureDetector(interval={self.interval}, "
            f"threshold={self._threshold}, window_size={self.window_size})"
        )
