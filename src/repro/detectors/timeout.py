"""A naive fixed-timeout failure detector (experimental control).

Not part of the paper's comparison, but the obvious ad-hoc baseline the
introduction argues against: suspect whenever no heartbeat has arrived for
a fixed ``timeout`` seconds, with no arrival-time estimation at all.  It is
equivalent to the φ/ED accruals with a degenerate (constant) interarrival
model, and is useful in ablations to show how much the Eq. 2 estimation —
let alone the two-window max — buys over raw timeouts.
"""

from __future__ import annotations

from repro._validation import ensure_positive
from repro.core.base import HeartbeatFailureDetector

__all__ = ["FixedTimeoutFailureDetector"]


class FixedTimeoutFailureDetector(HeartbeatFailureDetector):
    """Suspect when ``timeout`` seconds pass since the last fresh heartbeat."""

    name = "fixed-timeout"

    def __init__(self, interval: float, timeout: float):
        super().__init__(interval)
        self._timeout = ensure_positive(timeout, "timeout")

    @property
    def timeout(self) -> float:
        return self._timeout

    def _update(self, seq: int, arrival: float) -> None:
        pass  # stateless beyond the base class

    def _deadline(self, seq: int, arrival: float) -> float:
        return arrival + self._timeout

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FixedTimeoutFailureDetector(interval={self.interval}, "
            f"timeout={self._timeout})"
        )
