#!/usr/bin/env python3
"""Live quickstart: real UDP heartbeats, an injected crash, a real T_D.

Everything else in this repository evaluates detectors over *recorded*
arrival times.  This example runs the actual runtime on 127.0.0.1:

- process q (:class:`repro.live.monitor.LiveMonitorServer`) binds a UDP
  socket and runs three detectors from the registry over every peer it
  hears, plus the JSON status endpoint on a local TCP port;
- process p (:class:`repro.live.heartbeater.Heartbeater`) sends a
  heartbeat every 50 ms through a chaos link that drops 5% of packets,
  skews p's clock by 3 s (invisible to detection — DESIGN.md invariant 4),
  and crashes p 2.5 s in;
- the suspicion/trust event stream prints as it happens, the status
  endpoint is polled mid-run like an operator would, and the finished run
  is scored with the same `repro.qos.metrics` as a replayed trace.

Run:  python examples/live_quickstart.py
"""

import asyncio
import json

from repro.live import (
    ChaosSpec,
    Heartbeater,
    LiveMonitor,
    LiveMonitorServer,
    afetch_status,
)
from repro.net.clock import DriftingClock
from repro.net.loss import BernoulliLoss
from repro.qos.metrics import compute_metrics

INTERVAL = 0.05  # Δi: p heartbeats every 50 ms
CRASH_AT = 2.5  # p dies 2.5 s in (p's clock)


async def run() -> None:
    monitor = LiveMonitor(
        INTERVAL,
        detectors=["2w-fd", "bertier", "fixed-timeout"],
        params={"2w-fd": 0.3, "fixed-timeout": 0.4},
    )
    monitor.subscribe(
        lambda e: print(f"  [{e.time:6.3f}s] {e.peer}/{e.detector}: {e.kind.upper()}")
    )

    async with LiveMonitorServer(monitor, port=0, tick=0.01, status_port=0) as server:
        print(f"q: monitoring UDP {server.address[0]}:{server.address[1]}")
        print(f"q: status endpoint on TCP port {server.status.address[1]}\n")

        heartbeater = Heartbeater(
            server.address,
            sender_id="p",
            interval=INTERVAL,
            chaos=ChaosSpec(
                loss=BernoulliLoss(0.05),
                clock=DriftingClock(offset=3.0),
                crash_at=CRASH_AT,
                seed=7,
            ),
        )
        sender = asyncio.create_task(heartbeater.run())

        # Mid-run, ask the status endpoint what q currently believes.
        await asyncio.sleep(CRASH_AT / 2)
        status = await afetch_status(*server.status.address)
        peer = status["peers"]["p"]
        print("\nq's status at half-time (via the TCP endpoint):")
        print(f"  accepted {peer['n_accepted']} heartbeats, last seq {peer['last_seq']}")
        print(f"  estimated p-q clock offset: {peer['clock_offset_estimate']:+.2f}s "
              "(chaos skew + monotonic epoch gap; detection never sees it)")
        print(json.dumps(peer["detectors"], indent=2, sort_keys=True), "\n")

        sent = await sender
        print(f"\np: crashed after sending {sent} heartbeats "
              f"({heartbeater.n_dropped} chaos-dropped)\n")

        # Wait until every detector has noticed the silence.
        while not all(
            not d["trusting"]
            for d in monitor.snapshot()["peers"]["p"]["detectors"].values()
        ):
            await asyncio.sleep(0.02)

    # Score the live run exactly like a replayed one.
    end = monitor.now()
    print("final verdicts (same QoS metrics as trace replay):")
    for name, timeline in monitor.timelines(end)["p"].items():
        m = compute_metrics(timeline)
        crash_suspect = max(
            e.time for e in monitor.events if e.detector == name and not e.trusting
        )
        print(f"  {name:13s} P_A={m.query_accuracy:.4f}  "
              f"suspicions={m.n_mistakes}  "
              f"final suspicion at {crash_suspect:.3f}s")


def main() -> None:
    print(__doc__.split("\n")[0])
    print("=" * 60, "\n")
    asyncio.run(run())


if __name__ == "__main__":
    main()
