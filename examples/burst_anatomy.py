#!/usr/bin/env python3
"""Anatomy of a burst: why two windows (§III-B, made visible).

Injects a *known* 40-second congestion episode into a clean heartbeat
stream (every heartbeat held up by up to 3 s, draining linearly — a queue
filling and emptying) and renders each detector's output timeline around
it.  The ground truth makes the mechanism visible:

- everyone suspects once at the onset (the first held-up heartbeat is
  indistinguishable from a crash);
- Chen with the long window keeps suspecting through the episode — its
  expected-arrival estimate barely moves;
- the short window (and therefore the 2W-FD, which takes the max) jumps to
  the congested timebase after a single heartbeat and rides out the rest.

Run:  python examples/burst_anatomy.py
"""

from repro.experiments.ascii_plot import ascii_timeline
from repro.net.delays import ConstantDelay
from repro.net.link import Link
from repro.replay import episode_reactions, make_kernel
from repro.replay.metrics_kernel import timeline_from_deadlines
from repro.traces import delay_span, generate_trace

INTERVAL = 1.0
MARGIN = 0.5
EPISODE = (300.0, 340.0)


def main() -> None:
    clean = generate_trace(600, INTERVAL, Link(delay_model=ConstantDelay(0.1)), rng=0)
    trace = delay_span(clean, *EPISODE, extra=3.0, drain=True)
    print(
        f"clean stream (Δi = {INTERVAL}s, delay 0.1s) + congestion episode "
        f"[{EPISODE[0]:.0f}s, {EPISODE[1]:.0f}s): heartbeats held up by ≤3s, "
        f"draining linearly.  Δto = {MARGIN}s.\n"
    )

    window = (EPISODE[0] - 10, EPISODE[1] + 15)
    for label, name, kwargs in [
        ("Chen(100)  — long window only", "chen", {"window_size": 100}),
        ("Chen(1)    — short window only", "chen", {"window_size": 1}),
        ("2W-FD(1,100) — max of both", "2w-fd", {"window_sizes": (1, 100)}),
    ]:
        kernel = make_kernel(name, trace, **kwargs)
        timeline = timeline_from_deadlines(
            kernel.t, kernel.deadlines(MARGIN), kernel.end_time
        )
        reaction = episode_reactions(kernel, MARGIN, [EPISODE], slack=10.0)[0]
        print(f"{label}")
        print(ascii_timeline(timeline, *window, width=72))
        print(
            f"  episode cost: {reaction.n_mistakes} mistake(s), "
            f"{reaction.suspicion_time:.1f}s suspected, "
            f"recovered {reaction.recovery_time:.1f}s after onset\n"
        )


if __name__ == "__main__":
    main()
