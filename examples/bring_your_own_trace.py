#!/usr/bin/env python3
"""Bring your own trace: the downstream-user workflow end to end.

You have a heartbeat log from *your* system (here we fabricate one and
export it to the two-column CSV format of the original public trace files).
This example shows the full loop a practitioner would run:

1. import the CSV into a :class:`HeartbeatTrace`;
2. replay the candidate detectors over it and pick an operating point;
3. estimate the network behaviour (p_L, V(D)) and let the configurator
   choose (Δi, Δto) for your QoS requirement;
4. bootstrap the observed delays (:class:`EmpiricalDelay`) to synthesize a
   *longer* trace with the same delay distribution, and verify the chosen
   configuration holds up over more traffic than you logged.

Run:  python examples/bring_your_own_trace.py
"""

import math
import tempfile
from pathlib import Path

from repro.net.delays import EmpiricalDelay, LogNormalDelay
from repro.net.link import Link
from repro.net.loss import BernoulliLoss
from repro.qos import QoSSpec, configure, estimate_network_behavior
from repro.replay import calibrate_to_detection_time, make_kernel, replay_detector
from repro.traces import generate_trace
from repro.traces.io import export_csv, import_csv


def main() -> None:
    # --- 0. a stand-in for "your" logged trace -----------------------------
    production_link = Link(
        delay_model=LogNormalDelay(log_mu=math.log(0.04), log_sigma=0.35),
        loss_model=BernoulliLoss(0.015),
    )
    logged = generate_trace(30_000, 0.1, production_link, rng=99)
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "heartbeats.csv"
        export_csv(logged, csv_path)

        # --- 1. import -----------------------------------------------------
        trace = import_csv(csv_path, interval=0.1)
        print(f"imported: {trace}")

        # --- 2. compare detectors at a 300 ms budget ------------------------
        print("\ndetectors at T_D = 300 ms on your trace:")
        for name, kwargs in [
            ("2w-fd", {"window_sizes": (1, 1000)}),
            ("chen", {"window_size": 1000}),
            ("phi", {"window_size": 1000}),
        ]:
            kernel = make_kernel(name, trace, **kwargs)
            try:
                param = calibrate_to_detection_time(kernel, trace, 0.3)
            except ValueError as exc:
                print(f"  {name:>6}: unreachable ({exc})")
                continue
            r = replay_detector(kernel, trace, param, collect_gaps=False)
            print(
                f"  {name:>6}: mistakes={r.metrics.n_mistakes:>4}  "
                f"P_A={r.metrics.query_accuracy:.6f}"
            )

        # --- 3. configure from your QoS requirement -------------------------
        behavior = estimate_network_behavior(trace)
        spec = QoSSpec.from_recurrence_time(
            detection_time=2.0, recurrence_time=1800.0, mistake_duration=1.0
        )
        cfg = configure(spec, behavior)
        print(f"\nestimated behaviour: {behavior}")
        print(
            f"configured for {spec}:\n  Δi = {cfg.interval:.3f}s, "
            f"Δto = {cfg.safety_margin:.3f}s "
            f"(bound f = {cfg.mistake_rate_bound:.2e}/s)"
        )

        # --- 4. bootstrap a longer synthetic run and verify -----------------
        boot_link = Link(
            delay_model=EmpiricalDelay.from_trace(trace),
            loss_model=BernoulliLoss(behavior.loss_probability),
        )
        horizon = 24 * 3600.0  # a synthetic day at the configured rate
        long_trace = generate_trace(
            int(horizon / cfg.interval), cfg.interval, boot_link, rng=7
        )
        det = replay_detector(
            make_kernel("2w-fd", long_trace, window_sizes=(1, 1000)),
            long_trace,
            cfg.safety_margin,
            collect_gaps=False,
        )
        print(
            f"\nover a bootstrapped day ({long_trace.n_received} heartbeats):\n"
            f"  measured T_MR = {det.metrics.mistake_rate:.2e}/s "
            f"(requirement ≤ {spec.mistake_rate:.2e}/s)\n"
            f"  measured T_M  = {det.metrics.mistake_duration:.3f}s "
            f"(requirement ≤ {spec.mistake_duration:g}s)\n"
            f"  requirement met: "
            f"{'yes' if det.metrics.satisfies(max_mistake_rate=spec.mistake_rate, max_mistake_duration=spec.mistake_duration) else 'no'}"
        )


if __name__ == "__main__":
    main()
