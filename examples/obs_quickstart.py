#!/usr/bin/env python3
"""Observability quickstart: scrape a live monitor like an operator would.

Boots the real loopback runtime with the :mod:`repro.obs` bundle attached
and exercises every telemetry surface this repository exposes:

- one :class:`repro.obs.Observability` shared by sender and monitor: the
  heartbeater counts sends into the same registry the monitor counts
  receipts into, and both record into one heartbeat lifecycle tracer;
- the status endpoint's ``metrics`` command returns a Prometheus text
  exposition (the exact document a scraper would ingest), parsed here
  with :func:`repro.obs.parse_exposition` and checked for the metric
  families the dashboards rely on;
- the ``trace`` command returns ring-buffered lifecycle events
  (send → recv → fresh → suspect/trust) correlated by ``peer:seq`` spans;
- the rolling QoS health gauges (T_D/T_MR/T_M/P_A per peer × detector)
  report the paper's §II-A metrics over the recent window, live.

Run:  python examples/obs_quickstart.py

Exits non-zero if a required metric family is missing from the scrape —
CI runs this script as its ``obs-smoke`` gate.
"""

import asyncio
import sys
from collections import Counter

from repro.live import (
    ChaosSpec,
    Heartbeater,
    LiveMonitor,
    LiveMonitorServer,
    afetch_metrics,
    afetch_trace,
)
from repro.obs import Observability, parse_exposition

INTERVAL = 0.05  # Δi: p heartbeats every 50 ms
CRASH_AT = 1.2  # p dies 1.2 s in, so the trace ends in a suspicion

#: The families the Grafana-style dashboards key on; a scrape missing any
#: of these is a broken deliverable, not a degraded one.
REQUIRED_FAMILIES = (
    "repro_heartbeats_sent_total",
    "repro_heartbeats_received_total",
    "repro_heartbeats_accepted_total",
    "repro_detector_transitions_total",
    "repro_ingest_batch_size",
    "repro_last_poll_seconds",
    "repro_qos_t_d",
    "repro_qos_t_mr",
    "repro_qos_t_m",
    "repro_qos_p_a",
)


async def run() -> int:
    obs = Observability()
    monitor = LiveMonitor(
        INTERVAL,
        detectors=["2w-fd", "bertier"],
        params={"2w-fd": 0.3},
        obs=obs,
    )

    async with LiveMonitorServer(monitor, port=0, tick=0.01, status_port=0) as server:
        host, port = server.status.address
        print(f"q: monitoring UDP {server.address[0]}:{server.address[1]}, "
              f"status endpoint on TCP {port}\n")

        heartbeater = Heartbeater(
            server.address,
            sender_id="p",
            interval=INTERVAL,
            chaos=ChaosSpec(crash_at=CRASH_AT, seed=7),
            obs=obs,  # sender-side telemetry lands in the same registry
        )
        sent = await heartbeater.run()
        print(f"p: crashed after sending {sent} heartbeats")

        # Wait until every detector has noticed the silence.
        while not all(
            not d["trusting"]
            for d in monitor.snapshot()["peers"]["p"]["detectors"].values()
        ):
            await asyncio.sleep(0.02)

        # Scrape exactly as an operator (or Prometheus) would: over TCP.
        text = await afetch_metrics(host, port)
        trace = await afetch_trace(host, port)

    families = parse_exposition(text)
    missing = [name for name in REQUIRED_FAMILIES if name not in families]
    if missing:
        print(f"SMOKE FAILED — families missing from scrape: {missing}")
        return 1

    def sample(name, *, suffix=""):
        return families[name]["samples"][(name + suffix, ())]

    print(f"\nscraped {len(families)} metric families "
          f"({len(text.splitlines())} exposition lines); spot checks:")
    print(f"  heartbeats received: {sample('repro_heartbeats_received_total'):.0f}")
    print(f"  ingest batches:      {sample('repro_ingest_batch_size', suffix='_count'):.0f}")
    for (name, labels), value in sorted(families["repro_qos_p_a"]["samples"].items()):
        key = ", ".join(f"{k}={v}" for k, v in labels)
        print(f"  rolling P_A [{key}]: {value:.4f}")

    kinds = Counter(e["kind"] for e in trace["events"])
    print(f"\ntrace ring holds {len(trace['events'])} events "
          f"(cursor {trace['cursor']}): {dict(sorted(kinds.items()))}")
    if "suspect" not in kinds:
        print("SMOKE FAILED — the crash left no suspect event in the trace")
        return 1
    span = next(e["span"] for e in trace["events"] if e["kind"] == "recv")
    stages = [e["kind"] for e in trace["events"] if e.get("span") == span]
    print(f"one heartbeat's lifecycle (span {span}): {' → '.join(stages)}")

    print("\nobs-smoke ok: all required families present, lifecycle traced")
    return 0


def main() -> None:
    print(__doc__.split("\n")[0])
    print("=" * 60, "\n")
    raise SystemExit(asyncio.run(run()))


if __name__ == "__main__":
    main()
