#!/usr/bin/env python3
"""Extension: an accuracy-bounded detector with an adaptive safety margin.

The paper closes §V-A noting that Chen's configuration procedure can be
re-run periodically to adapt to changing network behaviour.  This example
does exactly that over the regime-changing synthetic WAN trace (stable →
loss burst → worm outbreak → stable):

- a *static* 2W-FD spends the same Δto everywhere;
- the *adaptive* 2W-FD re-estimates (p_L, V(D)) every minute and picks the
  smallest margin whose Eq. 16 mistake-rate bound still meets the target —
  stretching through the worm period, contracting in the stable ones.

At the same average detection time, the adaptive detector makes fewer
mistakes, and its margin trajectory shows *where* the time budget went.

Run:  python examples/adaptive_margin.py [scale]
"""

import sys

import numpy as np

from repro.replay import (
    adaptive_margin_deadlines,
    calibrate_to_detection_time,
    measured_detection_time,
    replay_detector,
    replay_metrics,
)
from repro.replay.kernels import MultiWindowKernel
from repro.traces import make_wan_trace, split_by_segments

TARGET_RATE = 1.0 / 600.0  # guaranteed: at most one false suspicion / 10 min


def main(scale: float = 0.02) -> None:
    trace = make_wan_trace(scale=scale, seed=2015)
    print(f"trace: {trace}")

    adaptive = adaptive_margin_deadlines(trace, TARGET_RATE, update_period=60.0)
    a_metrics = replay_metrics(
        adaptive.t, adaptive.deadlines, adaptive.end_time, collect_gaps=False
    ).metrics

    kernel = MultiWindowKernel(trace, window_sizes=(1, 1000))
    mean_td = measured_detection_time(
        adaptive.t, adaptive.deadlines, kernel.seq, trace.interval,
        trace.send_offset_estimate(),
    )
    static = replay_detector(
        kernel, trace, calibrate_to_detection_time(kernel, trace, mean_td),
        collect_gaps=False,
    ).metrics

    print(f"\ntarget mistake-rate bound: {TARGET_RATE:.2e} /s")
    print(f"resulting mean detection time: {mean_td * 1000:.0f} ms")
    print(f"{'policy':>10} | {'mistakes':>8} | {'T_MR [1/s]':>11} | {'P_A':>9}")
    for name, m in [("static", static), ("adaptive", a_metrics)]:
        print(
            f"{name:>10} | {m.n_mistakes:>8} | {m.mistake_rate:>11.3e} "
            f"| {m.query_accuracy:>9.6f}"
        )

    # Where did the adaptive margin go?  Average it per Table I regime.
    print("\nadaptive margin per WAN regime (where the T_D budget was spent):")
    boundaries = np.cumsum(
        [0] + [p.n_received for p in split_by_segments(trace).values()]
    )
    accepted_pos = np.flatnonzero(trace.accepted_mask())
    names = list(split_by_segments(trace).keys())
    for i, name in enumerate(names):
        mask = (accepted_pos >= boundaries[i]) & (accepted_pos < boundaries[i + 1])
        if mask.any():
            print(f"  {name:>8}: mean Δto = {adaptive.margins[mask].mean() * 1000:6.1f} ms")
    print(f"\nreconfigurations: {adaptive.n_updates} (one per minute of traffic)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
