#!/usr/bin/env python3
"""The paper's §IV workflow: replay every detector over one WAN trace.

Generates a reduced-scale synthetic WAN trace (same four-regime structure
as the paper's: stable / burst / worm / stable), replays the 2W-FD and the
four baselines over the *identical* arrival log, and prints the Fig. 6/7
rows: mistake rate and query accuracy at a grid of detection times.

Run:  python examples/wan_comparison.py [scale]
"""

import sys

from repro.replay import (
    bertier_point,
    calibrate_to_detection_time,
    make_kernel,
    replay_detector,
)
from repro.traces import make_wan_trace


def main(scale: float = 0.02) -> None:
    trace = make_wan_trace(scale=scale, seed=2015)
    print(f"trace: {trace}")

    kernels = {
        "2W-FD(1,1000)": make_kernel("2w-fd", trace, window_sizes=(1, 1000)),
        "Chen(1)": make_kernel("chen", trace, window_size=1),
        "Chen(1000)": make_kernel("chen", trace, window_size=1000),
        "phi(1000)": make_kernel("phi", trace, window_size=1000),
        "ED(1000)": make_kernel("ed", trace, window_size=1000),
    }

    targets = [0.215, 0.25, 0.3, 0.4, 0.6, 1.0]
    print(f"\n{'T_D [s]':>8} | " + " | ".join(f"{n:>16}" for n in kernels))
    print("-" * (10 + 19 * len(kernels)))
    for td in targets:
        cells = []
        for name, kernel in kernels.items():
            try:
                param = calibrate_to_detection_time(kernel, trace, td)
            except ValueError:
                cells.append(f"{'—':>16}")  # e.g. phi's saturated threshold
                continue
            r = replay_detector(kernel, trace, param, collect_gaps=False)
            cells.append(f"{r.metrics.n_mistakes:>6}  {r.metrics.query_accuracy:.5f}")
        print(f"{td:>8} | " + " | ".join(cells))
    print("(cells: mistakes  P_A; '—' = detection time unreachable)")

    point = bertier_point(make_kernel("bertier", trace), trace)
    print(
        f"\nBertier(1000) has no tuning parameter — single point: "
        f"T_D={point.detection_time[0]:.3f}s, "
        f"mistakes={point.n_mistakes[0]}, P_A={point.query_accuracy[0]:.5f}"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
