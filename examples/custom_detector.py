#!/usr/bin/env python3
"""Extending the library: plug a custom failure detector into the harness.

Implements a *median*-based variant of Chen's detector (robust location
estimate instead of the windowed mean of Eq. 2), wires it into the same
online machinery every built-in detector uses, and benchmarks it against
the 2W-FD on a bursty trace via the online replay engine.

This is the integration surface a downstream researcher would use to test
a new FD algorithm under the paper's methodology.

Run:  python examples/custom_detector.py
"""

import statistics
from collections import deque

from repro import TwoWindowFailureDetector
from repro.core.base import HeartbeatFailureDetector
from repro.net.delays import LogNormalDelay, ParetoDelay, SpikeDelay
from repro.net.link import Link
from repro.net.loss import BurstLoss
from repro.replay import replay_online
from repro.traces import generate_trace


class MedianFailureDetector(HeartbeatFailureDetector):
    """Chen-style detector using a windowed *median* normalized arrival.

    The median ignores outlier delays entirely, so it is even less
    sensitive to spikes than a long mean window — but, unlike the 2W-FD,
    it has no fast component and cannot stretch its freshness points
    during a sustained burst.
    """

    name = "median"

    def __init__(self, interval: float, safety_margin: float, window_size: int = 101):
        super().__init__(interval)
        self._margin = float(safety_margin)
        self._window = deque(maxlen=int(window_size))

    def _update(self, seq: int, arrival: float) -> None:
        self._window.append(arrival - self.interval * seq)

    def _deadline(self, seq: int, arrival: float) -> float:
        center = statistics.median(self._window)
        return center + self.interval * (seq + 1) + self._margin


def main() -> None:
    interval = 0.1
    link = Link(
        delay_model=SpikeDelay(
            base=LogNormalDelay(log_mu=-2.14, log_sigma=0.1),
            spike_model=ParetoDelay(alpha=1.3, minimum=0.3),
            spike_rate=2e-3,
            spike_run=15.0,
        ),
        loss_model=BurstLoss(mean_gap=2000.0, mean_burst=10.0, p_base=0.002),
    )
    trace = generate_trace(40_000, interval, link, rng=3)
    print(f"bursty trace: {trace}")

    margin = 0.15
    contenders = {
        "median(101)": MedianFailureDetector(interval, margin),
        "2w-fd(1,1000)": TwoWindowFailureDetector(interval, margin),
    }
    print(f"\nshared safety margin Δto = {margin}s")
    print(f"{'detector':>14} | {'T_D [s]':>8} | {'mistakes':>8} | {'P_A':>9} | {'T_M [s]':>8}")
    for name, det in contenders.items():
        r = replay_online(det, trace)
        print(
            f"{name:>14} | {r.detection_time:>8.3f} | {r.metrics.n_mistakes:>8} "
            f"| {r.metrics.query_accuracy:>9.6f} | {r.metrics.mistake_duration:>8.4f}"
        )
    print(
        "\nThe median resists isolated spikes but, lacking a short-term "
        "window, keeps making mistakes through sustained bursts — the "
        "failure mode the 2W-FD's max-of-two-estimates rule addresses."
    )


if __name__ == "__main__":
    main()
