#!/usr/bin/env python3
"""Quickstart: monitor a process with the 2W-FD and detect its crash.

Simulates the paper's two-process system: process p sends a heartbeat every
100 ms across a WAN-like lossy link; the monitor q runs the Two-Window
Failure Detector.  p crashes mid-run and we watch q's output flip from
trust to (permanent) suspicion, measuring the real detection time.

Run:  python examples/quickstart.py
"""

import math

from repro import TwoWindowFailureDetector
from repro.net.delays import LogNormalDelay
from repro.net.loss import BernoulliLoss
from repro.sim import simulate


def main() -> None:
    interval = 0.1  # Δi: p sends a heartbeat every 100 ms
    crash_time = 90.0  # p dies 90 s in (p's clock)

    result = simulate(
        {
            "2w-fd": lambda dt: TwoWindowFailureDetector(
                dt, safety_margin=0.2, short_window=1, long_window=1000
            )
        },
        interval=interval,
        duration=120.0,
        delay_model=LogNormalDelay(log_mu=math.log(0.118), log_sigma=0.1),
        loss_model=BernoulliLoss(0.01),
        crash_time=crash_time,
        seed=42,
    )

    metrics = result.metrics["2w-fd"]
    report = result.crash_reports["2w-fd"]

    print(f"heartbeats sent: {result.n_sent}, lost in the network: {result.n_lost}")
    print(f"pre-crash accuracy over {metrics.duration:.0f}s of monitoring:")
    print(f"  query accuracy P_A      = {metrics.query_accuracy:.6f}")
    print(f"  mistakes (S-transitions) = {metrics.n_mistakes}")
    print(f"  mistake rate T_MR       = {metrics.mistake_rate:.2e} /s")
    print()
    print(f"p crashed at t = {report.crash_time:.1f}s")
    print(f"q began suspecting (for good) at t = {report.suspected_at:.3f}s")
    print(f"detection time T_D = {report.detection_time * 1000:.0f} ms")
    assert report.permanently_suspecting, "the crash must be detected"


if __name__ == "__main__":
    main()
