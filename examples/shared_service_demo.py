#!/usr/bin/env python3
"""Failure detection as a service (§V): three apps, one heartbeat stream.

Three applications with very different QoS needs — an aggressive cluster
manager, a moderate group-membership service, and a relaxed dashboard —
register with a shared FD service.  The service:

1. configures each app with Chen's procedure (Eq. 14-16),
2. adopts the *minimum* heartbeat interval and adapts each app's timeout
   so its detection-time bound is met exactly (§V-C Steps 2-3),
3. runs one shared monitor whose estimation state is computed once per
   heartbeat while each app gets its own freshness points (Step 4).

We then drive the shared monitor inside the live simulator and crash the
monitored host: every application detects the crash within its own T_D.

Run:  python examples/shared_service_demo.py
"""

import math

import numpy as np

from repro.net.delays import LogNormalDelay
from repro.net.loss import BernoulliLoss
from repro.qos import NetworkBehavior, QoSSpec
from repro.service import Application, FDService
from repro.sim import Channel, EventScheduler, HeartbeatSender


def main() -> None:
    apps = [
        Application("cluster-manager", QoSSpec.from_recurrence_time(2.0, 1800.0, 1.0)),
        Application("group-membership", QoSSpec.from_recurrence_time(8.0, 600.0, 4.0)),
        Application("dashboard", QoSSpec.from_recurrence_time(30.0, 300.0, 15.0)),
    ]
    behavior = NetworkBehavior(loss_probability=0.01, delay_variance=0.001)
    service = FDService(apps, behavior)
    print(service.describe())

    # Drive the shared monitor live and crash the monitored host.
    crash_time = 300.0
    duration = 400.0
    rng = np.random.default_rng(11)
    scheduler = EventScheduler()
    channel = Channel(
        scheduler,
        LogNormalDelay(log_mu=math.log(0.118), log_sigma=0.1),
        rng,
        BernoulliLoss(0.01),
    )
    monitor = service.monitor
    sender = HeartbeatSender(
        scheduler,
        channel,
        service.heartbeat_interval,
        monitor.receive,
        crash_time=crash_time,
    )
    sender.start()
    scheduler.run_until(duration)
    transitions = monitor.finalize(duration)

    # Chen's T_D = Δi + Δto bound is stated on the freshness-point scale;
    # with unsynchronized clocks the expected-arrival estimate absorbs the
    # mean one-way delay, which therefore adds on top of the nominal bound.
    mean_delay = channel.delay_model.mean()
    print(
        f"\nhost crashed at t = {crash_time:.0f}s; per-application detection "
        f"(effective bound = T_D + mean one-way delay {mean_delay * 1000:.0f} ms):"
    )
    for app in apps:
        s_times = [t for t, trust in transitions[app.name] if not trust and t >= crash_time]
        detected_at = s_times[-1] if s_times else float("inf")
        bound = app.spec.detection_time + mean_delay
        status = "OK" if detected_at - crash_time <= bound else "BOUND VIOLATED"
        print(
            f"  {app.name:>16}: suspected at t={detected_at:8.3f}s "
            f"(T_D = {detected_at - crash_time:6.3f}s ≤ {bound:.3f}s)  [{status}]"
        )


if __name__ == "__main__":
    main()
