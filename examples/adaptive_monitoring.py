#!/usr/bin/env python3
"""Closing the loop: estimate the network, configure the FD, verify QoS.

The paper's §V-A pipeline end to end:

1. probe the network with heartbeats and estimate p_L and V(D) online
   (§V-A1) — no synchronized clocks required;
2. feed the estimates and an application QoS tuple (T_D^U, recurrence,
   T_M^U) to Chen's configuration procedure (Eq. 14-16) to obtain the
   largest heartbeat interval Δi (and margin Δto) that still meets the QoS;
3. run the configured 2W-FD over fresh traffic from the same network and
   verify the delivered QoS empirically.

Run:  python examples/adaptive_monitoring.py
"""

import math

from repro import TwoWindowFailureDetector
from repro.net.delays import LogNormalDelay
from repro.net.link import Link
from repro.net.loss import BernoulliLoss
from repro.qos import QoSSpec, configure
from repro.qos.estimators import OnlineNetworkEstimator
from repro.replay import replay_online
from repro.traces import generate_trace


def main() -> None:
    link = Link(
        delay_model=LogNormalDelay(log_mu=math.log(0.118), log_sigma=0.12),
        loss_model=BernoulliLoss(0.02),
    )

    # --- Step 1: probe and estimate (p_L, V(D)) online -------------------
    probe_interval = 0.1
    probe = generate_trace(20_000, probe_interval, link, rng=5)
    estimator = OnlineNetworkEstimator(probe_interval, window_size=20_000)
    for seq, arrival in probe.iter_heartbeats():
        estimator.observe(seq, arrival)
    behavior = estimator.behavior()
    print(
        f"estimated network behaviour: p_L = {behavior.loss_probability:.4f} "
        f"(true 0.02), V(D) = {behavior.delay_variance:.2e} s²"
    )

    # --- Step 2: configure for the application's QoS ---------------------
    spec = QoSSpec.from_recurrence_time(
        detection_time=5.0, recurrence_time=3600.0, mistake_duration=2.0
    )
    cfg = configure(spec, behavior)
    print(f"\nQoS requirement: {spec}")
    print(
        f"configured: Δi = {cfg.interval:.3f}s ({cfg.message_rate:.2f} msg/s, "
        f"the largest interval meeting the QoS), Δto = {cfg.safety_margin:.3f}s"
    )
    print(f"guaranteed mistake-rate bound f(Δi) = {cfg.mistake_rate_bound:.2e} /s")

    # --- Step 3: run the configured detector and verify ------------------
    horizon = 6 * 3600.0  # six virtual hours
    n = int(horizon / cfg.interval)
    traffic = generate_trace(n, cfg.interval, link, rng=6)
    detector = TwoWindowFailureDetector(cfg.interval, cfg.safety_margin)
    run = replay_online(detector, traffic)

    print(f"\nover {horizon / 3600:.0f} virtual hours of monitoring:")
    print(
        f"  measured mistake rate  = {run.metrics.mistake_rate:.2e} /s "
        f"(bound {spec.mistake_rate:.2e})"
    )
    print(
        f"  measured mistake duration = {run.metrics.mistake_duration:.3f}s "
        f"(bound {spec.mistake_duration:g})"
    )
    # The Δi + Δto bound is stated on the freshness-point scale; the mean
    # one-way delay (absorbed into the arrival estimates) adds on top.
    mean_delay = link.delay_model.mean()
    td_bound = spec.detection_time + mean_delay
    print(
        f"  measured detection time   = {run.detection_time:.3f}s "
        f"(bound {spec.detection_time:g} + mean delay {mean_delay:.3f} = {td_bound:.3f})"
    )
    met = run.metrics.satisfies(
        max_mistake_rate=spec.mistake_rate,
        max_mistake_duration=spec.mistake_duration,
    ) and run.detection_time <= td_bound
    print(f"  QoS satisfied: {'yes' if met else 'no'}")


if __name__ == "__main__":
    main()
