#!/usr/bin/env python3
"""Group membership: the workload the paper's introduction motivates.

A five-node cluster heartbeats a coordinator over flaky WAN-ish links
(correlated delay spikes + loss bursts).  One node crashes mid-run.  The
coordinator's membership service runs one failure detector per member —
every detector mistake is a *view change* the whole cluster must process.

We run the identical cluster (same seeds, same links, same crash) once per
detector and compare:

- spurious view changes (false removals + rejoins) — the T_MR cost,
- the removal latency of the real crash — the T_D side.

Run:  python examples/cluster_membership.py
"""

import numpy as np

from repro.cluster import MemberSpec, simulate_cluster
from repro.core.twofd import TwoWindowFailureDetector
from repro.detectors.chen import ChenFailureDetector
from repro.net.delays import LogNormalDelay, ParetoDelay, SpikeDelay
from repro.net.loss import BernoulliLoss

INTERVAL = 0.1
DURATION = 1200.0
CRASH_AT = 900.0
MARGIN = 0.12


def flaky_link() -> SpikeDelay:
    # Heavy jitter comparable to the margin (this is where the short- and
    # long-window estimates genuinely disagree) plus clustered spikes.
    return SpikeDelay(
        base=LogNormalDelay(log_mu=np.log(0.07), log_sigma=0.5),
        spike_model=ParetoDelay(alpha=1.4, minimum=0.15),
        spike_rate=1.5e-3,
        spike_run=8.0,
    )


def main() -> None:
    members = [
        MemberSpec(
            f"node-{i}",
            flaky_link(),
            BernoulliLoss(0.003),
            crash_time=CRASH_AT if i == 2 else None,
        )
        for i in range(5)
    ]
    contenders = {
        "2W-FD(1,1000)": lambda dt: TwoWindowFailureDetector(dt, MARGIN),
        "Chen(1)": lambda dt: ChenFailureDetector(dt, MARGIN, window_size=1),
        "Chen(1000)": lambda dt: ChenFailureDetector(dt, MARGIN, window_size=1000),
    }

    print(
        f"5-node cluster, Δi={INTERVAL}s, Δto={MARGIN}s, {DURATION:.0f}s run, "
        f"node-2 crashes at t={CRASH_AT:.0f}s\n"
    )
    print(f"{'detector':>14} | {'view changes':>12} | {'false removals':>14} | {'crash T_D':>9}")
    print("-" * 62)
    for name, factory in contenders.items():
        report = simulate_cluster(
            members, factory, interval=INTERVAL, duration=DURATION, seed=42
        )
        td = report.detection_time("node-2")
        print(
            f"{name:>14} | {report.n_view_changes:>12} "
            f"| {report.total_false_removals:>14} | {td:>8.3f}s"
        )
        assert report.all_crashes_detected
        assert "node-2" not in report.final_members

    print(
        "\nSame links, same crash: the 2W-FD removes the dead node just as "
        "fast while raising the fewest spurious view changes — the paper's "
        "T_MR advantage, priced in group-membership interrupts."
    )


if __name__ == "__main__":
    main()
