#!/usr/bin/env python3
"""Adaptive ingest: watch the monitor switch paths under a fan-in ramp.

``--ingest-mode adaptive`` refuses to choose between the batched scalar
ingest path (wins at low fan-in) and the vectorized columnar path (wins
at high fan-in) statically: an :class:`repro.live.AdaptiveIngestController`
watches every socket drain and picks the path for the next one from the
observed fan-in (distinct peers per drain) and the measured per-datagram
drain cost.  Switches migrate the live estimation state losslessly, so
the event stream stays bitwise-identical to the scalar reference no
matter when they happen.

This script drives one monitor synchronously (injected clock, no
sockets — deterministic) through a three-phase fan-in ramp:

    10 peers  →  200 peers  →  10 peers

and narrates what the controller does: the fan-in EWMA crossing the
hysteresis band, the batched → vectorized switch on the way up, the
switch back down when the crowd leaves, and the per-mode drain counters
the :mod:`repro.obs` bundle exports
(``repro_ingest_mode_drains_total{mode=...}``).  A batched reference
monitor replays the identical workload to demonstrate the equivalence
contract on the full event stream.

Run:  python examples/adaptive_ingest.py

Exits non-zero if the controller never switches up, never switches
back, the event streams diverge, or the obs counters don't account for
every drain.
"""

import sys

from repro.live import AdaptiveIngestController, Heartbeat, LiveMonitor
from repro.obs import Observability, parse_exposition

INTERVAL = 0.05  # every peer heartbeats once per 50 ms drain
DETECTORS = ["2w-fd", "phi"]
PARAMS = {"2w-fd": 0.05, "phi": 3.0}

#: (distinct peers, number of drains) — the fan-in ramp.
PHASES = [(10, 20), (200, 30), (10, 40)]


class Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make_monitor(mode, clock, **kwargs):
    return LiveMonitor(
        INTERVAL, DETECTORS, PARAMS, clock=clock, ingest_mode=mode, **kwargs
    )


def drive(monitor, clock, narrate=False):
    """Run the ramp; return the observed (time, peer, detector, trusting)
    event stream."""
    events = []
    monitor.subscribe(events.append)
    monitor.now()  # pin the epoch at clock 0
    seqs = {}
    t = 0.0
    for phase, (n_peers, n_drains) in enumerate(PHASES, start=1):
        if narrate:
            print(f"phase {phase}: {n_peers} peers × {n_drains} drains")
        switches_before = monitor.n_mode_switches
        for _ in range(n_drains):
            t += INTERVAL
            clock.t = t
            payloads = []
            for i in range(n_peers):
                peer = f"peer-{i:03d}"
                seqs[peer] = seqs.get(peer, 0) + 1
                payloads.append(Heartbeat(peer, seqs[peer], t).encode())
            before = monitor.n_mode_switches
            monitor.ingest_many(payloads, [t] * len(payloads))
            monitor.poll()
            ctl = monitor.adaptive_controller
            if narrate and ctl is not None and monitor.n_mode_switches > before:
                print(
                    f"  t={t:6.2f}s  switched to {ctl.mode:>10}  "
                    f"(fan-in EWMA {ctl.fanin_ewma:6.1f}, "
                    f"switch #{monitor.n_mode_switches})"
                )
        if narrate and monitor.adaptive_controller is not None:
            ctl = monitor.adaptive_controller
            flag = "" if monitor.n_mode_switches > switches_before else "  (no switch)"
            print(
                f"  phase end: mode={ctl.mode}, fan-in EWMA "
                f"{ctl.fanin_ewma:.1f}, drains "
                f"batched={ctl.drains['batched']} "
                f"vectorized={ctl.drains['vectorized']}{flag}"
            )
    return events


def main() -> int:
    print(__doc__.split("\n")[0])
    print("=" * 60, "\n")

    obs = Observability()
    clock = Clock()
    # min_dwell/smoothing tuned down so a short demo ramp reacts within a
    # few drains; the huge cost_margin disables the measured-cost
    # arbitration so the run is deterministic on any host (production
    # defaults keep it on — fan-in predicts, measured cost arbitrates).
    monitor = make_monitor(
        "adaptive",
        clock,
        obs=obs,
        adaptive_controller=AdaptiveIngestController(
            min_dwell=2, smoothing=16.0, cost_margin=1e9
        ),
    )
    adaptive_events = drive(monitor, clock, narrate=True)

    ctl = monitor.adaptive_controller
    total_drains = sum(n for _, n in PHASES)
    failures = []
    if not ctl.columnar_available:
        print("\n(numpy unavailable: controller pinned to batched — "
              "nothing to demonstrate, treating as success)")
        return 0
    if monitor.n_mode_switches < 2:
        failures.append(
            f"expected an up- and a down-switch, saw {monitor.n_mode_switches}"
        )
    if ctl.mode != "batched":
        failures.append(f"ramp ends at 10 peers but mode is {ctl.mode!r}")
    if ctl.drains["vectorized"] == 0 or ctl.drains["batched"] == 0:
        failures.append(f"both paths should have run: {ctl.drains}")

    # The equivalence contract: a batched reference over the identical
    # workload produces the identical event stream, switches and all.
    ref_clock = Clock()
    ref_events = drive(make_monitor("batched", ref_clock), ref_clock)
    key = lambda evs: [(e.time, e.peer, e.detector, e.trusting) for e in evs]
    if key(adaptive_events) != key(ref_events):
        failures.append("adaptive event stream diverged from batched reference")
    else:
        print(
            f"\nequivalence: {len(adaptive_events)} events bitwise-identical "
            f"to the batched reference (190 departed peers suspected on cue)"
        )

    # The operator's view: per-mode drain counters from the obs scrape.
    fams = parse_exposition(monitor.render_metrics())
    drains = fams["repro_ingest_mode_drains_total"]["samples"]
    print("scrape: repro_ingest_mode_drains_total")
    counted = 0.0
    for (name, labels), value in sorted(drains.items()):
        print(f"  {dict(labels)['mode']:>10}: {value:.0f}")
        counted += value
    if counted != total_drains:
        failures.append(
            f"mode drain counters sum to {counted:.0f}, ran {total_drains}"
        )
    if "repro_ingest_drain_seconds" not in fams:
        failures.append("repro_ingest_drain_seconds missing from scrape")

    if failures:
        print("\nDEMO FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(
        f"\nadaptive-ingest ok: {monitor.n_mode_switches} switches over "
        f"{total_drains} drains, counters account for every drain"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
