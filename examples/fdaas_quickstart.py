#!/usr/bin/env python3
"""fdaas quickstart: multi-tenant failure detection as a service.

Boots one loopback :class:`repro.fdaas.FdaasServer` hosting two tenants —
``acme`` (HMAC-authenticated, with an unmeetable detection-time SLA so a
breach is guaranteed) and ``globex`` (authenticated too, but with a loose
SLA that never fires) — then walks the whole control plane:

- each tenant's :class:`~repro.live.heartbeater.Heartbeater` streams
  wire-v2 signed heartbeats under its own key, namespaced ``tenant/peer``;
- an attacker injects spoofed (wrong key), replayed (stale seq), unsigned
  and unknown-tenant datagrams over raw UDP; the admission layer rejects
  and counts every one without perturbing the monitor;
- the SLA loop evaluates each tenant against its *own* QoS targets and
  publishes breach events to the broker;
- a push subscriber (``subscribe`` status command) receives transitions
  and the breach the moment they happen — no polling.

Run:  python examples/fdaas_quickstart.py

Exits non-zero if any attack is not rejected, the wrong tenant breaches,
or the subscriber misses the breach — CI runs this script as its
``fdaas-smoke`` gate.
"""

import asyncio
import sys

from repro.fdaas import FdaasServer, SLATargets, Tenant, TenantRegistry
from repro.fdaas.subscribe import asubscribe_events
from repro.live import Heartbeater, LiveMonitor
from repro.live.wire import Heartbeat
from repro.obs import Observability

INTERVAL = 0.05  # Δi: each tenant's peer heartbeats every 50 ms
BEATS = 50

KEY_ACME = b"acme-quickstart-hmac-key-0123456"
KEY_GLOBEX = b"globex-quickstart-hmac-key-01234"

ATTACK_REASONS = ("bad_tag", "replayed", "missing_auth", "unknown_tenant")


async def _wait_for(predicate, *, timeout: float, tick: float = 0.02):
    async def loop():
        while not predicate():
            await asyncio.sleep(tick)

    await asyncio.wait_for(loop(), timeout)


async def run() -> int:
    obs = Observability(trace=False)
    monitor = LiveMonitor(INTERVAL, ["2w-fd"], {"2w-fd": 0.5}, obs=obs)

    registry = TenantRegistry()
    registry.register(
        Tenant("acme", key=KEY_ACME, rate=500.0, sla=SLATargets(t_d=1e-6))
    )
    registry.register(
        Tenant("globex", key=KEY_GLOBEX, rate=500.0, sla=SLATargets(t_d=60.0))
    )
    print("tenants: acme (t_d ≤ 1 µs — will breach), globex (t_d ≤ 60 s)")

    server = FdaasServer(
        monitor, registry, tick=0.01, status_port=0, sla_tick=0.05
    )
    received = []
    async with server:
        shost, sport = server.status_address
        print(f"fdaas up: udp {server.address}, status {shost}:{sport}")

        async def consume():
            async for event in asubscribe_events(shost, sport):
                received.append(event)

        consumer = asyncio.ensure_future(consume())

        senders = asyncio.gather(
            Heartbeater(
                server.address,
                sender_id="web",
                interval=INTERVAL,
                count=BEATS,
                tenant="acme",
                auth_key=KEY_ACME,
            ).run(),
            Heartbeater(
                server.address,
                sender_id="web",
                interval=INTERVAL,
                count=BEATS,
                tenant="globex",
                auth_key=KEY_GLOBEX,
            ).run(),
        )
        await _wait_for(
            lambda: {"acme/web", "globex/web"}
            <= set(monitor.snapshot()["peers"]),
            timeout=10.0,
        )
        print("both tenants' signed heartbeat streams admitted")

        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            asyncio.DatagramProtocol, remote_addr=server.address
        )
        attacks = [
            Heartbeat("acme/web", 9_000, 9.9).encode_signed(KEY_GLOBEX),
            Heartbeat("acme/web", 1, 0.0).encode_signed(KEY_ACME),
            Heartbeat("acme/web", 9_001, 9.9).encode(),
            Heartbeat("mallory/x", 1, 0.0).encode(),
        ]
        for payload in attacks:
            transport.sendto(payload)
        await _wait_for(
            lambda: all(
                server.admission.reject_reasons.get(r, 0) >= 1
                for r in ATTACK_REASONS
            ),
            timeout=10.0,
        )
        transport.close()
        rejected = dict(server.admission.reject_reasons)
        print(f"attacks rejected pre-monitor: {rejected}")

        await _wait_for(
            lambda: any(
                e.get("type") == "sla" and e.get("kind") == "breach"
                for e in received
            ),
            timeout=10.0,
        )
        await senders
        consumer.cancel()
        try:
            await consumer
        except asyncio.CancelledError:
            pass
        snap = server._snapshot()

    breaches = [
        e for e in received if e.get("type") == "sla" and e["kind"] == "breach"
    ]
    print(
        f"subscriber pushed {len(received)} events "
        f"({len(breaches)} SLA breach(es), first: tenant={breaches[0]['tenant']} "
        f"metric={breaches[0]['metric']})"
    )

    failures = []
    for reason in ATTACK_REASONS:
        if rejected.get(reason, 0) < 1:
            failures.append(f"attack not rejected: {reason}")
    if "mallory/x" in snap["peers"]:
        failures.append("unknown tenant's peer leaked into the monitor")
    if not snap["sla"]["tenants"]["acme"]["breached"]:
        failures.append("acme's unmeetable SLA did not breach")
    if snap["sla"]["tenants"]["globex"]["breached"]:
        failures.append("globex breached someone else's SLA targets")
    if any(e["tenant"] == "globex" for e in breaches):
        failures.append("subscriber saw a globex breach event")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            "OK: auth + replay + tenancy enforced, SLA breach isolated to "
            "acme and delivered by push"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(asyncio.run(run()))
